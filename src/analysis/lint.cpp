//===- analysis/lint.cpp - Pre-validation lint for Typecoin -------------------===//

#include "analysis/lint.h"

#include <set>

namespace typecoin {
namespace analysis {

using bitcoin::DustThreshold;
using tc::Transaction;

namespace {

std::string idx(const char *What, size_t I) {
  return std::string(What) + "[" + std::to_string(I) + "]";
}

Severity policySeverity(const LintOptions &Opts) {
  // Standardness violations only block relay when the mempool requires
  // standard transactions; otherwise they are advisory.
  return Opts.RequireStandard ? Severity::Error : Severity::Warning;
}

/// Diagnostics shared by the primary and every fallback: the fallback
/// compatibility rules of Section 5 force identical inputs (txout and
/// amount) and identical output amounts/owners, so a finding here
/// condemns every alternative at once.
void lintShared(const Transaction &T, const LintOptions &Opts,
                LintReport &Out) {
  if (T.Inputs.empty())
    Out.error("input-none",
              "transaction has no inputs (replay protection requires at "
              "least one, Section 2)");

  std::set<std::pair<std::string, uint32_t>> Seen;
  for (size_t I = 0; I < T.Inputs.size(); ++I) {
    const tc::Input &In = T.Inputs[I];
    if (In.SourceTxid.size() != 64 ||
        In.SourceTxid.find_first_not_of("0123456789abcdefABCDEF") !=
            std::string::npos)
      Out.error("input-txid",
                "source txid is not 64 hex digits: '" + In.SourceTxid + "'",
                idx("input", I));
    else if (!Seen.insert({In.SourceTxid, In.SourceIndex}).second)
      Out.error("input-dup",
                "txout " + In.SourceTxid + ":" +
                    std::to_string(In.SourceIndex) +
                    " is spent twice by this transaction (an affine "
                    "resource admits at most one consumer)",
                idx("input", I));
    if (In.Amount < 0)
      Out.warn("input-amount", "claimed input amount is negative",
               idx("input", I));
  }

  for (size_t I = 0; I < T.Outputs.size(); ++I) {
    const tc::Output &Out_ = T.Outputs[I];
    if (!bitcoin::moneyRange(Out_.Amount))
      Out.error("output-amount",
                "output amount is outside the money range",
                idx("output", I));
    else if (Out_.Amount < DustThreshold)
      Out.add(policySeverity(Opts), "output-dust",
              "output amount " + std::to_string(Out_.Amount) +
                  " is below the dust threshold (" +
                  std::to_string(DustThreshold) +
                  "); the realized Bitcoin output will not relay",
              idx("output", I));
  }

  for (size_t I = 0; I < T.Fallbacks.size(); ++I)
    if (auto S = tc::checkFallbackCompatible(T, T.Fallbacks[I]); !S)
      Out.error("fallback-shape", S.error().message(), idx("fallback", I));

  auto BodyComplete = [](const Transaction &X) {
    if (!X.Grant || !X.Proof)
      return false;
    for (const tc::Input &In : X.Inputs)
      if (!In.Type)
        return false;
    for (const tc::Output &O : X.Outputs)
      if (!O.Type)
        return false;
    return true;
  };
  bool Serializable = BodyComplete(T);
  for (const Transaction &F : T.Fallbacks)
    Serializable = Serializable && BodyComplete(F);
  if (Serializable && Opts.MaxTcBytes != 0) {
    size_t Size = T.serialize().size();
    if (Size > Opts.MaxTcBytes)
      Out.warn("tc-oversize",
               "serialized Typecoin transaction is " +
                   std::to_string(Size) + " bytes (advisory cap " +
                   std::to_string(Opts.MaxTcBytes) + ")");
  }
}

/// Diagnostics private to one alternative (primary or a single
/// fallback): its proof term and its claimed types. An error here only
/// condemns this alternative — another may still validate.
void lintAlternative(const Transaction &T, const LintOptions &Opts,
                     LintReport &Out, const std::string &SpanRoot) {
  auto At = [&](const std::string &S) {
    return SpanRoot.empty() ? S : SpanRoot + "/" + S;
  };

  if (!T.Grant)
    Out.error("grant-missing", "transaction has no affine grant (C)",
              At("grant"));
  for (size_t I = 0; I < T.Inputs.size(); ++I)
    if (!T.Inputs[I].Type)
      Out.error("input-type", "input has no claimed type",
                At(idx("input", I)));
  for (size_t I = 0; I < T.Outputs.size(); ++I)
    if (!T.Outputs[I].Type)
      Out.error("output-type", "output has no type", At(idx("output", I)));

  if (!T.Proof) {
    Out.error("proof-missing", "transaction has no proof term",
              At("proof"));
    return;
  }
  AffineAuditOptions AuditOpts;
  AuditOpts.WarnUnused = Opts.WarnUnused;
  auditAffineUsage(T.Proof, {}, {}, Out, At("proof"), AuditOpts);
}

} // namespace

LintReport lint(const Transaction &T, const LintOptions &Opts) {
  LintReport Out;
  lintShared(T, Opts, Out);
  lintAlternative(T, Opts, Out, "");
  for (size_t I = 0; I < T.Fallbacks.size(); ++I)
    lintAlternative(T.Fallbacks[I], Opts, Out, idx("fallback", I));
  return Out;
}

LintReport lintScripts(const bitcoin::Transaction &Btc,
                       const LintOptions &Opts) {
  LintReport Out;
  Severity Policy = policySeverity(Opts);

  if (Btc.serialize().size() > Opts.MaxBtcBytes)
    Out.add(Policy, "tx-oversize",
            "Bitcoin transaction exceeds " +
                std::to_string(Opts.MaxBtcBytes) + " bytes");

  size_t NullDataCount = 0;
  for (size_t I = 0; I < Btc.Outputs.size(); ++I) {
    const bitcoin::TxOut &O = Btc.Outputs[I];
    if (!bitcoin::moneyRange(O.Value))
      Out.error("output-amount", "output value is outside the money range",
                idx("output", I));
    bitcoin::SolvedScript Solved = bitcoin::solveScript(O.ScriptPubKey);
    switch (Solved.Kind) {
    case bitcoin::TxOutKind::NonStandard:
      Out.add(Policy, "script-nonstandard",
              "output script matches no standard template",
              idx("output", I));
      break;
    case bitcoin::TxOutKind::NullData:
      ++NullDataCount;
      break;
    default:
      if (O.Value < DustThreshold)
        Out.add(Policy, "output-dust",
                "output value " + std::to_string(O.Value) +
                    " is below the dust threshold (" +
                    std::to_string(DustThreshold) + ")",
                idx("output", I));
      break;
    }
  }
  if (NullDataCount > 1)
    Out.add(Policy, "script-nulldata-count",
            std::to_string(NullDataCount) +
                " OP_RETURN outputs (relay policy allows one)");

  for (size_t I = 0; I < Btc.Inputs.size(); ++I) {
    auto Elems = Btc.Inputs[I].ScriptSig.decode();
    if (!Elems) {
      Out.add(Policy, "script-sig-malformed", "scriptSig does not decode",
              idx("input", I));
      continue;
    }
    if (Btc.isCoinbase())
      continue;
    for (const auto &E : *Elems)
      if (!E.IsPush && !(E.Op >= bitcoin::OP_1 && E.Op <= bitcoin::OP_16) &&
          E.Op != bitcoin::OP_1NEGATE && E.Op != bitcoin::OP_0) {
        Out.add(Policy, "script-sig-not-push",
                "scriptSig is not push-only", idx("input", I));
        break;
      }
  }
  return Out;
}

LintReport lintEmbedding(const Transaction &T,
                         const bitcoin::Transaction &Btc,
                         const LintOptions &) {
  LintReport Out;
  auto Embedded = tc::extractMetadata(Btc);
  if (!Embedded) {
    Out.error("embed-missing",
              "no Typecoin metadata found in the Bitcoin transaction "
              "(expected a 1-of-2 multisig, bogus-P2PK, or OP_RETURN "
              "carrier)");
    return Out;
  }
  // Round-trip shape: the carried hash must survive re-encoding as a
  // pubkey-shaped metadata blob.
  if (auto Back = tc::metadataFromKey(tc::metadataAsKey(*Embedded));
      !Back || *Back != *Embedded)
    Out.error("embed-roundtrip",
              "embedded metadata does not round-trip through the "
              "pubkey-shaped encoding");
  if (*Embedded != T.hash()) {
    Out.error("embed-mismatch",
              "embedded hash does not match the Typecoin transaction "
              "hash");
    return Out;
  }
  if (auto S = tc::checkCorrespondence(T, Btc); !S)
    Out.error("embed-correspondence", S.error().message());
  return Out;
}

LintReport lint(const tc::Pair &P, const LintOptions &Opts) {
  LintReport Out = lint(P.Tc, Opts);
  Out.merge(lintScripts(P.Btc, Opts), "btc");
  Out.merge(lintEmbedding(P.Tc, P.Btc, Opts));
  return Out;
}

/// Shared gate core: reject when shared structure is broken, or when the
/// primary and every fallback carry per-alternative errors.
static Status gateAlternatives(const Transaction &T,
                               const LintOptions &Opts) {
  LintReport Primary;
  lintAlternative(T, Opts, Primary, "");
  if (!Primary.hasErrors())
    return Status::success();
  for (const Transaction &F : T.Fallbacks) {
    LintReport FR;
    lintAlternative(F, Opts, FR, "");
    if (!FR.hasErrors())
      return Status::success(); // Section 5: a valid fallback relays.
  }
  return makeError("lint: primary and every fallback fail pre-validation: " +
                   Primary.firstAtLeast(Severity::Error)->str());
}

Status lintGate(const Transaction &T, const LintOptions &Opts) {
  LintReport Shared;
  lintShared(T, Opts, Shared);
  TC_TRY(Shared.toStatus());
  return gateAlternatives(T, Opts);
}

Status lintGate(const tc::Pair &P, const LintOptions &Opts) {
  LintReport Shared;
  lintShared(P.Tc, Opts, Shared);
  Shared.merge(lintScripts(P.Btc, Opts), "btc");
  Shared.merge(lintEmbedding(P.Tc, P.Btc, Opts));
  TC_TRY(Shared.toStatus());
  return gateAlternatives(P.Tc, Opts);
}

} // namespace analysis
} // namespace typecoin
