//===- analysis/affine.cpp - Affine-usage audit of proof terms ----------------===//

#include "analysis/affine.h"

#include <cassert>

namespace typecoin {
namespace analysis {

using logic::Proof;
using logic::ProofPtr;

namespace {

/// The structural walker. Scope handling replicates check.cpp's Engine:
/// a flat environment stack, innermost-name lookup, snapshot/restore/
/// merge of consumption flags around additive branches, and blocking of
/// affine entries under `!`.
class Walker {
public:
  Walker(LintReport &Out, const AffineAuditOptions &Opts)
      : Out(Out), Opts(Opts) {}

  void run(const ProofPtr &M, const std::vector<std::string> &Affine,
           const std::vector<std::string> &Persistent,
           const std::string &SpanRoot) {
    Path.push_back(SpanRoot);
    for (const std::string &Name : Persistent)
      bind(Name, /*IsAffine=*/false);
    for (const std::string &Name : Affine)
      bind(Name, /*IsAffine=*/true);
    walk(M);
    reportUnused(0, /*TopLevel=*/true);
  }

private:
  struct Entry {
    std::string Name;
    bool Affine = false;
    bool Consumed = false;
    bool Blocked = false;
    /// Where this hypothesis was consumed (for the reuse message).
    std::string ConsumedAt;
  };

  LintReport &Out;
  const AffineAuditOptions &Opts;
  std::vector<Entry> Env;
  std::vector<std::string> Path;
  unsigned Depth = 0;
  bool DepthReported = false;

  std::string span() const {
    std::string S;
    for (size_t I = 0; I < Path.size(); ++I) {
      if (I)
        S += "/";
      S += Path[I];
    }
    return S;
  }

  void bind(const std::string &Name, bool IsAffine) {
    Entry E;
    E.Name = Name;
    E.Affine = IsAffine;
    Env.push_back(std::move(E));
  }

  /// Leave a scope opened at \p Mark, warning about weakened affine
  /// hypotheses bound inside it.
  void popScope(size_t Mark) {
    reportUnused(Mark, /*TopLevel=*/false);
    Env.resize(Mark);
  }

  void reportUnused(size_t From, bool TopLevel) {
    if (!Opts.WarnUnused)
      return;
    for (size_t I = From; I < Env.size(); ++I) {
      const Entry &E = Env[I];
      if (E.Affine && !E.Consumed)
        Out.warn("affine-unused",
                 "affine hypothesis '" + E.Name + "' is never consumed" +
                     (TopLevel ? "" : " in its scope") +
                     " (weakening is legal but usually wasteful)",
                 span());
    }
  }

  std::vector<bool> snapshot() const {
    std::vector<bool> S;
    S.reserve(Env.size());
    for (const Entry &E : Env)
      S.push_back(E.Consumed);
    return S;
  }

  void restore(const std::vector<bool> &S) {
    assert(S.size() <= Env.size());
    for (size_t I = 0; I < S.size(); ++I)
      Env[I].Consumed = S[I];
  }

  void merge(const std::vector<bool> &A, const std::vector<bool> &B) {
    for (size_t I = 0; I < Env.size() && I < A.size(); ++I)
      Env[I].Consumed = A[I] || (I < B.size() && B[I]);
  }

  void useVar(const std::string &Name) {
    for (size_t I = Env.size(); I-- > 0;) {
      Entry &E = Env[I];
      if (E.Name != Name)
        continue;
      if (E.Blocked) {
        Out.error("affine-banged",
                  "affine hypothesis '" + Name +
                      "' is used under '!', where only persistent "
                      "hypotheses are available",
                  span());
        return;
      }
      if (E.Affine) {
        if (E.Consumed) {
          Out.error("affine-reuse",
                    "affine hypothesis '" + Name +
                        "' is consumed a second time (first consumed at " +
                        E.ConsumedAt +
                        "); contraction is not available for affine "
                        "resources",
                    span());
          return;
        }
        E.Consumed = true;
        E.ConsumedAt = span();
      }
      return;
    }
    Out.error("affine-unbound",
              "proof variable '" + Name + "' is unbound", span());
  }

  /// RAII-free path segment push/pop via explicit helpers keeps the walk
  /// readable without exceptions.
  void walkAt(const ProofPtr &M, const std::string &Segment) {
    Path.push_back(Segment);
    walk(M);
    Path.pop_back();
  }

  void walk(const ProofPtr &M);
};

void Walker::walk(const ProofPtr &M) {
  if (!M) {
    Out.error("proof-malformed", "null proof subterm", span());
    return;
  }
  if (++Depth > Opts.MaxDepth) {
    if (!DepthReported) {
      DepthReported = true;
      Out.error("proof-depth",
                "proof nesting exceeds " + std::to_string(Opts.MaxDepth) +
                    " (the checker rejects such terms)",
                span());
    }
    --Depth;
    return;
  }
  struct DepthGuard {
    unsigned &D;
    ~DepthGuard() { --D; }
  } Guard{Depth};

  switch (M->Kind) {
  case Proof::Tag::Var:
    useVar(M->Name);
    return;

  case Proof::Tag::Const:
  case Proof::Tag::OneIntro:
    return;

  case Proof::Tag::Lam: {
    size_t Mark = Env.size();
    bind(M->X, /*IsAffine=*/true);
    walkAt(M->A, "lam(" + M->X + ")");
    popScope(Mark);
    return;
  }

  case Proof::Tag::App:
    walkAt(M->A, "app.fn");
    walkAt(M->B, "app.arg");
    return;

  case Proof::Tag::TensorPair:
    walkAt(M->A, "tensor.l");
    walkAt(M->B, "tensor.r");
    return;

  case Proof::Tag::TensorLet: {
    walkAt(M->A, "let(" + M->X + "," + M->Y + ").of");
    size_t Mark = Env.size();
    bind(M->X, true);
    bind(M->Y, true);
    walkAt(M->B, "let(" + M->X + "," + M->Y + ").in");
    popScope(Mark);
    return;
  }

  case Proof::Tag::WithPair: {
    // Both components share the affine context; consumption is the
    // union (check.cpp WithPair).
    std::vector<bool> Before = snapshot();
    walkAt(M->A, "with.l");
    std::vector<bool> AfterL = snapshot();
    restore(Before);
    walkAt(M->B, "with.r");
    std::vector<bool> AfterR = snapshot();
    merge(AfterL, AfterR);
    return;
  }

  case Proof::Tag::WithFst:
    walkAt(M->A, "fst");
    return;
  case Proof::Tag::WithSnd:
    walkAt(M->A, "snd");
    return;

  case Proof::Tag::Inl:
    walkAt(M->A, "inl");
    return;
  case Proof::Tag::Inr:
    walkAt(M->A, "inr");
    return;

  case Proof::Tag::Case: {
    walkAt(M->A, "case.of");
    std::vector<bool> Before = snapshot();

    size_t Mark = Env.size();
    bind(M->X, true);
    walkAt(M->B, "case.inl(" + M->X + ")");
    popScope(Mark);
    std::vector<bool> AfterL = snapshot();

    restore(Before);
    bind(M->Y, true);
    walkAt(M->C, "case.inr(" + M->Y + ")");
    popScope(Mark);
    std::vector<bool> AfterR = snapshot();

    merge(AfterL, AfterR);
    return;
  }

  case Proof::Tag::Abort:
    walkAt(M->A, "abort");
    return;

  case Proof::Tag::OneLet:
    walkAt(M->A, "unitlet.of");
    walkAt(M->B, "unitlet.in");
    return;

  case Proof::Tag::BangIntro: {
    std::vector<size_t> Blocked;
    for (size_t I = 0; I < Env.size(); ++I)
      if (Env[I].Affine && !Env[I].Blocked) {
        Env[I].Blocked = true;
        Blocked.push_back(I);
      }
    walkAt(M->A, "bang");
    for (size_t I : Blocked)
      Env[I].Blocked = false;
    return;
  }

  case Proof::Tag::BangLet: {
    walkAt(M->A, "banglet(" + M->X + ").of");
    size_t Mark = Env.size();
    bind(M->X, /*IsAffine=*/false); // Persistent.
    walkAt(M->B, "banglet(" + M->X + ").in");
    popScope(Mark);
    return;
  }

  case Proof::Tag::AllIntro:
    walkAt(M->A, "allintro");
    return;
  case Proof::Tag::AllApp:
    walkAt(M->A, "allapp");
    return;
  case Proof::Tag::ExPack:
    walkAt(M->A, "pack");
    return;

  case Proof::Tag::ExUnpack: {
    walkAt(M->A, "unpack(" + M->X + ").of");
    size_t Mark = Env.size();
    bind(M->X, true);
    walkAt(M->B, "unpack(" + M->X + ").in");
    popScope(Mark);
    return;
  }

  case Proof::Tag::SayReturn:
    walkAt(M->A, "sayreturn");
    return;

  case Proof::Tag::SayBind: {
    walkAt(M->A, "saybind(" + M->X + ").of");
    size_t Mark = Env.size();
    bind(M->X, true);
    walkAt(M->B, "saybind(" + M->X + ").in");
    popScope(Mark);
    return;
  }

  case Proof::Tag::Assert:
  case Proof::Tag::AssertBang: {
    if (M->KHash.size() != 40)
      Out.error("assert-principal",
                "assert principal literal must be 40 hex digits, got " +
                    std::to_string(M->KHash.size()),
                span());
    else if (M->KHash.find_first_not_of("0123456789abcdefABCDEF") !=
             std::string::npos)
      Out.warn("assert-principal",
               "assert principal literal contains non-hex characters",
               span());
    if (M->Sig.empty())
      Out.warn("assert-signature", "assert carries an empty signature blob",
               span());
    return;
  }

  case Proof::Tag::IfReturn:
    walkAt(M->A, "ifreturn");
    return;

  case Proof::Tag::IfBind: {
    walkAt(M->A, "ifbind(" + M->X + ").of");
    size_t Mark = Env.size();
    bind(M->X, true);
    walkAt(M->B, "ifbind(" + M->X + ").in");
    popScope(Mark);
    return;
  }

  case Proof::Tag::IfWeaken:
    walkAt(M->A, "ifweaken");
    return;
  case Proof::Tag::IfSay:
    walkAt(M->A, "ifsay");
    return;
  }
  Out.error("proof-malformed", "unrecognized proof-term tag", span());
}

} // namespace

void auditAffineUsage(const ProofPtr &M,
                      const std::vector<std::string> &Affine,
                      const std::vector<std::string> &Persistent,
                      LintReport &Out, const std::string &SpanRoot,
                      const AffineAuditOptions &Opts) {
  Walker W(Out, Opts);
  W.run(M, Affine, Persistent, SpanRoot);
}

} // namespace analysis
} // namespace typecoin
