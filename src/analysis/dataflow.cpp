//===- analysis/dataflow.cpp - Whole-ledger affine dataflow ---------------===//

#include "analysis/dataflow.h"

#include "support/strings.h"

#include <algorithm>
#include <cstdlib>

namespace typecoin {
namespace analysis {

namespace {

std::string outpointKey(const std::string &Txid, uint32_t Index) {
  return Txid + ":" + std::to_string(Index);
}

/// "txid:n" -> "txid".
std::string outpointTxid(const std::string &Outpoint) {
  return Outpoint.substr(0, Outpoint.find(':'));
}

std::string shortId(const std::string &Txid) {
  return Txid.size() > 12 ? Txid.substr(0, 12) + ".." : Txid;
}

} // namespace

DataflowTx DataflowTx::fromBitcoinTx(const bitcoin::Transaction &Btc) {
  DataflowTx Out;
  Out.Txid = Btc.txid().toHex();
  for (const bitcoin::TxIn &In : Btc.Inputs) {
    if (In.Prevout.isNull())
      continue;
    Out.Consumes.push_back(
        outpointKey(In.Prevout.Tx.toHex(), In.Prevout.Index));
  }
  Out.NumOutputs = Btc.Outputs.size();
  return Out;
}

DataflowTx DataflowTx::fromPair(const tc::Transaction &Tc,
                                const bitcoin::Transaction &Btc) {
  DataflowTx Out;
  Out.Txid = Btc.txid().toHex();
  for (const tc::Input &In : Tc.Inputs)
    Out.Consumes.push_back(outpointKey(In.SourceTxid, In.SourceIndex));
  Out.NumOutputs = Tc.Outputs.size();
  return Out;
}

DataflowLedger DataflowLedger::fromChain(const bitcoin::Blockchain &Chain) {
  DataflowLedger L;
  std::set<std::string> Created;
  Chain.forEachBlock([&](const bitcoin::Block &B, int /*Height*/,
                         bool OnBestChain) {
    for (const bitcoin::Transaction &Tx : B.Txs) {
      const std::string Txid = Tx.txid().toHex();
      if (OnBestChain) {
        L.ChainTxids.insert(Txid);
        for (uint32_t I = 0; I < Tx.Outputs.size(); ++I)
          Created.insert(outpointKey(Txid, I));
      }
      for (const bitcoin::TxIn &In : Tx.Inputs) {
        if (In.Prevout.isNull())
          continue;
        std::string Key =
            outpointKey(In.Prevout.Tx.toHex(), In.Prevout.Index);
        if (OnBestChain)
          L.SpentOnChain.emplace(std::move(Key), Txid);
        else
          L.SpentOnStaleBranches[Key].push_back(Txid);
      }
    }
  });
  // A consumption also present on the best chain is not *stale*: the
  // same transaction usually exists on both branches after a reorg.
  for (auto It = L.SpentOnStaleBranches.begin();
       It != L.SpentOnStaleBranches.end();) {
    auto OnChainIt = L.SpentOnChain.find(It->first);
    if (OnChainIt != L.SpentOnChain.end()) {
      auto &V = It->second;
      V.erase(std::remove(V.begin(), V.end(), OnChainIt->second), V.end());
      if (V.empty()) {
        It = L.SpentOnStaleBranches.erase(It);
        continue;
      }
    }
    std::sort(It->second.begin(), It->second.end());
    It->second.erase(std::unique(It->second.begin(), It->second.end()),
                     It->second.end());
    ++It;
  }
  for (const std::string &Key : Created)
    if (!L.SpentOnChain.count(Key))
      L.Unspent.insert(Key);
  return L;
}

LintReport analyzeAffineDataflow(const std::vector<DataflowTx> &Pending,
                                 const DataflowLedger &Ledger) {
  LintReport Out;

  std::map<std::string, size_t> PendingByTxid;
  for (size_t I = 0; I < Pending.size(); ++I)
    PendingByTxid.emplace(Pending[I].Txid, I);

  // First consumer of each resource within the pending set.
  std::map<std::string, std::string> FirstConsumer;

  for (const DataflowTx &Tx : Pending) {
    const std::string TxSpan = "tx[" + shortId(Tx.Txid) + "]";
    for (size_t I = 0; I < Tx.Consumes.size(); ++I) {
      const std::string &Res = Tx.Consumes[I];
      const std::string Span = TxSpan + "/input[" + std::to_string(I) + "]";

      auto [It, Fresh] = FirstConsumer.emplace(Res, Tx.Txid);
      if (!Fresh) {
        Out.error("dataflow-double-consume",
                  "resource " + Res + " is consumed twice: by " +
                      shortId(It->second) + " and by " + shortId(Tx.Txid) +
                      "; the affine discipline admits at most one consumer",
                  Span);
        continue;
      }

      auto Spent = Ledger.SpentOnChain.find(Res);
      if (Spent != Ledger.SpentOnChain.end()) {
        Out.error("dataflow-consumed",
                  "resource " + Res + " was already consumed on the best "
                  "chain by " + shortId(Spent->second),
                  Span);
        continue;
      }

      auto Stale = Ledger.SpentOnStaleBranches.find(Res);
      if (Stale != Ledger.SpentOnStaleBranches.end()) {
        Out.warn("dataflow-resurrect-reorg",
                 "resource " + Res + " was consumed on a stale branch by " +
                     shortId(Stale->second.front()) +
                     "; if that branch wins again the two consumers race",
                 Span);
      }

      const std::string Producer = outpointTxid(Res);
      bool OnChain = Ledger.ChainTxids.count(Producer) != 0;
      bool InPending = PendingByTxid.count(Producer) != 0;
      if (!OnChain && !InPending) {
        Out.warn("dataflow-orphan",
                 "resource " + Res + " has unknown provenance: producer " +
                     shortId(Producer) +
                     " is neither on the best chain nor pending",
                 Span);
      } else if (OnChain && !Ledger.exists(Res)) {
        Out.warn("dataflow-orphan",
                 "resource " + Res + " does not exist: producer " +
                     shortId(Producer) + " is on the best chain but has "
                     "no such output index",
                 Span);
      } else if (!OnChain && InPending) {
        const DataflowTx &Prod = Pending[PendingByTxid.at(Producer)];
        size_t Index = 0;
        if (auto Colon = Res.find(':'); Colon != std::string::npos)
          Index = std::strtoull(Res.c_str() + Colon + 1, nullptr, 10);
        if (Index >= Prod.NumOutputs)
          Out.warn("dataflow-orphan",
                   "resource " + Res + " does not exist: pending producer " +
                       shortId(Producer) + " declares only " +
                       std::to_string(Prod.NumOutputs) + " outputs",
                   Span);
      }
    }
  }

  // Cycle detection over pending->pending consumption edges (iterative
  // three-color DFS; no topological confirmation order exists inside a
  // cycle, so none of its members can ever confirm).
  enum Color { White, Grey, Black };
  std::vector<Color> Colors(Pending.size(), White);
  auto edges = [&](size_t N) {
    std::vector<size_t> Out;
    for (const std::string &Res : Pending[N].Consumes) {
      auto It = PendingByTxid.find(outpointTxid(Res));
      if (It != PendingByTxid.end())
        Out.push_back(It->second);
    }
    return Out;
  };
  for (size_t Root = 0; Root < Pending.size(); ++Root) {
    if (Colors[Root] != White)
      continue;
    std::vector<std::pair<size_t, size_t>> Stack{{Root, 0}};
    Colors[Root] = Grey;
    while (!Stack.empty()) {
      auto &[Node, NextEdge] = Stack.back();
      std::vector<size_t> Succ = edges(Node);
      if (NextEdge >= Succ.size()) {
        Colors[Node] = Black;
        Stack.pop_back();
        continue;
      }
      size_t To = Succ[NextEdge++];
      if (Colors[To] == Grey) {
        // Walk the grey stack back to To to name the cycle members.
        std::vector<std::string> Members{shortId(Pending[To].Txid)};
        for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
          if (It->first == To)
            break;
          Members.push_back(shortId(Pending[It->first].Txid));
        }
        std::reverse(Members.begin(), Members.end());
        Out.error("dataflow-cycle",
                  "pending transactions consume each other cyclically (" +
                      join(Members, " -> ") +
                      "); no confirmation order exists",
                  "tx[" + shortId(Pending[To].Txid) + "]");
        continue;
      }
      if (Colors[To] == White) {
        Colors[To] = Grey;
        Stack.push_back({To, 0});
      }
    }
  }

  return Out;
}

LintReport analyzeLedger(const DataflowLedger &Ledger) {
  LintReport Out;
  for (const auto &[Res, Consumers] : Ledger.SpentOnStaleBranches) {
    if (Ledger.Unspent.count(Res)) {
      Out.warn("dataflow-resurrect-reorg",
               "resource " + Res + " is unspent on the best chain but was "
               "consumed on a stale branch by " + shortId(Consumers.front()) +
                   "; a reorganization can resurrect that consumer",
               "ledger");
    }
  }
  return Out;
}

} // namespace analysis
} // namespace typecoin
