//===- analysis/diagnostic.h - Lint diagnostics ------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured diagnostics for the static-analysis layer (`tclint`).
/// Unlike \ref Status, which aborts at the first problem, a lint pass
/// accumulates every finding so a client (or the CLI) can report them
/// all at once. Each diagnostic carries a stable machine-readable code,
/// a severity, and a "span": a path into the linted artifact (e.g.
/// `proof/lam(x)/app/arg` or `output[2]`) playing the role a
/// file:line location plays in a source-level linter.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_ANALYSIS_DIAGNOSTIC_H
#define TYPECOIN_ANALYSIS_DIAGNOSTIC_H

#include "support/result.h"

#include <string>
#include <vector>

namespace typecoin {
namespace analysis {

/// How bad a finding is.
enum class Severity {
  Note,    ///< Informational; never affects acceptance.
  Warning, ///< Suspicious but legal (e.g. a never-consumed hypothesis).
  Error,   ///< The full checker / relay policy is guaranteed to reject.
};

const char *severityName(Severity S);

/// One finding.
struct Diagnostic {
  Severity Sev = Severity::Warning;
  /// Stable machine-readable code, e.g. "affine-reuse",
  /// "script-nonstandard", "embed-mismatch".
  std::string Code;
  /// Human-readable message, naming hypotheses/outputs involved.
  std::string Message;
  /// Path into the linted artifact (the lint analogue of a source span).
  std::string Span;

  std::string str() const;
};

/// The accumulated output of a lint pass.
class LintReport {
public:
  void add(Severity Sev, std::string Code, std::string Message,
           std::string Span = "") {
    Diags.push_back(
        {Sev, std::move(Code), std::move(Message), std::move(Span)});
  }
  void note(std::string Code, std::string Message, std::string Span = "") {
    add(Severity::Note, std::move(Code), std::move(Message),
        std::move(Span));
  }
  void warn(std::string Code, std::string Message, std::string Span = "") {
    add(Severity::Warning, std::move(Code), std::move(Message),
        std::move(Span));
  }
  void error(std::string Code, std::string Message, std::string Span = "") {
    add(Severity::Error, std::move(Code), std::move(Message),
        std::move(Span));
  }

  /// Append another report, prefixing each span with \p SpanPrefix
  /// (used when a sub-artifact such as a fallback is linted recursively).
  void merge(const LintReport &Other, const std::string &SpanPrefix = "");

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  size_t size() const { return Diags.size(); }

  size_t count(Severity Sev) const;
  bool hasErrors() const { return count(Severity::Error) != 0; }

  /// True when some diagnostic has the given code.
  bool has(const std::string &Code) const;
  /// First diagnostic with the given minimum severity, or null.
  const Diagnostic *firstAtLeast(Severity Sev) const;

  /// Multi-line rendering, one diagnostic per line.
  std::string str() const;

  /// Collapse into a Status: the first error (if any) becomes the error
  /// message; warnings and notes succeed.
  Status toStatus() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace analysis
} // namespace typecoin

#endif // TYPECOIN_ANALYSIS_DIAGNOSTIC_H
