//===- analysis/audit.cpp - Runtime invariant auditor -------------------------===//

#include "analysis/audit.h"

#include <map>
#include <set>

namespace typecoin {
namespace analysis {

using bitcoin::Amount;
using bitcoin::Block;
using bitcoin::Blockchain;
using bitcoin::Coin;
using bitcoin::OutPoint;
using bitcoin::Transaction;
using bitcoin::TxId;
using bitcoin::UtxoSet;

Status auditChain(const Blockchain &Chain) {
  const int Height = Chain.height();

  // 1. Active-chain linkage: contiguous heights, parent hashes agree.
  std::vector<const Block *> Active;
  Active.reserve(static_cast<size_t>(Height) + 1);
  for (int H = 0; H <= Height; ++H) {
    auto Hash = Chain.blockHashAt(H);
    if (!Hash)
      return makeError("audit: no active block at height " +
                       std::to_string(H));
    const Block *B = Chain.blockByHash(*Hash);
    if (!B)
      return makeError("audit: active hash at height " + std::to_string(H) +
                       " has no stored block");
    if (H > 0 && B->Header.Prev != *Chain.blockHashAt(H - 1))
      return makeError("audit: active block at height " +
                       std::to_string(H) +
                       " does not link to its predecessor");
    Active.push_back(B);
  }
  if (Chain.tipHash() != *Chain.blockHashAt(Height))
    return makeError("audit: tip hash disagrees with the active chain");

  // 2. Replay the active chain from genesis: UTXO soundness and value
  // conservation. UtxoSet::applyTransaction fails on any double spend.
  UtxoSet Replay;
  for (int H = 0; H <= Height; ++H) {
    const Block *B = Active[static_cast<size_t>(H)];
    Amount Fees = 0;
    for (size_t I = 0; I < B->Txs.size(); ++I) {
      const Transaction &Tx = B->Txs[I];
      std::string Where = "audit: height " + std::to_string(H) + " tx " +
                          std::to_string(I);
      if (Tx.isCoinbase() != (I == 0))
        return makeError(Where + ": coinbase in the wrong slot");
      if (!Tx.isCoinbase()) {
        Amount In = 0;
        for (const bitcoin::TxIn &TxInput : Tx.Inputs) {
          const Coin *C = Replay.find(TxInput.Prevout);
          if (!C)
            return makeError(Where + ": input " +
                             TxInput.Prevout.toString() +
                             " spends a missing or already-spent txout");
          In += C->Out.Value;
        }
        Amount Out = Tx.totalOutput();
        if (In < Out)
          return makeError(Where + ": outputs exceed inputs (value "
                                   "conservation violated)");
        Fees += In - Out;
      }
      auto Undo = Replay.applyTransaction(Tx, H);
      if (!Undo)
        return Undo.takeError().withContext(Where);
    }
    if (H > 0 &&
        B->Txs[0].totalOutput() > Chain.params().Subsidy + Fees)
      return makeError("audit: height " + std::to_string(H) +
                       ": coinbase pays more than subsidy plus fees");

    // 3. Index consistency for this block's transactions.
    for (size_t I = 0; I < B->Txs.size(); ++I) {
      TxId Id = B->Txs[I].txid();
      auto Loc = Chain.locate(Id);
      if (!Loc || Loc->Height != H || Loc->IndexInBlock != I)
        return makeError("audit: tx index misplaces height " +
                         std::to_string(H) + " tx " + std::to_string(I));
      int Confs = Chain.confirmations(Id);
      if (Confs != Height - H + 1)
        return makeError("audit: confirmation count wrong for height " +
                         std::to_string(H));
    }
  }

  // 4. The replayed UTXO set must equal the incremental one exactly.
  const UtxoSet &Live = Chain.utxo();
  if (Replay.size() != Live.size())
    return makeError("audit: UTXO set has " + std::to_string(Live.size()) +
                     " entries; replay produced " +
                     std::to_string(Replay.size()));
  for (const auto &[Point, C] : Live.entries()) {
    const Coin *R = Replay.find(Point);
    if (!R)
      return makeError("audit: UTXO entry " + Point.toString() +
                       " is not justified by the active chain");
    if (R->Out.Value != C.Out.Value ||
        !(R->Out.ScriptPubKey == C.Out.ScriptPubKey) ||
        R->Height != C.Height || R->IsCoinbase != C.IsCoinbase)
      return makeError("audit: UTXO entry " + Point.toString() +
                       " differs from its replayed value");
    if (C.Height > Height)
      return makeError("audit: UTXO entry " + Point.toString() +
                       " has height beyond the tip");
  }
  return Status::success();
}

Status auditMempool(const bitcoin::Mempool &Pool, const Blockchain &Chain) {
  std::vector<Transaction> Txs = Pool.snapshot();
  std::set<OutPoint> Spent;
  std::set<TxId> InPool;
  for (const Transaction &Tx : Txs)
    InPool.insert(Tx.txid());

  for (size_t I = 0; I < Txs.size(); ++I) {
    const Transaction &Tx = Txs[I];
    std::string Where = "audit: mempool tx " + std::to_string(I);
    if (Chain.locate(Tx.txid()))
      return makeError(Where + " is already confirmed on the best chain");
    if (Tx.isCoinbase())
      return makeError(Where + " is a coinbase");
    for (const bitcoin::TxIn &In : Tx.Inputs) {
      if (!Spent.insert(In.Prevout).second)
        return makeError(Where + ": txout " + In.Prevout.toString() +
                         " is spent by two pool transactions");
      if (!Chain.utxo().contains(In.Prevout) &&
          !InPool.count(In.Prevout.Tx))
        return makeError(Where + ": input " + In.Prevout.toString() +
                         " is neither confirmed-unspent nor in-pool");
    }
  }
  return Status::success();
}

Status auditState(const tc::State &State) {
  std::set<std::pair<std::string, uint32_t>> SeenInputs;
  for (const std::string &Txid : State.registeredTxids()) {
    const tc::Transaction *T = State.find(Txid);
    if (!T)
      return makeError("audit: registered txid " + Txid.substr(0, 8) +
                       " has no body");
    for (const tc::Input &In : T->Inputs) {
      auto Key = std::make_pair(In.SourceTxid, In.SourceIndex);
      if (!SeenInputs.insert(Key).second)
        return makeError("audit: txout " + In.SourceTxid + ":" +
                         std::to_string(In.SourceIndex) +
                         " is consumed by two registered transactions "
                         "(affine violation)");
      if (!State.isConsumed(In.SourceTxid, In.SourceIndex))
        return makeError("audit: input " + In.SourceTxid + ":" +
                         std::to_string(In.SourceIndex) +
                         " of a registered transaction is not marked "
                         "consumed");
    }
  }
  return Status::success();
}

void installChainAuditor(Blockchain &Chain) {
  Chain.setAuditHook(
      [](const Blockchain &C) { return auditChain(C); });
}

} // namespace analysis
} // namespace typecoin
