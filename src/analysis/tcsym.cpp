//===- analysis/tcsym.cpp - Symbolic script verifier ----------------------===//

#include "analysis/tcsym.h"

#include "bitcoin/standard.h"
#include "crypto/ripemd160.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "support/strings.h"

#include <algorithm>
#include <optional>

namespace typecoin {
namespace analysis {

using bitcoin::castToBool;
using bitcoin::Script;
using bitcoin::scriptNumDecode;
using bitcoin::scriptNumEncode;

const char *spendabilityName(Spendability S) {
  switch (S) {
  case Spendability::Spendable:
    return "spendable";
  case Spendability::Unspendable:
    return "unspendable";
  case Spendability::Unknown:
    return "unknown";
  }
  return "unknown";
}

namespace {

Bytes boolBytes(bool B) { return B ? Bytes{1} : Bytes(); }

/// What the path knows about one witness input it has drawn.
struct InputInfo {
  SymValue::Kind Role = SymValue::Kind::Top; ///< Sig/PubKey once consumed.
  /// True once some operation examined the value (comparison, numeric
  /// decode, branch condition, signature check, final truthiness). An
  /// input that stays unconstrained is pure witness slack: any bytes
  /// satisfy the script, which is the extra-stack malleability class.
  bool Constrained = false;
};

/// One in-flight execution path.
struct PathState {
  std::vector<SymValue> Stack;
  std::vector<SymValue> Alt;
  std::vector<InputInfo> Inputs;
  std::vector<bool> ExecStack;
  std::string BranchTrail;
  size_t OpCount = 0;
  size_t ElemIdx = 0; ///< Next element to execute.
  bool UsesWitnessSig = false;
  bool SigSubstSlack = false;
};

/// How a path left the executor.
enum class PathEnd { Fail, Success, Unknown };

class SymEngine {
public:
  SymEngine(const std::vector<Script::Element> &Elems, const SymOptions &Opts)
      : Elems(Elems), Opts(Opts) {}

  void run(ScriptVerdict &V);

private:
  // --- Abstract stack ----------------------------------------------------

  /// Materialize \p N fresh witness inputs at the *bottom* of the stack
  /// (the region the scriptSig populated). Closed world: report
  /// underflow instead.
  bool ensure(PathState &P, size_t N) {
    while (P.Stack.size() < N) {
      if (Opts.ClosedWorld)
        return false;
      int Id = static_cast<int>(P.Inputs.size());
      P.Inputs.push_back(InputInfo{});
      P.Stack.insert(P.Stack.begin(), SymValue::top(Id));
    }
    return true;
  }

  SymValue popValue(PathState &P) {
    SymValue V = std::move(P.Stack.back());
    P.Stack.pop_back();
    return V;
  }

  bool overLimit(const PathState &P) const {
    return P.Stack.size() + P.Alt.size() + 1 >
           bitcoin::MaxScriptStackSize;
  }

  static void markConstrained(PathState &P, const SymValue &V) {
    if (V.InputId >= 0)
      P.Inputs[static_cast<size_t>(V.InputId)].Constrained = true;
  }
  static void setRole(PathState &P, const SymValue &V, SymValue::Kind Role) {
    if (V.InputId >= 0 &&
        P.Inputs[static_cast<size_t>(V.InputId)].Role == SymValue::Kind::Top)
      P.Inputs[static_cast<size_t>(V.InputId)].Role = Role;
  }

  /// Pop an operand as a script number. Returns nullopt-with-ok for a
  /// symbolic operand (value unknown, input constrained); an engaged
  /// error means the path fails like the concrete interpreter would.
  struct NumPop {
    std::optional<int64_t> Value; ///< Engaged when concrete.
    std::string Fail;             ///< Non-empty: the path fails.
  };
  NumPop popNum(PathState &P) {
    NumPop Out;
    if (!ensure(P, 1)) {
      Out.Fail = "script: stack underflow";
      return Out;
    }
    SymValue V = popValue(P);
    if (V.isConcrete()) {
      auto N = scriptNumDecode(V.Data);
      if (!N) {
        Out.Fail = N.error().message();
        return Out;
      }
      Out.Value = *N;
      return Out;
    }
    // Must decode as a valid <= 4 byte number at runtime: examined.
    markConstrained(P, V);
    return Out;
  }

  // --- Path lifecycle ----------------------------------------------------

  void finish(PathState &P, PathEnd End, std::string Reason);
  void fork(const PathState &P, const SymValue &Cond, bool Negate);

  /// Execute one non-push, non-branch opcode. Returns false when the
  /// path terminated (finish() already called).
  bool step(PathState &P, const Script::Element &E);

  /// Run \p P until it terminates or forks.
  void runPath(PathState P);

  const std::vector<Script::Element> &Elems;
  const SymOptions &Opts;
  std::vector<PathState> Work;
  size_t Steps = 0;
  ScriptVerdict *V = nullptr;
  bool StackBreach = false;
};

void SymEngine::finish(PathState &P, PathEnd End, std::string Reason) {
  PathSummary S;
  S.InputsConsumed = P.Inputs.size();
  S.BranchTrail = P.BranchTrail;
  S.FinalStack = std::move(P.Stack);
  switch (End) {
  case PathEnd::Fail:
    S.FailReason = std::move(Reason);
    break;
  case PathEnd::Unknown:
    S.FailReason = std::move(Reason);
    V->PathLimitHit = true;
    break;
  case PathEnd::Success: {
    S.Succeeds = true;
    if (P.UsesWitnessSig)
      S.Malleability |= MalleableDER;
    if (P.SigSubstSlack)
      S.Malleability |= MalleableSigSubst;
    for (const InputInfo &I : P.Inputs)
      if (!I.Constrained)
        S.Malleability |= MalleableExtraStack;
    break;
  }
  }
  ++V->PathsExplored;
  V->Paths.push_back(std::move(S));
}

void SymEngine::fork(const PathState &P, const SymValue &Cond, bool Negate) {
  // Both arms are feasible for some witness; explore each with the
  // branch decision recorded. Negate folds OP_NOTIF into the trail so
  // '1' always means "the IF arm runs".
  if (V->PathsExplored + Work.size() + 2 > Opts.MaxPaths) {
    V->PathLimitHit = true;
    PathState Clone = P;
    finish(Clone, PathEnd::Unknown, "sym: path bound reached");
    return;
  }
  for (bool Taken : {false, true}) {
    PathState Clone = P;
    markConstrained(Clone, Cond);
    Clone.ExecStack.push_back(Negate ? !Taken : Taken);
    Clone.BranchTrail.push_back(Taken ? '1' : '0');
    ++Clone.ElemIdx;
    Work.push_back(std::move(Clone));
  }
}

bool SymEngine::step(PathState &P, const Script::Element &E) {
  using bitcoin::Opcode;
  auto Fail = [&](std::string Why) {
    finish(P, PathEnd::Fail, std::move(Why));
    return false;
  };
  auto Underflow = [&] { return Fail("script: stack underflow"); };
  auto Push = [&](SymValue Val) {
    if (overLimit(P)) {
      StackBreach = true;
      return Fail("script: stack size limit exceeded");
    }
    P.Stack.push_back(std::move(Val));
    return true;
  };

  if (E.Op >= bitcoin::OP_1 && E.Op <= bitcoin::OP_16)
    return Push(SymValue::concrete(scriptNumEncode(E.Op - bitcoin::OP_1 + 1)));

  switch (E.Op) {
  case bitcoin::OP_NOP:
    return true;
  case bitcoin::OP_1NEGATE:
    return Push(SymValue::concrete(scriptNumEncode(-1)));
  case bitcoin::OP_VERIFY: {
    if (!ensure(P, 1))
      return Underflow();
    SymValue C = popValue(P);
    if (C.isConcrete()) {
      if (!castToBool(C.Data))
        return Fail("script: OP_VERIFY failed");
      return true;
    }
    markConstrained(P, C); // Must be truthy at runtime.
    return true;
  }
  case bitcoin::OP_RETURN:
    return Fail("script: OP_RETURN executed");

  case bitcoin::OP_TOALTSTACK: {
    if (!ensure(P, 1))
      return Underflow();
    P.Alt.push_back(popValue(P));
    return true;
  }
  case bitcoin::OP_FROMALTSTACK: {
    if (P.Alt.empty())
      return Fail("script: alt stack underflow");
    SymValue Val = std::move(P.Alt.back());
    P.Alt.pop_back();
    return Push(std::move(Val));
  }
  case bitcoin::OP_2DROP: {
    if (!ensure(P, 2))
      return Underflow();
    P.Stack.pop_back();
    P.Stack.pop_back();
    return true;
  }
  case bitcoin::OP_2DUP: {
    if (!ensure(P, 2))
      return Underflow();
    SymValue A = P.Stack[P.Stack.size() - 2];
    SymValue B = P.Stack[P.Stack.size() - 1];
    return Push(std::move(A)) && Push(std::move(B));
  }
  case bitcoin::OP_3DUP: {
    if (!ensure(P, 3))
      return Underflow();
    for (size_t I = P.Stack.size() - 3, End = P.Stack.size(); I < End; ++I)
      if (!Push(SymValue(P.Stack[I])))
        return false;
    return true;
  }
  case bitcoin::OP_IFDUP: {
    if (!ensure(P, 1))
      return Underflow();
    const SymValue &Top = P.Stack.back();
    if (Top.isConcrete()) {
      if (castToBool(Top.Data))
        return Push(SymValue(Top));
      return true;
    }
    // Truthiness unknown: fork on whether the duplicate appears. Treat
    // like a branch with two successors at the same element.
    if (V->PathsExplored + Work.size() + 2 > Opts.MaxPaths) {
      V->PathLimitHit = true;
      finish(P, PathEnd::Unknown, "sym: path bound reached");
      return false;
    }
    for (bool Truthy : {false, true}) {
      PathState Clone = P;
      markConstrained(Clone, Top);
      Clone.BranchTrail.push_back(Truthy ? '1' : '0');
      if (Truthy)
        Clone.Stack.push_back(Clone.Stack.back());
      ++Clone.ElemIdx;
      Work.push_back(std::move(Clone));
    }
    return false; // Successors queued; this frame is done.
  }
  case bitcoin::OP_DEPTH: {
    if (Opts.ClosedWorld)
      return Push(SymValue::concrete(
          scriptNumEncode(static_cast<int64_t>(P.Stack.size()))));
    // The witness may hold arbitrarily many extra elements below what we
    // have materialized, so the depth is statically unknown.
    return Push(SymValue::top());
  }
  case bitcoin::OP_DROP: {
    if (!ensure(P, 1))
      return Underflow();
    P.Stack.pop_back();
    return true;
  }
  case bitcoin::OP_DUP: {
    if (!ensure(P, 1))
      return Underflow();
    return Push(SymValue(P.Stack.back()));
  }
  case bitcoin::OP_NIP: {
    if (!ensure(P, 2))
      return Underflow();
    P.Stack.erase(P.Stack.end() - 2);
    return true;
  }
  case bitcoin::OP_OVER: {
    if (!ensure(P, 2))
      return Underflow();
    return Push(SymValue(P.Stack[P.Stack.size() - 2]));
  }
  case bitcoin::OP_PICK:
  case bitcoin::OP_ROLL: {
    NumPop N = popNum(P);
    if (!N.Fail.empty())
      return Fail(N.Fail);
    if (!N.Value) {
      // A symbolic index reaches an unknowable stack slot.
      finish(P, PathEnd::Unknown, "sym: PICK/ROLL with symbolic index");
      return false;
    }
    if (*N.Value < 0)
      return Fail("script: PICK/ROLL index out of range");
    if (!ensure(P, static_cast<size_t>(*N.Value) + 1))
      return Fail("script: PICK/ROLL index out of range");
    size_t Idx = P.Stack.size() - 1 - static_cast<size_t>(*N.Value);
    SymValue Val = P.Stack[Idx];
    if (E.Op == bitcoin::OP_ROLL)
      P.Stack.erase(P.Stack.begin() + static_cast<ptrdiff_t>(Idx));
    return Push(std::move(Val));
  }
  case bitcoin::OP_ROT: {
    if (!ensure(P, 3))
      return Underflow();
    std::swap(P.Stack[P.Stack.size() - 3], P.Stack[P.Stack.size() - 2]);
    std::swap(P.Stack[P.Stack.size() - 2], P.Stack[P.Stack.size() - 1]);
    return true;
  }
  case bitcoin::OP_SWAP: {
    if (!ensure(P, 2))
      return Underflow();
    std::swap(P.Stack[P.Stack.size() - 2], P.Stack[P.Stack.size() - 1]);
    return true;
  }
  case bitcoin::OP_TUCK: {
    if (!ensure(P, 2))
      return Underflow();
    SymValue Top = P.Stack.back();
    P.Stack.insert(P.Stack.end() - 2, std::move(Top));
    return true;
  }
  case bitcoin::OP_SIZE: {
    if (!ensure(P, 1))
      return Underflow();
    const SymValue &Top = P.Stack.back();
    if (Top.isConcrete())
      return Push(SymValue::concrete(
          scriptNumEncode(static_cast<int64_t>(Top.Data.size()))));
    return Push(SymValue::top(Top.InputId));
  }

  case bitcoin::OP_EQUAL:
  case bitcoin::OP_EQUALVERIFY: {
    if (!ensure(P, 2))
      return Underflow();
    SymValue B = popValue(P);
    SymValue A = popValue(P);
    if (A.isConcrete() && B.isConcrete()) {
      bool Eq = A.Data == B.Data;
      if (E.Op == bitcoin::OP_EQUALVERIFY) {
        if (!Eq)
          return Fail("script: OP_EQUALVERIFY failed");
        return true;
      }
      return Push(SymValue::concrete(boolBytes(Eq)));
    }
    // At least one side is witness-dependent: both sides are examined,
    // and either outcome is reachable for a suitable witness (hash
    // preimages are assumed producible by the legitimate spender).
    markConstrained(P, A);
    markConstrained(P, B);
    if (E.Op == bitcoin::OP_EQUALVERIFY)
      return true;
    return Push(SymValue::top());
  }

  case bitcoin::OP_1ADD:
  case bitcoin::OP_1SUB:
  case bitcoin::OP_NEGATE:
  case bitcoin::OP_ABS:
  case bitcoin::OP_NOT:
  case bitcoin::OP_0NOTEQUAL: {
    NumPop N = popNum(P);
    if (!N.Fail.empty())
      return Fail(N.Fail);
    if (!N.Value)
      return Push(SymValue::top());
    int64_t X = *N.Value;
    int64_t R = 0;
    switch (E.Op) {
    case bitcoin::OP_1ADD:
      R = X + 1;
      break;
    case bitcoin::OP_1SUB:
      R = X - 1;
      break;
    case bitcoin::OP_NEGATE:
      R = -X;
      break;
    case bitcoin::OP_ABS:
      R = X < 0 ? -X : X;
      break;
    case bitcoin::OP_NOT:
      R = X == 0;
      break;
    default:
      R = X != 0;
      break;
    }
    return Push(SymValue::concrete(scriptNumEncode(R)));
  }

  case bitcoin::OP_ADD:
  case bitcoin::OP_SUB:
  case bitcoin::OP_BOOLAND:
  case bitcoin::OP_BOOLOR:
  case bitcoin::OP_NUMEQUAL:
  case bitcoin::OP_NUMEQUALVERIFY:
  case bitcoin::OP_NUMNOTEQUAL:
  case bitcoin::OP_LESSTHAN:
  case bitcoin::OP_GREATERTHAN:
  case bitcoin::OP_LESSTHANOREQUAL:
  case bitcoin::OP_GREATERTHANOREQUAL:
  case bitcoin::OP_MIN:
  case bitcoin::OP_MAX: {
    NumPop B = popNum(P);
    if (!B.Fail.empty())
      return Fail(B.Fail);
    NumPop A = popNum(P);
    if (!A.Fail.empty())
      return Fail(A.Fail);
    if (!A.Value || !B.Value) {
      if (E.Op == bitcoin::OP_NUMEQUALVERIFY)
        return true; // Satisfiable: a witness can make them equal.
      return Push(SymValue::top());
    }
    int64_t X = *A.Value, Y = *B.Value;
    int64_t R = 0;
    switch (E.Op) {
    case bitcoin::OP_ADD:
      R = X + Y;
      break;
    case bitcoin::OP_SUB:
      R = X - Y;
      break;
    case bitcoin::OP_BOOLAND:
      R = X != 0 && Y != 0;
      break;
    case bitcoin::OP_BOOLOR:
      R = X != 0 || Y != 0;
      break;
    case bitcoin::OP_NUMEQUAL:
    case bitcoin::OP_NUMEQUALVERIFY:
      R = X == Y;
      break;
    case bitcoin::OP_NUMNOTEQUAL:
      R = X != Y;
      break;
    case bitcoin::OP_LESSTHAN:
      R = X < Y;
      break;
    case bitcoin::OP_GREATERTHAN:
      R = X > Y;
      break;
    case bitcoin::OP_LESSTHANOREQUAL:
      R = X <= Y;
      break;
    case bitcoin::OP_GREATERTHANOREQUAL:
      R = X >= Y;
      break;
    case bitcoin::OP_MIN:
      R = X < Y ? X : Y;
      break;
    default:
      R = X > Y ? X : Y;
      break;
    }
    if (E.Op == bitcoin::OP_NUMEQUALVERIFY) {
      if (!R)
        return Fail("script: OP_NUMEQUALVERIFY failed");
      return true;
    }
    return Push(SymValue::concrete(scriptNumEncode(R)));
  }
  case bitcoin::OP_WITHIN: {
    NumPop Max = popNum(P);
    if (!Max.Fail.empty())
      return Fail(Max.Fail);
    NumPop Min = popNum(P);
    if (!Min.Fail.empty())
      return Fail(Min.Fail);
    NumPop X = popNum(P);
    if (!X.Fail.empty())
      return Fail(X.Fail);
    if (!Max.Value || !Min.Value || !X.Value)
      return Push(SymValue::top());
    return Push(SymValue::concrete(
        boolBytes(*Min.Value <= *X.Value && *X.Value < *Max.Value)));
  }

  case bitcoin::OP_RIPEMD160:
  case bitcoin::OP_SHA256:
  case bitcoin::OP_HASH160:
  case bitcoin::OP_HASH256: {
    if (!ensure(P, 1))
      return Underflow();
    SymValue Val = popValue(P);
    if (!Val.isConcrete())
      return Push(SymValue::top(Val.InputId));
    Bytes Out;
    switch (E.Op) {
    case bitcoin::OP_RIPEMD160: {
      auto D = crypto::ripemd160(Val.Data);
      Out.assign(D.begin(), D.end());
      break;
    }
    case bitcoin::OP_SHA256: {
      auto D = crypto::sha256(Val.Data);
      Out.assign(D.begin(), D.end());
      break;
    }
    case bitcoin::OP_HASH160: {
      auto First = crypto::sha256(Val.Data);
      auto D = crypto::ripemd160(First.data(), First.size());
      Out.assign(D.begin(), D.end());
      break;
    }
    default: {
      auto D = crypto::sha256d(Val.Data);
      Out.assign(D.begin(), D.end());
      break;
    }
    }
    return Push(SymValue::concrete(std::move(Out)));
  }

  case bitcoin::OP_CHECKSIG:
  case bitcoin::OP_CHECKSIGVERIFY: {
    if (!ensure(P, 2))
      return Underflow();
    SymValue PubKey = popValue(P);
    SymValue Sig = popValue(P);
    setRole(P, Sig, SymValue::Kind::Sig);
    setRole(P, PubKey, SymValue::Kind::PubKey);
    markConstrained(P, Sig);
    markConstrained(P, PubKey);
    if (!Sig.isConcrete())
      P.UsesWitnessSig = true;
    // Signature validity depends on the (unmodeled) spending
    // transaction; the legitimate spender can always produce a valid
    // signature, so the result is satisfiable either way.
    if (E.Op == bitcoin::OP_CHECKSIGVERIFY)
      return true;
    return Push(SymValue::top());
  }

  case bitcoin::OP_CHECKMULTISIG:
  case bitcoin::OP_CHECKMULTISIGVERIFY: {
    NumPop NKeys = popNum(P);
    if (!NKeys.Fail.empty())
      return Fail(NKeys.Fail);
    if (!NKeys.Value) {
      finish(P, PathEnd::Unknown, "sym: CHECKMULTISIG with symbolic n");
      return false;
    }
    if (*NKeys.Value < 0 || *NKeys.Value > 20)
      return Fail("script: bad multisig key count");
    if (!ensure(P, static_cast<size_t>(*NKeys.Value)))
      return Underflow();
    for (int64_t I = 0; I < *NKeys.Value; ++I) {
      SymValue Key = popValue(P);
      setRole(P, Key, SymValue::Kind::PubKey);
      markConstrained(P, Key);
    }
    NumPop NSigs = popNum(P);
    if (!NSigs.Fail.empty())
      return Fail(NSigs.Fail);
    if (!NSigs.Value) {
      finish(P, PathEnd::Unknown, "sym: CHECKMULTISIG with symbolic m");
      return false;
    }
    if (*NSigs.Value < 0 || *NSigs.Value > *NKeys.Value)
      return Fail("script: bad multisig signature count");
    if (!ensure(P, static_cast<size_t>(*NSigs.Value)))
      return Underflow();
    for (int64_t I = 0; I < *NSigs.Value; ++I) {
      SymValue Sig = popValue(P);
      setRole(P, Sig, SymValue::Kind::Sig);
      markConstrained(P, Sig);
      if (!Sig.isConcrete())
        P.UsesWitnessSig = true;
    }
    // The famous off-by-one: one extra element is popped and never
    // examined — the canonical extra-stack malleability vector. Leave
    // it unconstrained so a witness-drawn dummy is classified as slack.
    if (!ensure(P, 1))
      return Underflow();
    popValue(P);
    if (*NSigs.Value >= 1 && *NSigs.Value < *NKeys.Value)
      P.SigSubstSlack = true; // m-of-n, m < n: other key subsets satisfy.
    bool TriviallyTrue = *NSigs.Value == 0;
    if (E.Op == bitcoin::OP_CHECKMULTISIGVERIFY)
      return true;
    if (TriviallyTrue)
      return Push(SymValue::concrete(boolBytes(true)));
    return Push(SymValue::top());
  }

  default:
    return Fail(strformat("script: unknown or disabled opcode 0x%02x",
                          static_cast<unsigned>(E.Op)));
  }
}

void SymEngine::runPath(PathState P) {
  while (P.ElemIdx < Elems.size()) {
    if (++Steps > Opts.MaxSteps) {
      V->PathLimitHit = true;
      finish(P, PathEnd::Unknown, "sym: step bound reached");
      return;
    }
    const Script::Element &E = Elems[P.ElemIdx];
    bool Executing = std::find(P.ExecStack.begin(), P.ExecStack.end(),
                               false) == P.ExecStack.end();
    bool IsBranch = E.Op == bitcoin::OP_IF || E.Op == bitcoin::OP_NOTIF ||
                    E.Op == bitcoin::OP_ELSE || E.Op == bitcoin::OP_ENDIF;
    if (!Executing && !IsBranch) {
      ++P.ElemIdx;
      continue;
    }
    if (E.IsPush) {
      if (E.Push.size() > bitcoin::MaxScriptPushSize) {
        StackBreach = true;
        finish(P, PathEnd::Fail, "script: push exceeds 520 bytes");
        return;
      }
      if (overLimit(P)) {
        StackBreach = true;
        finish(P, PathEnd::Fail, "script: stack size limit exceeded");
        return;
      }
      P.Stack.push_back(SymValue::concrete(E.Push));
      ++P.ElemIdx;
      continue;
    }
    if (E.Op > bitcoin::OP_16 && ++P.OpCount > bitcoin::MaxOpsPerScript) {
      StackBreach = true;
      finish(P, PathEnd::Fail, "script: op count limit exceeded");
      return;
    }
    if (IsBranch) {
      switch (E.Op) {
      case bitcoin::OP_IF:
      case bitcoin::OP_NOTIF: {
        if (!Executing) {
          P.ExecStack.push_back(false);
          break;
        }
        if (!ensure(P, 1)) {
          finish(P, PathEnd::Fail, "script: stack underflow");
          return;
        }
        SymValue Cond = popValue(P);
        if (Cond.isConcrete()) {
          bool Value = castToBool(Cond.Data);
          if (E.Op == bitcoin::OP_NOTIF)
            Value = !Value;
          P.ExecStack.push_back(Value);
          break;
        }
        fork(P, Cond, E.Op == bitcoin::OP_NOTIF);
        return; // Successors queued.
      }
      case bitcoin::OP_ELSE:
        if (P.ExecStack.empty()) {
          finish(P, PathEnd::Fail, "script: OP_ELSE without OP_IF");
          return;
        }
        P.ExecStack.back() = !P.ExecStack.back();
        break;
      default: // OP_ENDIF
        if (P.ExecStack.empty()) {
          finish(P, PathEnd::Fail, "script: OP_ENDIF without OP_IF");
          return;
        }
        P.ExecStack.pop_back();
        break;
      }
      ++P.ElemIdx;
      continue;
    }
    size_t Before = P.ElemIdx;
    if (!step(P, E))
      return; // Terminated or queued successors (IFDUP fork).
    P.ElemIdx = Before + 1;
  }

  // End of script.
  if (!P.ExecStack.empty()) {
    finish(P, PathEnd::Fail, "script: unbalanced conditional");
    return;
  }
  if (P.Stack.empty() && !ensure(P, 1)) {
    finish(P, PathEnd::Fail, "script: evaluated to false (empty stack)");
    return;
  }
  const SymValue &Top = P.Stack.back();
  if (Top.isConcrete()) {
    if (castToBool(Top.Data))
      finish(P, PathEnd::Success, "");
    else
      finish(P, PathEnd::Fail, "script: evaluated to false");
    return;
  }
  markConstrained(P, Top); // Must be truthy: examined.
  finish(P, PathEnd::Success, "");
}

void SymEngine::run(ScriptVerdict &Out) {
  V = &Out;
  PathState Init;
  for (const Bytes &B : Opts.InitialStack)
    Init.Stack.push_back(SymValue::concrete(B));
  Work.push_back(std::move(Init));
  while (!Work.empty()) {
    PathState P = std::move(Work.back());
    Work.pop_back();
    runPath(std::move(P));
  }
  Out.StackSafe = !StackBreach;
}

struct SymMetrics {
  obs::Counter &Spendable = obs::counter("sym.verdict.spendable");
  obs::Counter &Unspendable = obs::counter("sym.verdict.unspendable");
  obs::Counter &Unknown = obs::counter("sym.verdict.unknown");
  obs::Histogram &Paths = obs::sizeHistogram("sym.paths");
  obs::Histogram &AnalyzeNs = obs::latencyHistogram("sym.analyze_ns");

  static SymMetrics &get() {
    static SymMetrics M;
    return M;
  }
};

ScriptVerdict analyzeScriptImpl(const Script &Lock, const SymOptions &Opts) {
  ScriptVerdict V;
  if (Lock.size() > bitcoin::MaxScriptSize) {
    V.WellFormed = false;
    V.StackSafe = false;
    V.Spend = Spendability::Unspendable;
    V.Report.error("sym-malformed",
                   "script exceeds the 10000-byte size limit; every "
                   "spend attempt is rejected");
    return V;
  }
  auto Elems = Lock.decode();
  if (!Elems) {
    V.WellFormed = false;
    V.StackSafe = false;
    V.Spend = Spendability::Unspendable;
    V.Report.error("sym-malformed",
                   "script does not decode (" + Elems.error().message() +
                       "); every spend attempt is rejected");
    return V;
  }
  V.WellFormed = true;

  SymEngine Engine(*Elems, Opts);
  Engine.run(V);

  // Aggregate path verdicts.
  size_t Succeeding = 0;
  bool AnyUnbalanced = false;
  std::string FirstFail;
  std::string FirstTrail;
  bool TrailsDiffer = false;
  V.InputsNeeded = SIZE_MAX;
  for (const PathSummary &P : V.Paths) {
    if (P.Succeeds) {
      if (Succeeding == 0)
        FirstTrail = P.BranchTrail;
      else if (P.BranchTrail != FirstTrail)
        TrailsDiffer = true;
      ++Succeeding;
      V.Malleability |= P.Malleability;
      V.InputsNeeded = std::min(V.InputsNeeded, P.InputsConsumed);
    } else {
      if (FirstFail.empty())
        FirstFail = P.FailReason;
      if (P.FailReason.find("unbalanced") != std::string::npos)
        AnyUnbalanced = true;
    }
  }
  if (Succeeding == 0)
    V.InputsNeeded = 0;
  if (Succeeding >= 2 && TrailsDiffer)
    V.Malleability |= MalleableSigSubst; // Multiple satisfiable arms.

  if (Succeeding > 0)
    V.Spend = Spendability::Spendable;
  else if (V.PathLimitHit)
    V.Spend = Spendability::Unknown;
  else
    V.Spend = Spendability::Unspendable;

  // Mirror the verdict as diagnostics so carriers/CLI can merge reports.
  if (V.Spend == Spendability::Unspendable)
    V.Report.error("sym-unspendable",
                   "provably unspendable: every execution path fails (" +
                       (FirstFail.empty() ? std::string("no paths")
                                          : FirstFail) +
                       ")");
  if (AnyUnbalanced && V.Spend == Spendability::Unspendable)
    V.Report.note("sym-unbalanced-if",
                  "some path ends inside an unterminated IF/ELSE");
  if (!V.StackSafe)
    V.Report.error("sym-stack-unsafe",
                   "some execution path breaches an interpreter bound "
                   "(stack size, op count, or push size)");
  if (V.Spend == Spendability::Unknown)
    V.Report.warn("sym-undecided",
                  "path or step bound reached before a satisfying path "
                  "was found (" +
                      std::to_string(V.PathsExplored) + " paths explored)");
  if (V.Spend == Spendability::Spendable && V.InputsNeeded == 0)
    V.Report.warn("sym-anyone-can-spend",
                  "satisfiable with an empty scriptSig: anyone can spend "
                  "this output");
  if (V.Malleability & MalleableDER)
    V.Report.warn("sym-malleable-der",
                  "a satisfying witness carries an ECDSA signature; "
                  "non-canonical DER re-encodings change the txid");
  if (V.Malleability & MalleableExtraStack)
    V.Report.warn("sym-malleable-extrastack",
                  "a satisfying witness contains a never-examined "
                  "element (e.g. the CHECKMULTISIG dummy); any bytes "
                  "there change the txid");
  if (V.Malleability & MalleableSigSubst)
    V.Report.warn("sym-malleable-sigsubst",
                  "an alternative signature set also satisfies the "
                  "script (m < n multisig or multiple satisfiable "
                  "branches)");
  return V;
}

} // namespace

ScriptVerdict analyzeScript(const Script &Lock, const SymOptions &Opts) {
  SymMetrics &M = SymMetrics::get();
  ScriptVerdict V;
  {
    obs::ScopedTimer Timer(M.AnalyzeNs);
    V = analyzeScriptImpl(Lock, Opts);
  }
  M.Paths.observe(V.PathsExplored);
  switch (V.Spend) {
  case Spendability::Spendable:
    M.Spendable.inc();
    break;
  case Spendability::Unspendable:
    M.Unspendable.inc();
    break;
  case Spendability::Unknown:
    M.Unknown.inc();
    break;
  }
  return V;
}

LintReport analyzeCarrierScripts(const bitcoin::Transaction &Btc,
                                 const SymOptions &Opts,
                                 std::vector<ScriptVerdict> *Verdicts) {
  LintReport Out;
  for (size_t I = 0; I < Btc.Outputs.size(); ++I) {
    const std::string Span = "output[" + std::to_string(I) + "]";
    const bitcoin::Script &S = Btc.Outputs[I].ScriptPubKey;
    bitcoin::SolvedScript Solved = bitcoin::solveScript(S);
    if (Solved.Kind == bitcoin::TxOutKind::NullData) {
      // Intentionally unspendable data carrier; do not flag deadweight.
      Out.note("sym-nulldata",
               "OP_RETURN data carrier (intentionally unspendable)", Span);
      if (Verdicts)
        Verdicts->push_back(ScriptVerdict{});
      continue;
    }
    ScriptVerdict V = analyzeScript(S, Opts);
    Out.merge(V.Report, Span);
    if (Verdicts)
      Verdicts->push_back(std::move(V));
  }
  return Out;
}

} // namespace analysis
} // namespace typecoin
