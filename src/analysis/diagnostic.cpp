//===- analysis/diagnostic.cpp - Lint diagnostics -----------------------------===//

#include "analysis/diagnostic.h"

namespace typecoin {
namespace analysis {

const char *severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = severityName(Sev);
  Out += " [";
  Out += Code;
  Out += "] ";
  Out += Message;
  if (!Span.empty()) {
    Out += " (at ";
    Out += Span;
    Out += ")";
  }
  return Out;
}

void LintReport::merge(const LintReport &Other,
                       const std::string &SpanPrefix) {
  for (const Diagnostic &D : Other.Diags) {
    Diagnostic Copy = D;
    if (!SpanPrefix.empty())
      Copy.Span = Copy.Span.empty() ? SpanPrefix
                                    : SpanPrefix + "/" + Copy.Span;
    Diags.push_back(std::move(Copy));
  }
}

size_t LintReport::count(Severity Sev) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Sev)
      ++N;
  return N;
}

bool LintReport::has(const std::string &Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

const Diagnostic *LintReport::firstAtLeast(Severity Sev) const {
  for (const Diagnostic &D : Diags)
    if (static_cast<int>(D.Sev) >= static_cast<int>(Sev))
      return &D;
  return nullptr;
}

std::string LintReport::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += "\n";
  }
  return Out;
}

Status LintReport::toStatus() const {
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      return makeError("lint: " + D.str());
  return Status::success();
}

} // namespace analysis
} // namespace typecoin
