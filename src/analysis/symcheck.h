//===- analysis/symcheck.h - The TYPECOIN_SYMCHECK gate ----------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opt-in symbolic verification gate: tcsym (analysis/tcsym.h) over
/// every carrier output script plus the whole-ledger affine dataflow
/// pass (analysis/dataflow.h), wired into Node::submitPair and
/// BatchServer::recordWriteThrough behind the `TYPECOIN_SYMCHECK`
/// environment variable (unset or "0" = off, anything else = on,
/// re-read on every call so tests can toggle it).
///
/// Severity contract: the gate rejects only on Error findings — a
/// provably unspendable non-OP_RETURN carrier output (a resource frozen
/// forever), a stack-unsafe script, a double-consume, or a consumption
/// of an already-consumed resource. Malleability classes and
/// reorg/provenance hazards are warnings: real, but the pair is still
/// acceptable. Verdict counters (`sym.verdict.*`), the path-count
/// histogram (`sym.paths`), and analysis latency (`sym.analyze_ns`) are
/// exported through the obs registry by tcsym itself; this gate adds
/// `symcheck.gate.{checked,rejected}` and `symcheck.gate_ns`.
///
/// Findings also render to a machine-readable JSON document (schema
/// `typecoin-findings/1`), shared by `tclint --json` and the CI
/// symcheck job.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_ANALYSIS_SYMCHECK_H
#define TYPECOIN_ANALYSIS_SYMCHECK_H

#include "analysis/dataflow.h"
#include "analysis/tcsym.h"
#include "obs/json.h"
#include "typecoin/node.h"

namespace typecoin {
namespace analysis {

/// Is the TYPECOIN_SYMCHECK gate on? (Env re-read per call.)
bool symCheckEnabled();

/// Gate a coupled pair: symbolic verification of every carrier output
/// script, then the affine dataflow of the Typecoin inputs against the
/// node's chain snapshot. Success when the gate is off or no Error
/// finding is produced.
Status symGate(const tc::Pair &P, const bitcoin::Blockchain &Chain,
               const SymOptions &Opts = SymOptions());

/// Gate a bare Typecoin transaction (the batch-server write-through
/// path, before the Bitcoin carrier exists): dataflow only.
Status symGate(const tc::Transaction &T, const bitcoin::Blockchain &Chain,
               const SymOptions &Opts = SymOptions());

/// Render a report as a `typecoin-findings/1` JSON document:
/// `{schema, counts{note,warning,error}, findings[{severity,code,
/// message,span}]}`.
obs::Json findingsJson(const LintReport &R);

/// Render one script verdict as JSON (embedded into findings documents
/// by `tclint --sym --json`).
obs::Json verdictJson(const ScriptVerdict &V);

} // namespace analysis
} // namespace typecoin

#endif // TYPECOIN_ANALYSIS_SYMCHECK_H
