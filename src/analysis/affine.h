//===- analysis/affine.h - Affine-usage audit of proof terms -----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fast, purely structural audit of affine hypothesis usage in proof
/// terms — the lint pass run *before* the full checker
/// (`logic/check.cpp`). It performs no type inference and allocates no
/// propositions; it only tracks binder scopes and consumption flags, so
/// it is linear in the size of the proof term.
///
/// The audit mirrors the checker's context discipline exactly:
///
///   * a proof variable resolves to the innermost binder of that name;
///     consuming an affine hypothesis twice is a *contraction attempt*
///     and is reported as an error (`affine-reuse`) — the checker is
///     guaranteed to reject it,
///   * the two components of a `&`-pair and the two branches of a `case`
///     see the same affine context; consumption merges as the union
///     (matching `check.cpp`), so using one hypothesis in both arms is
///     *not* a reuse,
///   * inside `!M` every affine hypothesis is unavailable
///     (`affine-banged`),
///   * an affine hypothesis that is never consumed is legal weakening
///     (the paper embraces it, Section 4) but often a bug in practice,
///     so it is reported as a warning (`affine-unused`).
///
/// Because errors are emitted only where the checker must reject,
/// lint-clean proofs are never rejected by the checker *for an
/// affine-usage reason* (property-tested in
/// tests/analysis/lint_property_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_ANALYSIS_AFFINE_H
#define TYPECOIN_ANALYSIS_AFFINE_H

#include "analysis/diagnostic.h"
#include "logic/proof.h"

namespace typecoin {
namespace analysis {

/// Options for the affine audit.
struct AffineAuditOptions {
  /// Emit `affine-unused` warnings for weakened hypotheses.
  bool WarnUnused = true;
  /// Maximum proof-term nesting, matching the checker's own guard.
  unsigned MaxDepth = 100000;
};

/// Audit \p M, assuming the named hypotheses \p Affine and
/// \p Persistent are in scope (both may be empty: transaction proof
/// obligations are closed terms). Findings are appended to \p Out with
/// spans rooted at \p SpanRoot.
void auditAffineUsage(const logic::ProofPtr &M,
                      const std::vector<std::string> &Affine,
                      const std::vector<std::string> &Persistent,
                      LintReport &Out, const std::string &SpanRoot = "proof",
                      const AffineAuditOptions &Opts = AffineAuditOptions());

} // namespace analysis
} // namespace typecoin

#endif // TYPECOIN_ANALYSIS_AFFINE_H
