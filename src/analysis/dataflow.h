//===- analysis/dataflow.h - Whole-ledger affine dataflow --------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-ledger affine dataflow pass. Typecoin's logic makes every
/// transaction-output an *affine* resource: it may be consumed at most
/// once (paper Section 2, "the transaction-outputs are affine"). The
/// Bitcoin layer enforces this on the best chain; this pass re-proves it
/// statically over a ledger snapshot — the full block tree (stale
/// branches included, via Blockchain::forEachBlock) plus a set of
/// pending (mempool / batch) transactions — and flags the shapes the
/// runtime check cannot see:
///
///  * **double-consume** — two pending transactions (or two inputs)
///    consume the same resource: at most one can ever confirm;
///  * **consumed** — a pending transaction consumes a resource already
///    consumed on the best chain;
///  * **resurrect-after-reorg** — a resource was consumed only on a
///    stale branch and is unspent on the best chain; re-consuming it is
///    legal now, but the abandoned consumer returns if that branch wins
///    again, and the two carriers then race;
///  * **orphaned-resource** — a consumed resource whose producing
///    transaction is neither on the best chain nor among the pending
///    set: provenance unknown, the affine discipline cannot be checked;
///  * **cycle** — pending transactions that consume each other's
///    outputs cyclically, so no topological confirmation order exists.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_ANALYSIS_DATAFLOW_H
#define TYPECOIN_ANALYSIS_DATAFLOW_H

#include "analysis/diagnostic.h"
#include "bitcoin/chain.h"
#include "typecoin/transaction.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace typecoin {
namespace analysis {

/// One transaction as the dataflow pass sees it: an identity, the
/// resources it consumes, and how many it produces.
struct DataflowTx {
  /// Display-hex Bitcoin txid of the (carrier) transaction.
  std::string Txid;
  /// Consumed resources as "txid:n" display-hex outpoint keys.
  std::vector<std::string> Consumes;
  size_t NumOutputs = 0;

  /// Project a Bitcoin transaction (coinbase inputs are not resources).
  static DataflowTx fromBitcoinTx(const bitcoin::Transaction &Btc);
  /// Project a Typecoin transaction riding in carrier \p Btc: the
  /// consumed resources are the Typecoin inputs' source outpoints.
  static DataflowTx fromPair(const tc::Transaction &Tc,
                             const bitcoin::Transaction &Btc);
};

/// A ledger snapshot: what exists, what is consumed, and where.
struct DataflowLedger {
  /// Txids confirmed on the best chain.
  std::set<std::string> ChainTxids;
  /// Outpoint -> consuming txid, for best-chain consumptions.
  std::map<std::string, std::string> SpentOnChain;
  /// Outpoint -> consuming txids seen *only* on stale branches.
  std::map<std::string, std::vector<std::string>> SpentOnStaleBranches;
  /// Outpoints created on the best chain and not consumed there.
  std::set<std::string> Unspent;

  /// True when the outpoint was created on the best chain.
  bool exists(const std::string &Outpoint) const {
    return Unspent.count(Outpoint) != 0 ||
           SpentOnChain.count(Outpoint) != 0;
  }

  /// Snapshot the full block tree of \p Chain.
  static DataflowLedger fromChain(const bitcoin::Blockchain &Chain);
};

/// Prove the affine discipline for \p Pending against \p Ledger.
/// Spans are `tx[<txid>]/input[<i>]` (or `tx[<txid>]` for whole-tx
/// findings such as cycles).
LintReport analyzeAffineDataflow(const std::vector<DataflowTx> &Pending,
                                 const DataflowLedger &Ledger);

/// Self-check a ledger snapshot with no pending set: reports resources
/// that are unspent on the best chain but were consumed on a stale
/// branch (resurrection hazards left behind by a reorganization).
LintReport analyzeLedger(const DataflowLedger &Ledger);

} // namespace analysis
} // namespace typecoin

#endif // TYPECOIN_ANALYSIS_DATAFLOW_H
