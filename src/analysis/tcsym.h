//===- analysis/tcsym.h - Symbolic script verifier ---------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `tcsym`: a symbolic abstract interpreter for the Bitcoin script
/// subset in bitcoin/script.{h,cpp}. Where the concrete interpreter
/// executes one script against one witness, tcsym enumerates *every*
/// execution path (forking at IF/NOTIF/IFDUP on symbolic conditions)
/// over an abstract value lattice
///
///   Concrete(bytes)  <  Sig | PubKey  <  Top
///
/// with witness inputs drawn on demand: popping an empty stack
/// materializes a fresh, unconstrained symbolic input standing for the
/// next scriptSig-provided element. Per script it proves:
///
///  * **stack-depth safety** — no path exceeds the interpreter bounds
///    (stack size, op count, push size, script size);
///  * **spendability** — `Spendable` when some path may succeed for a
///    suitable witness, `Unspendable` when *no* path can ever leave a
///    truthy top (OP_RETURN, contradictory EQUALVERIFY of constants,
///    unbalanced conditionals, ...), `Unknown` at the path bound;
///  * **malleability classes** (Andrychowicz et al., "How to deal with
///    malleability of BitCoin transactions"):
///      - `MalleableDER` — a satisfying witness carries an ECDSA
///        signature, whose DER encoding admits semantic-preserving
///        re-encodings that change the carrier txid;
///      - `MalleableExtraStack` — a satisfying witness contains an
///        element whose value is never examined (the CHECKMULTISIG
///        dummy, OP_DROP victims), so any bytes do;
///      - `MalleableSigSubst` — a different signature set also
///        satisfies the script (m-of-n with m < n, or multiple
///        satisfiable IF arms), so a third party holding an alternative
///        key can substitute the witness wholesale.
///
/// Soundness polarity: `Unspendable` and `!StackSafe` are *proofs*
/// (the concrete interpreter rejects every witness); `Spendable` is
/// may-information — it assumes signatures and hash preimages for
/// symbolic operands can be produced, which is exactly the spender's
/// ability. The symbolic-vs-concrete property sweep in
/// tests/analysis/tcsym_test.cpp pins the abstract transfer functions
/// to the concrete ones on closed-world straight-line scripts.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_ANALYSIS_TCSYM_H
#define TYPECOIN_ANALYSIS_TCSYM_H

#include "analysis/diagnostic.h"
#include "bitcoin/transaction.h"

namespace typecoin {
namespace analysis {

/// One abstract stack element.
struct SymValue {
  enum class Kind {
    Concrete, ///< Exact bytes known (script constant or derived value).
    Sig,      ///< A witness input consumed as an ECDSA signature.
    PubKey,   ///< A witness input consumed as a public key.
    Top,      ///< Any bytes.
  };
  Kind K = Kind::Top;
  Bytes Data;       ///< Kind::Concrete only.
  int InputId = -1; ///< >= 0: the witness input this value flows from.

  bool isConcrete() const { return K == Kind::Concrete; }
  static SymValue concrete(Bytes B) {
    SymValue V;
    V.K = Kind::Concrete;
    V.Data = std::move(B);
    return V;
  }
  static SymValue top(int InputId = -1) {
    SymValue V;
    V.InputId = InputId;
    return V;
  }
};

/// Malleability classes, OR-able per path and per script.
enum MalleabilityClass : unsigned {
  MalleableNone = 0,
  MalleableDER = 1u << 0,        ///< DER-encoding slack on a witness sig.
  MalleableExtraStack = 1u << 1, ///< Never-examined witness element.
  MalleableSigSubst = 1u << 2,   ///< Alternative satisfying witness set.
};

enum class Spendability {
  Spendable,   ///< Some path may succeed for a suitable witness.
  Unspendable, ///< Proven: every path fails for every witness.
  Unknown,     ///< Path/step bound hit before a satisfying path was found.
};

const char *spendabilityName(Spendability S);

/// What one enumerated path did (retained for reporting / JSON).
struct PathSummary {
  bool Succeeds = false;        ///< Feasible with a truthy final top.
  size_t InputsConsumed = 0;    ///< Witness elements this path draws.
  unsigned Malleability = MalleableNone;
  std::string BranchTrail;      ///< '1'/'0' per symbolic fork, in order.
  std::string FailReason;       ///< Empty when the path succeeds.
  /// The abstract stack at termination (all-concrete on closed-world
  /// straight-line scripts, where the property sweep compares it
  /// element-by-element against the concrete interpreter's stack).
  std::vector<SymValue> FinalStack;
};

/// The per-script result of symbolic verification.
struct ScriptVerdict {
  bool WellFormed = false;    ///< Decodes; pushes within bounds.
  bool StackSafe = false;     ///< No path breaches interpreter limits.
  Spendability Spend = Spendability::Unknown;
  unsigned Malleability = MalleableNone; ///< OR over succeeding paths.
  /// Minimum witness elements any succeeding path consumes (0 means the
  /// script is satisfiable with an empty scriptSig — anyone-can-spend).
  size_t InputsNeeded = 0;
  size_t PathsExplored = 0;
  bool PathLimitHit = false;
  std::vector<PathSummary> Paths;
  /// sym-* diagnostics mirroring the fields above, for report merging.
  LintReport Report;
};

/// Knobs for the symbolic executor.
struct SymOptions {
  /// Fork bound: enumeration stops (verdict Unknown) past this many
  /// in-flight + finished paths.
  size_t MaxPaths = 128;
  /// Total abstract steps across all paths (DoS bound).
  size_t MaxSteps = 65536;
  /// Closed world: the initial stack is exactly \p InitialStack; popping
  /// past it is a stack underflow instead of drawing a fresh symbolic
  /// witness element. Used by the property sweep and by callers that
  /// know the full witness.
  bool ClosedWorld = false;
  std::vector<Bytes> InitialStack;
};

/// Symbolically verify a locking script.
ScriptVerdict analyzeScript(const bitcoin::Script &Lock,
                            const SymOptions &Opts = SymOptions());

/// Verify every output script of a carrier transaction. Per-output
/// spans (`output[i]`). A provably unspendable non-OP_RETURN output is
/// an error (permanent UTXO deadweight and, for a Typecoin carrier, a
/// resource frozen forever); malleability classes are warnings;
/// OP_RETURN outputs get a note (intentionally unspendable). When
/// \p Verdicts is non-null it receives one verdict per output.
LintReport
analyzeCarrierScripts(const bitcoin::Transaction &Btc,
                      const SymOptions &Opts = SymOptions(),
                      std::vector<ScriptVerdict> *Verdicts = nullptr);

} // namespace analysis
} // namespace typecoin

#endif // TYPECOIN_ANALYSIS_TCSYM_H
