//===- analysis/audit.h - Runtime invariant auditor --------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `TYPECOIN_AUDIT` debug mode: after each block connect /
/// disconnect (including the rollback path of a failed reorganization),
/// re-derive the ledger invariants the paper's commitment argument
/// rests on and compare them against the incrementally maintained
/// state:
///
///   * **UTXO soundness** — replaying the active chain from genesis
///     reproduces the incremental UTXO set exactly; no txout is spent
///     twice; every entry's height is on the chain.
///   * **Value conservation** — within every non-coinbase transaction
///     inputs cover outputs, and every coinbase claims at most subsidy
///     plus fees (Section 2's "valid transaction" conditions 4 and 7).
///   * **Index consistency** — every transaction of every active block
///     is locatable at its true position, and nothing else claims to be
///     confirmed.
///   * **Mempool consistency** — pool entries are unconfirmed, conflict-
///     free, and spend only available txouts.
///   * **Affine consumption** — at the Typecoin layer, no registered
///     txout is consumed by two registered transactions, and every
///     input of a registered transaction is marked consumed ("a
///     commitment is used at most once").
///
/// The audits are O(chain size) by design: they are a debugging tool
/// (enabled with `-DTYPECOIN_AUDIT=ON` or an explicit
/// \ref installChainAuditor call in tests), not a hot-path check.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_ANALYSIS_AUDIT_H
#define TYPECOIN_ANALYSIS_AUDIT_H

#include "bitcoin/mempool.h"
#include "typecoin/state.h"

namespace typecoin {
namespace analysis {

/// Audit the blockchain: active-chain linkage, full UTXO replay, value
/// conservation, and transaction-index consistency.
Status auditChain(const bitcoin::Blockchain &Chain);

/// Audit the mempool against the chain: entries unconfirmed, no
/// conflicting spends, all inputs available (confirmed or in-pool).
Status auditMempool(const bitcoin::Mempool &Pool,
                    const bitcoin::Blockchain &Chain);

/// Audit the Typecoin chain state: every registered input is marked
/// consumed, and no txout is consumed by two registered transactions.
Status auditState(const tc::State &State);

/// Install \ref auditChain as the chain's audit hook, so it runs after
/// every block connect/disconnect (Blockchain::setAuditHook).
void installChainAuditor(bitcoin::Blockchain &Chain);

} // namespace analysis
} // namespace typecoin

#endif // TYPECOIN_ANALYSIS_AUDIT_H
