//===- crypto/u256.cpp - 256-bit unsigned integers ------------------------===//

#include "crypto/u256.h"

#include <cassert>

namespace typecoin {
namespace crypto {

using uint128 = unsigned __int128;

void U256::shl1() {
  for (int I = 3; I > 0; --I)
    Limbs[I] = (Limbs[I] << 1) | (Limbs[I - 1] >> 63);
  Limbs[0] <<= 1;
}

void U256::shr1() {
  for (int I = 0; I < 3; ++I)
    Limbs[I] = (Limbs[I] >> 1) | (Limbs[I + 1] << 63);
  Limbs[3] >>= 1;
}

unsigned U256::bitLength() const {
  for (int I = 3; I >= 0; --I) {
    if (Limbs[I] != 0)
      return 64 * I + (64 - __builtin_clzll(Limbs[I]));
  }
  return 0;
}

U256 U256::fromBytesBE(const std::array<uint8_t, 32> &Bytes) {
  U256 Out;
  for (int I = 0; I < 4; ++I) {
    uint64_t Limb = 0;
    for (int J = 0; J < 8; ++J)
      Limb = (Limb << 8) | Bytes[(3 - I) * 8 + J];
    Out.Limbs[I] = Limb;
  }
  return Out;
}

std::array<uint8_t, 32> U256::toBytesBE() const {
  std::array<uint8_t, 32> Out;
  for (int I = 0; I < 4; ++I)
    for (int J = 0; J < 8; ++J)
      Out[(3 - I) * 8 + J] = static_cast<uint8_t>(Limbs[I] >> (56 - 8 * J));
  return Out;
}

Result<U256> U256::fromHex(const std::string &Hex) {
  if (Hex.size() != 64)
    return makeError("U256 hex must be 64 digits, got " +
                     std::to_string(Hex.size()));
  auto Raw = fromHexFixed<32>(Hex);
  if (!Raw)
    return Raw.takeError();
  return fromBytesBE(*Raw);
}

std::string U256::toHex() const { return typecoin::toHex(toBytesBE()); }

/// -M^{-1} mod 2^64 via Newton iteration (valid for odd M).
static uint64_t negInverse64(uint64_t M) {
  uint64_t Inv = 1;
  for (int I = 0; I < 6; ++I)
    Inv *= 2 - M * Inv; // Doubles the number of correct low bits.
  return ~Inv + 1; // -Inv mod 2^64.
}

ModArith::ModArith(const U256 &Modulus) : M(Modulus) {
  assert((M.Limbs[0] & 1) != 0 && "Montgomery modulus must be odd");
  assert(M.bitLength() == 256 && "modulus must have its top bit set");
  Inv = negInverse64(M.Limbs[0]);

  // R mod M = 2^256 - M (valid because 2^255 <= M < 2^256).
  RModM = U256::zero();
  RModM.subInPlace(M); // Wraps: 2^256 - M.

  // RR = R * 2^256 mod M by doubling R mod M 256 times.
  RR = RModM;
  for (int I = 0; I < 256; ++I) {
    uint64_t Carry = RR.addInPlace(RR);
    if (Carry || RR >= M)
      RR.subInPlace(M);
  }

  // Pseudo-Mersenne detection: when c = 2^256 - M fits a single limb
  // (the secp256k1 field prime: c = 2^32 + 977), products reduce by
  // folding the high half times c instead of Montgomery reduction, and
  // values stay in plain representation.
  if (RModM.bitLength() <= 64) {
    Pseudo = true;
    C64 = RModM.Limbs[0];
    MontOneV = U256::one();
  } else {
    MontOneV = RModM;
  }
}

U256 ModArith::montReduce512(U512 T) const {
  // SOS Montgomery reduction of the full 512-bit product.
  uint64_t Extra = 0; // Carry beyond limb 7.
  for (int I = 0; I < 4; ++I) {
    uint64_t Mu = T.Limbs[I] * Inv;
    uint128 Carry = 0;
    for (int J = 0; J < 4; ++J) {
      uint128 Cur =
          static_cast<uint128>(Mu) * M.Limbs[J] + T.Limbs[I + J] + Carry;
      T.Limbs[I + J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    // Propagate the carry through the remaining limbs.
    for (int J = I + 4; J < 8 && Carry; ++J) {
      uint128 Cur = static_cast<uint128>(T.Limbs[J]) + Carry;
      T.Limbs[J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    Extra += static_cast<uint64_t>(Carry);
  }
  U256 Out;
  for (int I = 0; I < 4; ++I)
    Out.Limbs[I] = T.Limbs[I + 4];
  if (Extra || Out >= M)
    Out.subInPlace(M);
  return Out;
}

U256 ModArith::mul(const U256 &A, const U256 &B) const {
  // (A*R) * (B*R) * R^-1 = A*B*R; then strip the R.
  U256 Am = toMont(A);
  U256 Bm = toMont(B);
  return fromMont(montMul(Am, Bm));
}

U256 ModArith::pow(const U256 &Base, const U256 &Exp) const {
  U256 Acc = montOne();
  U256 B = toMont(Base);
  unsigned Bits = Exp.bitLength();
  for (int I = static_cast<int>(Bits) - 1; I >= 0; --I) {
    Acc = montSqr(Acc);
    if (Exp.bit(static_cast<unsigned>(I)))
      Acc = montMul(Acc, B);
  }
  return fromMont(Acc);
}

U256 ModArith::inverse(const U256 &A) const {
  // Binary extended GCD (HAC 14.61): shift/add only, roughly 5x faster
  // than the former Fermat exponentiation — this sits under every
  // toAffine and under the s^-1 of each ECDSA operation.
  assert(!A.isZero() && "inverse of zero");
  U256 U = reduce(A), V = M;
  U256 X1 = U256::one(), X2 = U256::zero();
  const U256 One = U256::one();
  auto HalveMod = [this](U256 &X) {
    // X <- X/2 mod M: add M first if X is odd (the sum may carry into
    // bit 256; fold it back in after the shift).
    uint64_t Carry = 0;
    if (X.bit(0))
      Carry = X.addInPlace(M);
    X.shr1();
    if (Carry)
      X.Limbs[3] |= 1ull << 63;
  };
  while (U != One && V != One) {
    while (!U.bit(0)) {
      U.shr1();
      HalveMod(X1);
    }
    while (!V.bit(0)) {
      V.shr1();
      HalveMod(X2);
    }
    // Both odd now; subtract the smaller to keep everything positive.
    if (U >= V) {
      U.subInPlace(V);
      X1 = sub(X1, X2);
    } else {
      V.subInPlace(U);
      X2 = sub(X2, X1);
    }
  }
  return U == One ? X1 : X2;
}

U256 ModArith::reduce(const U256 &A) const {
  U256 Out = A;
  while (Out >= M)
    Out.subInPlace(M);
  return Out;
}

} // namespace crypto
} // namespace typecoin
