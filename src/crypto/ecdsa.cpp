//===- crypto/ecdsa.cpp - ECDSA over secp256k1 -----------------------------===//

#include "crypto/ecdsa.h"

#include "crypto/hmac.h"

#include <cassert>

namespace typecoin {
namespace crypto {

/// Minimal big-endian integer encoding for DER: strip leading zeros, then
/// prepend 0x00 if the top bit is set.
static Bytes derInteger(const U256 &V) {
  auto BE = V.toBytesBE();
  size_t Start = 0;
  while (Start < 31 && BE[Start] == 0)
    ++Start;
  Bytes Out;
  if (BE[Start] & 0x80)
    Out.push_back(0x00);
  Out.insert(Out.end(), BE.begin() + Start, BE.end());
  return Out;
}

Bytes Signature::toDER() const {
  Bytes RB = derInteger(R), SB = derInteger(S);
  Bytes Out;
  Out.push_back(0x30);
  Out.push_back(static_cast<uint8_t>(4 + RB.size() + SB.size()));
  Out.push_back(0x02);
  Out.push_back(static_cast<uint8_t>(RB.size()));
  Out.insert(Out.end(), RB.begin(), RB.end());
  Out.push_back(0x02);
  Out.push_back(static_cast<uint8_t>(SB.size()));
  Out.insert(Out.end(), SB.begin(), SB.end());
  return Out;
}

static Result<U256> parseDerInteger(const Bytes &Data, size_t &Pos) {
  if (Pos + 2 > Data.size() || Data[Pos] != 0x02)
    return makeError("DER: expected INTEGER tag");
  size_t Len = Data[Pos + 1];
  Pos += 2;
  if (Len == 0 || Pos + Len > Data.size())
    return makeError("DER: bad INTEGER length");
  if (Data[Pos] == 0x00 && Len > 1 && !(Data[Pos + 1] & 0x80))
    return makeError("DER: non-minimal INTEGER");
  if (Data[Pos] & 0x80)
    return makeError("DER: negative INTEGER");
  size_t Skip = 0;
  if (Data[Pos] == 0x00)
    Skip = 1;
  if (Len - Skip > 32)
    return makeError("DER: INTEGER too large");
  std::array<uint8_t, 32> BE{};
  std::copy(Data.begin() + Pos + Skip, Data.begin() + Pos + Len,
            BE.begin() + (32 - (Len - Skip)));
  Pos += Len;
  return U256::fromBytesBE(BE);
}

Result<Signature> Signature::fromDER(const Bytes &Data) {
  if (Data.size() < 8 || Data[0] != 0x30)
    return makeError("DER: expected SEQUENCE");
  if (Data[1] != Data.size() - 2)
    return makeError("DER: bad SEQUENCE length");
  size_t Pos = 2;
  TC_UNWRAP(R, parseDerInteger(Data, Pos));
  TC_UNWRAP(S, parseDerInteger(Data, Pos));
  if (Pos != Data.size())
    return makeError("DER: trailing bytes");
  return Signature{R, S};
}

U256 rfc6979Nonce(const U256 &PrivKey, const Digest32 &Hash) {
  const Secp256k1 &Curve = Secp256k1::instance();
  const U256 &N = Curve.order();

  // bits2octets: reduce the hash mod n, re-encode as 32 bytes.
  U256 Z = U256::fromBytesBE(Hash);
  if (Z >= N)
    Z.subInPlace(N);
  auto ZOctets = Z.toBytesBE();
  auto XOctets = PrivKey.toBytesBE();

  Bytes V(32, 0x01);
  Bytes K(32, 0x00);

  auto Step = [&](uint8_t Sep, bool IncludeData) {
    Bytes Msg = V;
    Msg.push_back(Sep);
    if (IncludeData) {
      Msg.insert(Msg.end(), XOctets.begin(), XOctets.end());
      Msg.insert(Msg.end(), ZOctets.begin(), ZOctets.end());
    }
    Digest32 KD = hmacSha256(K.data(), K.size(), Msg.data(), Msg.size());
    K.assign(KD.begin(), KD.end());
    Digest32 VD = hmacSha256(K.data(), K.size(), V.data(), V.size());
    V.assign(VD.begin(), VD.end());
  };

  Step(0x00, true);
  Step(0x01, true);

  for (;;) {
    Digest32 VD = hmacSha256(K.data(), K.size(), V.data(), V.size());
    V.assign(VD.begin(), VD.end());
    std::array<uint8_t, 32> Cand;
    std::copy(V.begin(), V.end(), Cand.begin());
    U256 Nonce = U256::fromBytesBE(Cand);
    if (!Nonce.isZero() && Nonce < N)
      return Nonce;
    Step(0x00, false);
  }
}

Signature ecdsaSign(const U256 &PrivKey, const Digest32 &Hash) {
  const Secp256k1 &Curve = Secp256k1::instance();
  const ModArith &Fn = Curve.scalar();
  assert(!PrivKey.isZero() && PrivKey < Curve.order() &&
         "private key out of range");

  U256 Z = Fn.reduce(U256::fromBytesBE(Hash));
  U256 K = rfc6979Nonce(PrivKey, Hash);

  for (;;) {
    AffinePoint RP = Curve.multiplyBase(K);
    U256 R = Fn.reduce(RP.X);
    if (!R.isZero()) {
      U256 S = Fn.mul(Fn.inverse(K), Fn.add(Z, Fn.mul(R, PrivKey)));
      if (!S.isZero()) {
        // Low-S normalization (Bitcoin consensus-preferred form).
        if (S > Curve.halfOrder())
          S = Fn.neg(S);
        return Signature{R, S};
      }
    }
    // Astronomically unlikely; re-derive a fresh nonce deterministically.
    K = Fn.add(K, U256::one());
  }
}

bool ecdsaVerify(const AffinePoint &PubKey, const Digest32 &Hash,
                 const Signature &Sig) {
  const Secp256k1 &Curve = Secp256k1::instance();
  const ModArith &Fn = Curve.scalar();
  if (PubKey.Infinity || !Curve.isOnCurve(PubKey))
    return false;
  if (Sig.R.isZero() || Sig.R >= Curve.order() || Sig.S.isZero() ||
      Sig.S >= Curve.order())
    return false;

  U256 Z = Fn.reduce(U256::fromBytesBE(Hash));
  U256 W = Fn.inverse(Sig.S);
  U256 U1 = Fn.mul(Z, W);
  U256 U2 = Fn.mul(Sig.R, W);
  AffinePoint P = Curve.doubleMultiply(U1, U2, PubKey);
  if (P.Infinity)
    return false;
  return Fn.reduce(P.X) == Sig.R;
}

} // namespace crypto
} // namespace typecoin
