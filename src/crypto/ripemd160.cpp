//===- crypto/ripemd160.cpp - RIPEMD-160 ---------------------------------===//
//
// Implements the RIPEMD-160 compression function as specified by
// Dobbertin, Bosselaers & Preneel (1996).
//
//===----------------------------------------------------------------------===//

#include "crypto/ripemd160.h"

#include <cstring>

namespace typecoin {
namespace crypto {

static inline uint32_t rotl(uint32_t X, int N) {
  return (X << N) | (X >> (32 - N));
}

static inline uint32_t f(int Round, uint32_t X, uint32_t Y, uint32_t Z) {
  switch (Round) {
  case 0:
    return X ^ Y ^ Z;
  case 1:
    return (X & Y) | (~X & Z);
  case 2:
    return (X | ~Y) ^ Z;
  case 3:
    return (X & Z) | (Y & ~Z);
  default:
    return X ^ (Y | ~Z);
  }
}

// Message word selection, left and right lines.
static const uint8_t RL[80] = {
    0, 1, 2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,
    7, 4, 13, 1,  10, 6,  15, 3,  12, 0,  9,  5,  2,  14, 11, 8,
    3, 10, 14, 4, 9,  15, 8,  1,  2,  7,  0,  6,  13, 11, 5,  12,
    1, 9, 11, 10, 0,  8,  12, 4,  13, 3,  7,  15, 14, 5,  6,  2,
    4, 0, 5,  9,  7,  12, 2,  10, 14, 1,  3,  8,  11, 6,  15, 13};
static const uint8_t RR[80] = {
    5,  14, 7, 0, 9, 2,  11, 4,  13, 6,  15, 8,  1,  10, 3,  12,
    6,  11, 3, 7, 0, 13, 5,  10, 14, 15, 8,  12, 4,  9,  1,  2,
    15, 5,  1, 3, 7, 14, 6,  9,  11, 8,  12, 2,  10, 0,  4,  13,
    8,  6,  4, 1, 3, 11, 15, 0,  5,  12, 2,  13, 9,  7,  10, 14,
    12, 15, 10, 4, 1, 5, 8,  7,  6,  2,  13, 14, 0,  3,  9,  11};

// Rotation amounts, left and right lines.
static const uint8_t SL[80] = {
    11, 14, 15, 12, 5,  8,  7,  9,  11, 13, 14, 15, 6,  7,  9,  8,
    7,  6,  8,  13, 11, 9,  7,  15, 7,  12, 15, 9,  11, 7,  13, 12,
    11, 13, 6,  7,  14, 9,  13, 15, 14, 8,  13, 6,  5,  12, 7,  5,
    11, 12, 14, 15, 14, 15, 9,  8,  9,  14, 5,  6,  8,  6,  5,  12,
    9,  15, 5,  11, 6,  8,  13, 12, 5,  12, 13, 14, 11, 8,  5,  6};
static const uint8_t SR[80] = {
    8,  9,  9,  11, 13, 15, 15, 5,  7,  7,  8,  11, 14, 14, 12, 6,
    9,  13, 15, 7,  12, 8,  9,  11, 7,  7,  12, 7,  6,  15, 13, 11,
    9,  7,  15, 11, 8,  6,  6,  14, 12, 13, 5,  14, 13, 13, 7,  5,
    15, 5,  8,  11, 14, 14, 6,  14, 6,  9,  12, 9,  12, 5,  15, 8,
    8,  5,  12, 9,  12, 5,  14, 6,  8,  13, 6,  5,  15, 13, 11, 11};

static const uint32_t KL[5] = {0x00000000, 0x5a827999, 0x6ed9eba1, 0x8f1bbcdc,
                               0xa953fd4e};
static const uint32_t KR[5] = {0x50a28be6, 0x5c4dd124, 0x6d703ef3, 0x7a6d76e9,
                               0x00000000};

static void compress(uint32_t State[5], const uint8_t *Block) {
  uint32_t X[16];
  for (int I = 0; I < 16; ++I)
    X[I] = static_cast<uint32_t>(Block[4 * I]) |
           static_cast<uint32_t>(Block[4 * I + 1]) << 8 |
           static_cast<uint32_t>(Block[4 * I + 2]) << 16 |
           static_cast<uint32_t>(Block[4 * I + 3]) << 24;

  uint32_t AL = State[0], BL = State[1], CL = State[2], DL = State[3],
           EL = State[4];
  uint32_t AR = AL, BR = BL, CR = CL, DR = DL, ER = EL;

  for (int J = 0; J < 80; ++J) {
    int Round = J / 16;
    uint32_t T = rotl(AL + f(Round, BL, CL, DL) + X[RL[J]] + KL[Round],
                      SL[J]) +
                 EL;
    AL = EL;
    EL = DL;
    DL = rotl(CL, 10);
    CL = BL;
    BL = T;

    T = rotl(AR + f(4 - Round, BR, CR, DR) + X[RR[J]] + KR[Round], SR[J]) +
        ER;
    AR = ER;
    ER = DR;
    DR = rotl(CR, 10);
    CR = BR;
    BR = T;
  }

  uint32_t T = State[1] + CL + DR;
  State[1] = State[2] + DL + ER;
  State[2] = State[3] + EL + AR;
  State[3] = State[4] + AL + BR;
  State[4] = State[0] + BL + CR;
  State[0] = T;
}

Digest20 ripemd160(const uint8_t *Data, size_t Len) {
  uint32_t State[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476,
                       0xc3d2e1f0};
  size_t Full = Len / 64;
  for (size_t I = 0; I < Full; ++I)
    compress(State, Data + 64 * I);

  // Padding: 0x80, zeros, 64-bit little-endian bit length.
  uint8_t Tail[128];
  size_t Rem = Len % 64;
  if (Rem != 0) // Data may be null when Len == 0.
    std::memcpy(Tail, Data + 64 * Full, Rem);
  Tail[Rem] = 0x80;
  size_t PadEnd = (Rem < 56) ? 56 : 120;
  std::memset(Tail + Rem + 1, 0, PadEnd - Rem - 1);
  uint64_t BitLen = static_cast<uint64_t>(Len) * 8;
  for (int I = 0; I < 8; ++I)
    Tail[PadEnd + I] = static_cast<uint8_t>(BitLen >> (8 * I));
  compress(State, Tail);
  if (PadEnd == 120)
    compress(State, Tail + 64);

  Digest20 Out;
  for (int I = 0; I < 5; ++I) {
    Out[4 * I] = static_cast<uint8_t>(State[I]);
    Out[4 * I + 1] = static_cast<uint8_t>(State[I] >> 8);
    Out[4 * I + 2] = static_cast<uint8_t>(State[I] >> 16);
    Out[4 * I + 3] = static_cast<uint8_t>(State[I] >> 24);
  }
  return Out;
}

Digest20 ripemd160(const Bytes &Data) {
  return ripemd160(Data.data(), Data.size());
}

} // namespace crypto
} // namespace typecoin
