//===- crypto/base58.h - Base58 and Base58Check -----------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bitcoin's Base58 and Base58Check encodings, used for addresses
/// (version byte + HASH160 of the public key + 4-byte double-SHA256
/// checksum).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_BASE58_H
#define TYPECOIN_CRYPTO_BASE58_H

#include "support/bytes.h"
#include "support/result.h"

namespace typecoin {
namespace crypto {

/// Raw Base58 (no checksum).
std::string base58Encode(const Bytes &Data);
Result<Bytes> base58Decode(const std::string &Str);

/// Base58Check: payload followed by the first four bytes of
/// SHA256d(payload).
std::string base58CheckEncode(const Bytes &Payload);
Result<Bytes> base58CheckDecode(const std::string &Str);

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_BASE58_H
