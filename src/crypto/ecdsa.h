//===- crypto/ecdsa.h - ECDSA over secp256k1 --------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ECDSA signing and verification over secp256k1, with RFC 6979
/// deterministic nonces and Bitcoin's low-S normalization, plus DER
/// signature encoding/decoding. Digital signatures back every Bitcoin
/// input (paper Section 2, validity condition 4) and Typecoin's
/// `assert` / `assert!` affirmation proof terms (Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_ECDSA_H
#define TYPECOIN_CRYPTO_ECDSA_H

#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace typecoin {
namespace crypto {

/// An ECDSA signature (r, s), both in [1, n).
struct Signature {
  U256 R;
  U256 S;

  /// Strict-DER encode (SEQUENCE of two minimal INTEGERs).
  Bytes toDER() const;
  /// Parse a strict-DER signature.
  static Result<Signature> fromDER(const Bytes &Data);
};

/// Sign a 32-byte message hash. Deterministic (RFC 6979): the same key and
/// hash always produce the same signature. The result is low-S normalized.
Signature ecdsaSign(const U256 &PrivKey, const Digest32 &Hash);

/// Verify a signature over a 32-byte message hash.
bool ecdsaVerify(const AffinePoint &PubKey, const Digest32 &Hash,
                 const Signature &Sig);

/// The RFC 6979 nonce for (key, hash); exposed for testing.
U256 rfc6979Nonce(const U256 &PrivKey, const Digest32 &Hash);

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_ECDSA_H
