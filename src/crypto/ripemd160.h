//===- crypto/ripemd160.h - RIPEMD-160 --------------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch RIPEMD-160, used by Bitcoin's HASH160 = RIPEMD160(SHA256(x))
/// for public-key hashes; the paper identifies principals with such hashes
/// (Section 4, "principal literals K, which we take to be cryptographic
/// hashes of public keys").
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_RIPEMD160_H
#define TYPECOIN_CRYPTO_RIPEMD160_H

#include "support/bytes.h"

#include <array>
#include <cstdint>

namespace typecoin {
namespace crypto {

/// A 20-byte digest.
using Digest20 = std::array<uint8_t, 20>;

/// One-shot RIPEMD-160.
Digest20 ripemd160(const uint8_t *Data, size_t Len);
Digest20 ripemd160(const Bytes &Data);

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_RIPEMD160_H
