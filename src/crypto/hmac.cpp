//===- crypto/hmac.cpp - HMAC-SHA256 --------------------------------------===//

#include "crypto/hmac.h"

#include <cstring>

namespace typecoin {
namespace crypto {

Digest32 hmacSha256(const uint8_t *Key, size_t KeyLen, const uint8_t *Data,
                    size_t DataLen) {
  uint8_t KeyBlock[64];
  std::memset(KeyBlock, 0, sizeof(KeyBlock));
  if (KeyLen > 64) {
    Digest32 KeyHash = sha256(Key, KeyLen);
    std::memcpy(KeyBlock, KeyHash.data(), KeyHash.size());
  } else {
    std::memcpy(KeyBlock, Key, KeyLen);
  }

  uint8_t Ipad[64], Opad[64];
  for (int I = 0; I < 64; ++I) {
    Ipad[I] = KeyBlock[I] ^ 0x36;
    Opad[I] = KeyBlock[I] ^ 0x5c;
  }

  Sha256 Inner;
  Inner.update(Ipad, 64).update(Data, DataLen);
  Digest32 InnerHash = Inner.finalize();

  Sha256 Outer;
  Outer.update(Opad, 64).update(InnerHash.data(), InnerHash.size());
  return Outer.finalize();
}

Digest32 hmacSha256(const Bytes &Key, const Bytes &Data) {
  return hmacSha256(Key.data(), Key.size(), Data.data(), Data.size());
}

} // namespace crypto
} // namespace typecoin
