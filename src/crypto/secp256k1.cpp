//===- crypto/secp256k1.cpp - The secp256k1 elliptic curve ----------------===//

#include "crypto/secp256k1.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace typecoin {
namespace crypto {

static U256 mustHex(const char *Hex) {
  auto V = U256::fromHex(Hex);
  assert(V && "bad builtin constant");
  return *V;
}

static const char *const PHex =
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
static const char *const GxHex =
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798";
static const char *const GyHex =
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8";

/// wNAF digit width for the odd-multiples-of-G table (64 points).
static constexpr unsigned GWnafWidth = 8;
/// wNAF digit width for ad-hoc points (8 odd multiples, built per call).
static constexpr unsigned PWnafWidth = 5;
/// A 256-bit scalar yields at most 257 wNAF digits.
static constexpr unsigned MaxWnafLen = 257;

/// GLV endomorphism constants. Lambda is a primitive cube root of 1
/// mod n; beta the matching cube root of 1 mod p, so that
/// lambda * (x, y) = (beta * x, y) on the curve. The lattice basis
/// (b1, b2) and rounding constants (g1, g2) — g_i = round(2^384 * b_i'
/// / n) — are the standard libsecp256k1 decomposition yielding halves
/// of at most ~128 bits.
static const char *const LambdaHex =
    "5363ad4cc05c30e0a5261c028812645a122e22ea20816678df02967c1b23bd72";
static const char *const BetaHex =
    "7ae96a2b657c07106e64479eac3434e99cf0497512f58995c1396c28719501ee";
static const char *const SplitG1Hex =
    "3086d221a7d46bcde86c90e49284eb153daa8a1471e8ca7fe893209a45dbb031";
static const char *const SplitG2Hex =
    "e4437ed6010e88286f547fa90abfe4c4221208ac9df506c61571b4ae8ac47f71";
static const char *const MinusB1Hex =
    "00000000000000000000000000000000e4437ed6010e88286f547fa90abfe4c3";
static const char *const MinusB2Hex =
    "fffffffffffffffffffffffffffffffe8a280ac50774346dd765cda83db1562c";

/// round(K * G / 2^384): bits 384.. of the 512-bit product, plus the
/// rounding bit 383. Both inputs are < 2^256, so the result fits well
/// inside 128 bits.
static U256 mulShift384(const U256 &K, const U256 &G) {
  U512 T = mulWide(K, G);
  U256 Out;
  Out.Limbs[0] = T.Limbs[6];
  Out.Limbs[1] = T.Limbs[7];
  if (T.Limbs[5] >> 63)
    Out.addInPlace(U256::one());
  return Out;
}

/// Width-w non-adjacent form: rewrites K as sum(D[i] * 2^i) with every
/// nonzero D[i] odd and |D[i]| < 2^(w-1). Returns the digit count.
/// Adding back |D| <= 2^(w-1) during the rewrite cannot wrap because
/// K < n and n is far below 2^256 - 2^(w-1).
static unsigned wnafDigits(U256 K, unsigned W, int16_t *Out) {
  unsigned Len = 0;
  const uint64_t Mask = (1ull << W) - 1;
  const int Half = 1 << (W - 1), Full = 1 << W;
  while (!K.isZero()) {
    int D = 0;
    if (K.bit(0)) {
      D = static_cast<int>(K.Limbs[0] & Mask);
      if (D >= Half)
        D -= Full;
      if (D > 0)
        K.subInPlace(U256(static_cast<uint64_t>(D)));
      else
        K.addInPlace(U256(static_cast<uint64_t>(-D)));
    }
    Out[Len++] = static_cast<int16_t>(D);
    K.shr1();
  }
  return Len;
}

/// Window of \p W bits of \p K starting at bit \p Off (little-endian).
static unsigned windowAt(const U256 &K, unsigned Off, unsigned W) {
  unsigned Limb = Off / 64, Shift = Off % 64;
  uint64_t V = K.Limbs[Limb] >> Shift;
  if (Shift + W > 64 && Limb < 3)
    V |= K.Limbs[Limb + 1] << (64 - Shift);
  return static_cast<unsigned>(V & ((1ull << W) - 1));
}

static unsigned combWindowFromEnv() {
  const char *Env = std::getenv("TYPECOIN_ECMULT_WINDOW");
  long W = Env ? std::atol(Env) : 4;
  return static_cast<unsigned>(std::clamp(W, 0l, 8l));
}

Secp256k1::Secp256k1(int CombWindowOverride)
    : Fp(mustHex(PHex)),
      Fn(mustHex(
          "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")),
      N(Fn.modulus()) {
  HalfN = N;
  HalfN.shr1();
  G = AffinePoint::make(mustHex(GxHex), mustHex(GyHex));
  SevenMont = Fp.toMont(U256(7));
  assert(isOnCurve(G) && "generator must lie on the curve");
  Lambda = mustHex(LambdaHex);
  Beta = mustHex(BetaHex);
  BetaMont = Fp.toMont(Beta);
  SplitG1 = mustHex(SplitG1Hex);
  SplitG2 = mustHex(SplitG2Hex);
  MinusB1 = mustHex(MinusB1Hex);
  MinusB2 = mustHex(MinusB2Hex);
  CombW = CombWindowOverride < 0
              ? combWindowFromEnv()
              : static_cast<unsigned>(std::min(CombWindowOverride, 8));
  buildTables();
}

const Secp256k1 &Secp256k1::instance() {
  static const Secp256k1 Curve;
  return Curve;
}

bool Secp256k1::isOnCurve(const AffinePoint &P) const {
  if (P.Infinity)
    return true;
  if (P.X >= Fp.modulus() || P.Y >= Fp.modulus())
    return false;
  U256 X = Fp.toMont(P.X), Y = Fp.toMont(P.Y);
  U256 Lhs = Fp.montSqr(Y);
  U256 Rhs = Fp.montAdd(Fp.montMul(Fp.montSqr(X), X), SevenMont);
  return Lhs == Rhs;
}

Secp256k1::JacobianPoint Secp256k1::toJacobian(const AffinePoint &P) const {
  if (P.Infinity)
    return JacobianPoint{U256::zero(), U256::zero(), U256::zero()};
  return JacobianPoint{Fp.toMont(P.X), Fp.toMont(P.Y), Fp.montOne()};
}

AffinePoint Secp256k1::toAffine(const JacobianPoint &P) const {
  if (P.Z.isZero())
    return AffinePoint::infinity();
  U256 Z = Fp.fromMont(P.Z);
  U256 ZInv = Fp.toMont(Fp.inverse(Z));
  U256 ZInv2 = Fp.montSqr(ZInv);
  U256 ZInv3 = Fp.montMul(ZInv2, ZInv);
  return AffinePoint::make(Fp.fromMont(Fp.montMul(P.X, ZInv2)),
                           Fp.fromMont(Fp.montMul(P.Y, ZInv3)));
}

Secp256k1::JacobianPoint
Secp256k1::jacDouble(const JacobianPoint &P) const {
  if (P.Z.isZero() || P.Y.isZero())
    return JacobianPoint{U256::zero(), U256::zero(), U256::zero()};
  // dbl-2009-l formulas for a = 0.
  U256 A = Fp.montSqr(P.X);                  // X^2
  U256 B = Fp.montSqr(P.Y);                  // Y^2
  U256 C = Fp.montSqr(B);                    // B^2
  U256 XpB = Fp.montAdd(P.X, B);
  U256 D = Fp.montSub(Fp.montSub(Fp.montSqr(XpB), A), C);
  D = Fp.montAdd(D, D);                      // 2*((X+B)^2 - A - C)
  U256 E = Fp.montAdd(Fp.montAdd(A, A), A);  // 3*A
  U256 F = Fp.montSqr(E);
  U256 X3 = Fp.montSub(F, Fp.montAdd(D, D));
  U256 C8 = Fp.montAdd(C, C);
  C8 = Fp.montAdd(C8, C8);
  C8 = Fp.montAdd(C8, C8);
  U256 Y3 = Fp.montSub(Fp.montMul(E, Fp.montSub(D, X3)), C8);
  U256 YZ = Fp.montMul(P.Y, P.Z);
  U256 Z3 = Fp.montAdd(YZ, YZ);
  return JacobianPoint{X3, Y3, Z3};
}

Secp256k1::JacobianPoint
Secp256k1::jacAdd(const JacobianPoint &P, const JacobianPoint &Q) const {
  if (P.Z.isZero())
    return Q;
  if (Q.Z.isZero())
    return P;
  U256 Z1Z1 = Fp.montSqr(P.Z);
  U256 Z2Z2 = Fp.montSqr(Q.Z);
  U256 U1 = Fp.montMul(P.X, Z2Z2);
  U256 U2 = Fp.montMul(Q.X, Z1Z1);
  U256 S1 = Fp.montMul(P.Y, Fp.montMul(Z2Z2, Q.Z));
  U256 S2 = Fp.montMul(Q.Y, Fp.montMul(Z1Z1, P.Z));
  if (U1 == U2) {
    if (S1 == S2)
      return jacDouble(P);
    return JacobianPoint{U256::zero(), U256::zero(), U256::zero()};
  }
  U256 H = Fp.montSub(U2, U1);
  U256 R = Fp.montSub(S2, S1);
  U256 H2 = Fp.montSqr(H);
  U256 H3 = Fp.montMul(H2, H);
  U256 U1H2 = Fp.montMul(U1, H2);
  U256 X3 = Fp.montSub(Fp.montSub(Fp.montSqr(R), H3),
                       Fp.montAdd(U1H2, U1H2));
  U256 Y3 =
      Fp.montSub(Fp.montMul(R, Fp.montSub(U1H2, X3)), Fp.montMul(S1, H3));
  U256 Z3 = Fp.montMul(Fp.montMul(P.Z, Q.Z), H);
  return JacobianPoint{X3, Y3, Z3};
}

Secp256k1::JacobianPoint
Secp256k1::jacAddMixed(const JacobianPoint &P, const MontAffine &Q) const {
  if (P.Z.isZero())
    return JacobianPoint{Q.X, Q.Y, Fp.montOne()};
  // madd-2007-bl: Q has Z = 1, so U1 = X1, S1 = Y1.
  U256 Z1Z1 = Fp.montSqr(P.Z);
  U256 U2 = Fp.montMul(Q.X, Z1Z1);
  U256 S2 = Fp.montMul(Q.Y, Fp.montMul(Z1Z1, P.Z));
  if (P.X == U2) {
    if (P.Y == S2)
      return jacDouble(P);
    return JacobianPoint{U256::zero(), U256::zero(), U256::zero()};
  }
  U256 H = Fp.montSub(U2, P.X);
  U256 R = Fp.montSub(S2, P.Y);
  U256 H2 = Fp.montSqr(H);
  U256 H3 = Fp.montMul(H2, H);
  U256 U1H2 = Fp.montMul(P.X, H2);
  U256 X3 = Fp.montSub(Fp.montSub(Fp.montSqr(R), H3),
                       Fp.montAdd(U1H2, U1H2));
  U256 Y3 =
      Fp.montSub(Fp.montMul(R, Fp.montSub(U1H2, X3)), Fp.montMul(P.Y, H3));
  U256 Z3 = Fp.montMul(P.Z, H);
  return JacobianPoint{X3, Y3, Z3};
}

Secp256k1::JacobianPoint
Secp256k1::jacAddMixedZr(const JacobianPoint &P, const MontAffine &Q,
                         U256 &Zr) const {
  // Same madd-2007-bl flow as jacAddMixed, exposing the Z ratio H so
  // the global-Z table construction can normalize without inverting.
  // The degenerate branches of jacAddMixed (infinity, doubling) have no
  // well-defined ratio; callers guarantee they cannot occur.
  U256 Z1Z1 = Fp.montSqr(P.Z);
  U256 U2 = Fp.montMul(Q.X, Z1Z1);
  U256 S2 = Fp.montMul(Q.Y, Fp.montMul(Z1Z1, P.Z));
  assert(!P.Z.isZero() && P.X != U2 && "odd-multiple chain degenerated");
  U256 H = Fp.montSub(U2, P.X);
  U256 R = Fp.montSub(S2, P.Y);
  U256 H2 = Fp.montSqr(H);
  U256 H3 = Fp.montMul(H2, H);
  U256 U1H2 = Fp.montMul(P.X, H2);
  U256 X3 = Fp.montSub(Fp.montSub(Fp.montSqr(R), H3),
                       Fp.montAdd(U1H2, U1H2));
  U256 Y3 =
      Fp.montSub(Fp.montMul(R, Fp.montSub(U1H2, X3)), Fp.montMul(P.Y, H3));
  U256 Z3 = Fp.montMul(P.Z, H);
  Zr = H;
  return JacobianPoint{X3, Y3, Z3};
}

Secp256k1::JacobianPoint
Secp256k1::jacMultiply(const U256 &K, const JacobianPoint &P) const {
  JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
  unsigned Bits = K.bitLength();
  for (int I = static_cast<int>(Bits) - 1; I >= 0; --I) {
    Acc = jacDouble(Acc);
    if (K.bit(static_cast<unsigned>(I)))
      Acc = jacAdd(Acc, P);
  }
  return Acc;
}

Secp256k1::MontAffine Secp256k1::negateEntry(const MontAffine &P) const {
  return MontAffine{P.X, Fp.montSub(U256::zero(), P.Y)};
}

Secp256k1::MontAffine Secp256k1::endoEntry(const MontAffine &P) const {
  return MontAffine{Fp.montMul(BetaMont, P.X), P.Y};
}

Secp256k1::SplitScalar Secp256k1::splitLambda(const U256 &K) const {
  // Round K against the dual lattice basis, then take the remainder:
  // k2 = -(c1*b1 + c2*b2), k1 = k - k2*lambda. The basis is chosen so
  // both components have magnitude ~sqrt(n); components above n/2 are
  // stored negated with a sign flag so the wNAF ladders see ~128-bit
  // nonnegative scalars.
  U256 C1 = Fn.mul(mulShift384(K, SplitG1), MinusB1);
  U256 C2 = Fn.mul(mulShift384(K, SplitG2), MinusB2);
  SplitScalar S;
  S.K2 = Fn.add(C1, C2);
  S.K1 = Fn.sub(K, Fn.mul(S.K2, Lambda));
  if (S.K1 > HalfN) {
    S.K1 = Fn.neg(S.K1);
    S.Neg1 = true;
  }
  if (S.K2 > HalfN) {
    S.K2 = Fn.neg(S.K2);
    S.Neg2 = true;
  }
  return S;
}

void Secp256k1::strausAdd(JacobianPoint &Acc, int D, bool Neg,
                          const std::vector<MontAffine> &T) const {
  if (D == 0)
    return;
  bool Minus = (D < 0) != Neg;
  const MontAffine &E = T[static_cast<unsigned>(D < 0 ? -D : D) >> 1];
  Acc = jacAddMixed(Acc, Minus ? negateEntry(E) : E);
}

void Secp256k1::strausAddScaled(JacobianPoint &Acc, int D, bool Neg,
                                const std::vector<MontAffine> &T,
                                const U256 &Z2, const U256 &Z3) const {
  if (D == 0)
    return;
  bool Minus = (D < 0) != Neg;
  const MontAffine &E = T[static_cast<unsigned>(D < 0 ? -D : D) >> 1];
  MontAffine S{Fp.montMul(E.X, Z2), Fp.montMul(E.Y, Z3)};
  Acc = jacAddMixed(Acc, Minus ? negateEntry(S) : S);
}

std::vector<Secp256k1::MontAffine>
Secp256k1::normalizeBatch(const std::vector<JacobianPoint> &Pts) const {
  // Montgomery's trick: one inversion for the whole batch via running
  // prefix products of the Z coordinates.
  size_t Count = Pts.size();
  std::vector<U256> Prefix(Count);
  U256 Run = Fp.montOne();
  for (size_t I = 0; I < Count; ++I) {
    assert(!Pts[I].Z.isZero() && "cannot normalize the point at infinity");
    Run = Fp.montMul(Run, Pts[I].Z);
    Prefix[I] = Run;
  }
  U256 Inv = Fp.toMont(Fp.inverse(Fp.fromMont(Run)));
  std::vector<MontAffine> Out(Count);
  for (size_t I = Count; I-- > 0;) {
    U256 ZInv = I == 0 ? Inv : Fp.montMul(Inv, Prefix[I - 1]);
    Inv = Fp.montMul(Inv, Pts[I].Z);
    U256 ZInv2 = Fp.montSqr(ZInv);
    U256 ZInv3 = Fp.montMul(ZInv2, ZInv);
    Out[I] = MontAffine{Fp.montMul(Pts[I].X, ZInv2),
                        Fp.montMul(Pts[I].Y, ZInv3)};
  }
  return Out;
}

void Secp256k1::oddMultiples(const JacobianPoint &P,
                             std::vector<MontAffine> &Table) const {
  // {1, 3, 5, ...}*P. P has prime order n, so no small odd multiple is
  // infinity and the batch normalization below is total.
  size_t Count = Table.size();
  std::vector<JacobianPoint> J(Count);
  J[0] = P;
  JacobianPoint Twice = jacDouble(P);
  for (size_t I = 1; I < Count; ++I)
    J[I] = jacAdd(J[I - 1], Twice);
  Table = normalizeBatch(J);
}

void Secp256k1::oddMultiplesGlobalZ(const JacobianPoint &P,
                                    std::vector<MontAffine> &Table,
                                    U256 &IsoZ) const {
  // Work on the curve isomorphic by u = Z(2P): there 2P is affine and P
  // lifts by u^2/u^3, so the odd-multiple chain runs on mixed additions
  // whose Z ratios we record. A backward pass of ratio products then
  // rescales every entry to the last entry's denominator — Montgomery's
  // trick without the inversion. True coordinates are recovered by
  // folding IsoZ = Z_last * u into the caller's final Z.
  size_t Count = Table.size();
  JacobianPoint D = jacDouble(P);
  MontAffine D2{D.X, D.Y};
  U256 U2 = Fp.montSqr(D.Z);
  std::vector<JacobianPoint> J(Count);
  std::vector<U256> Zr(Count);
  J[0] = JacobianPoint{Fp.montMul(P.X, U2),
                       Fp.montMul(P.Y, Fp.montMul(U2, D.Z)), P.Z};
  for (size_t I = 1; I < Count; ++I)
    J[I] = jacAddMixedZr(J[I - 1], D2, Zr[I]);
  Table[Count - 1] = MontAffine{J[Count - 1].X, J[Count - 1].Y};
  U256 C = Fp.montOne();
  for (size_t I = Count - 1; I-- > 0;) {
    C = Fp.montMul(C, Zr[I + 1]);
    U256 C2 = Fp.montSqr(C);
    Table[I] = MontAffine{Fp.montMul(J[I].X, C2),
                          Fp.montMul(J[I].Y, Fp.montMul(C2, C))};
  }
  IsoZ = Fp.montMul(J[Count - 1].Z, D.Z);
}

void Secp256k1::buildTables() {
  JacobianPoint JG = toJacobian(G);
  GOdd.resize(1u << (GWnafWidth - 2)); // Odd multiples 1..2^(w-1)-1.
  oddMultiples(JG, GOdd);
  GLamOdd.reserve(GOdd.size());
  for (const MontAffine &E : GOdd)
    GLamOdd.push_back(endoEntry(E));

  if (CombW == 0)
    return;
  // Comb[b * Mask + (d-1)] = d * 2^(CombW * b) * G for digit d in
  // [1, 2^CombW - 1]. All entries are d' * G with 0 < d' < n, never
  // infinity.
  unsigned Mask = (1u << CombW) - 1;
  unsigned Blocks = (256 + CombW - 1) / CombW;
  std::vector<JacobianPoint> T;
  T.reserve(static_cast<size_t>(Blocks) * Mask);
  JacobianPoint Base = JG; // 2^(CombW * b) * G for the current block.
  for (unsigned B = 0; B < Blocks; ++B) {
    JacobianPoint Cur = Base;
    for (unsigned D = 1; D <= Mask; ++D) {
      T.push_back(Cur);
      if (D < Mask)
        Cur = jacAdd(Cur, Base);
    }
    for (unsigned I = 0; I < CombW; ++I)
      Base = jacDouble(Base);
  }
  Comb = normalizeBatch(T);
}

AffinePoint Secp256k1::add(const AffinePoint &P, const AffinePoint &Q) const {
  return toAffine(jacAdd(toJacobian(P), toJacobian(Q)));
}

AffinePoint Secp256k1::negate(const AffinePoint &P) const {
  if (P.Infinity)
    return P;
  return AffinePoint::make(P.X, Fp.neg(P.Y));
}

AffinePoint Secp256k1::multiply(const U256 &K, const AffinePoint &P) const {
  U256 KRed = K >= N ? Fn.reduce(K) : K;
  if (KRed.isZero() || P.Infinity)
    return AffinePoint::infinity();
  // GLV: k*P = k1*P + k2*phi(P) on one ~128-doubling Straus ladder,
  // with the per-call table on a shared-denominator iso-curve so the
  // whole call performs a single inversion (the final toAffine).
  std::vector<MontAffine> Odd(1u << (PWnafWidth - 2));
  U256 IsoZ;
  oddMultiplesGlobalZ(toJacobian(P), Odd, IsoZ);
  std::vector<MontAffine> OddLam;
  OddLam.reserve(Odd.size());
  for (const MontAffine &E : Odd)
    OddLam.push_back(endoEntry(E));
  SplitScalar S = splitLambda(KRed);
  int16_t D1[MaxWnafLen], D2[MaxWnafLen];
  unsigned L1 = wnafDigits(S.K1, PWnafWidth, D1);
  unsigned L2 = wnafDigits(S.K2, PWnafWidth, D2);
  JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
  for (unsigned I = std::max(L1, L2); I-- > 0;) {
    Acc = jacDouble(Acc);
    if (I < L1)
      strausAdd(Acc, D1[I], S.Neg1, Odd);
    if (I < L2)
      strausAdd(Acc, D2[I], S.Neg2, OddLam);
  }
  Acc.Z = Fp.montMul(Acc.Z, IsoZ); // Leave the iso-curve (0 stays 0).
  return toAffine(Acc);
}

AffinePoint Secp256k1::multiplyBase(const U256 &K) const {
  U256 KRed = K >= N ? Fn.reduce(K) : K;
  if (KRed.isZero())
    return AffinePoint::infinity();
  if (CombW != 0) {
    // One mixed addition per nonzero window; no doublings at all.
    unsigned Mask = (1u << CombW) - 1;
    JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
    for (unsigned Off = 0, B = 0; Off < 256; Off += CombW, ++B) {
      unsigned Digit = windowAt(KRed, Off, CombW);
      if (Digit != 0)
        Acc = jacAddMixed(Acc, Comb[static_cast<size_t>(B) * Mask + Digit - 1]);
    }
    return toAffine(Acc);
  }
  int16_t D[MaxWnafLen];
  unsigned Len = wnafDigits(KRed, GWnafWidth, D);
  JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
  for (unsigned I = Len; I-- > 0;) {
    Acc = jacDouble(Acc);
    if (D[I] > 0)
      Acc = jacAddMixed(Acc, GOdd[static_cast<unsigned>(D[I]) >> 1]);
    else if (D[I] < 0)
      Acc = jacAddMixed(Acc, negateEntry(GOdd[static_cast<unsigned>(-D[I]) >> 1]));
  }
  return toAffine(Acc);
}

AffinePoint Secp256k1::doubleMultiply(const U256 &A, const U256 &B,
                                      const AffinePoint &P) const {
  U256 ARed = A >= N ? Fn.reduce(A) : A;
  U256 BRed = B >= N ? Fn.reduce(B) : B;
  if (P.Infinity || BRed.isZero())
    return multiplyBase(ARed);
  if (ARed.isZero())
    return multiply(BRed, P);
  // Straus over four GLV halves on one ~128-doubling ladder: the G
  // halves read the wide precomputed GOdd/phi(GOdd) tables (width 8),
  // the P halves a small per-call table and its phi image (width 5).
  // The ladder runs on the per-call table's iso-curve (inversion-free
  // construction); G entries are rescaled onto it at lookup time.
  std::vector<MontAffine> POdd(1u << (PWnafWidth - 2));
  U256 IsoZ;
  oddMultiplesGlobalZ(toJacobian(P), POdd, IsoZ);
  std::vector<MontAffine> POddLam;
  POddLam.reserve(POdd.size());
  for (const MontAffine &E : POdd)
    POddLam.push_back(endoEntry(E));
  U256 IsoZ2 = Fp.montSqr(IsoZ);
  U256 IsoZ3 = Fp.montMul(IsoZ2, IsoZ);
  SplitScalar SA = splitLambda(ARed);
  SplitScalar SB = splitLambda(BRed);
  int16_t DA1[MaxWnafLen], DA2[MaxWnafLen], DB1[MaxWnafLen], DB2[MaxWnafLen];
  unsigned LA1 = wnafDigits(SA.K1, GWnafWidth, DA1);
  unsigned LA2 = wnafDigits(SA.K2, GWnafWidth, DA2);
  unsigned LB1 = wnafDigits(SB.K1, PWnafWidth, DB1);
  unsigned LB2 = wnafDigits(SB.K2, PWnafWidth, DB2);
  JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
  for (unsigned I = std::max(std::max(LA1, LA2), std::max(LB1, LB2));
       I-- > 0;) {
    Acc = jacDouble(Acc);
    if (I < LA1)
      strausAddScaled(Acc, DA1[I], SA.Neg1, GOdd, IsoZ2, IsoZ3);
    if (I < LA2)
      strausAddScaled(Acc, DA2[I], SA.Neg2, GLamOdd, IsoZ2, IsoZ3);
    if (I < LB1)
      strausAdd(Acc, DB1[I], SB.Neg1, POdd);
    if (I < LB2)
      strausAdd(Acc, DB2[I], SB.Neg2, POddLam);
  }
  Acc.Z = Fp.montMul(Acc.Z, IsoZ); // Leave the iso-curve (0 stays 0).
  return toAffine(Acc);
}

AffinePoint Secp256k1::multiplyNaive(const U256 &K,
                                     const AffinePoint &P) const {
  U256 KRed = K >= N ? Fn.reduce(K) : K;
  return toAffine(jacMultiply(KRed, toJacobian(P)));
}

AffinePoint Secp256k1::doubleMultiplyNaive(const U256 &A, const U256 &B,
                                           const AffinePoint &P) const {
  // Shamir's trick: interleave both scalar ladders bit by bit.
  JacobianPoint JG = toJacobian(G);
  JacobianPoint JP = toJacobian(P);
  JacobianPoint Both = jacAdd(JG, JP);
  JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
  unsigned Bits = std::max(A.bitLength(), B.bitLength());
  for (int I = static_cast<int>(Bits) - 1; I >= 0; --I) {
    Acc = jacDouble(Acc);
    bool BitA = A.bit(static_cast<unsigned>(I));
    bool BitB = B.bit(static_cast<unsigned>(I));
    if (BitA && BitB)
      Acc = jacAdd(Acc, Both);
    else if (BitA)
      Acc = jacAdd(Acc, JG);
    else if (BitB)
      Acc = jacAdd(Acc, JP);
  }
  return toAffine(Acc);
}

Bytes Secp256k1::serialize(const AffinePoint &P, bool Compressed) const {
  assert(!P.Infinity && "cannot serialize the point at infinity");
  auto X = P.X.toBytesBE();
  Bytes Out;
  if (Compressed) {
    Out.push_back(P.Y.bit(0) ? 0x03 : 0x02);
    Out.insert(Out.end(), X.begin(), X.end());
    return Out;
  }
  auto Y = P.Y.toBytesBE();
  Out.push_back(0x04);
  Out.insert(Out.end(), X.begin(), X.end());
  Out.insert(Out.end(), Y.begin(), Y.end());
  return Out;
}

Result<AffinePoint> Secp256k1::parse(const Bytes &Data) const {
  if (Data.size() == 65 && Data[0] == 0x04) {
    std::array<uint8_t, 32> XB, YB;
    std::copy(Data.begin() + 1, Data.begin() + 33, XB.begin());
    std::copy(Data.begin() + 33, Data.end(), YB.begin());
    AffinePoint P = AffinePoint::make(U256::fromBytesBE(XB),
                                      U256::fromBytesBE(YB));
    if (!isOnCurve(P))
      return makeError("point is not on secp256k1");
    return P;
  }
  if (Data.size() == 33 && (Data[0] == 0x02 || Data[0] == 0x03)) {
    std::array<uint8_t, 32> XB;
    std::copy(Data.begin() + 1, Data.end(), XB.begin());
    U256 X = U256::fromBytesBE(XB);
    if (X >= Fp.modulus())
      return makeError("x coordinate out of range");
    // y^2 = x^3 + 7; p = 3 mod 4, so sqrt(a) = a^((p+1)/4).
    U256 Rhs = Fp.add(Fp.mul(Fp.mul(X, X), X), U256(7));
    U256 Exp = Fp.modulus();
    Exp.addInPlace(U256::one());
    Exp.shr1();
    Exp.shr1();
    U256 Y = Fp.pow(Rhs, Exp);
    if (Fp.mul(Y, Y) != Rhs)
      return makeError("x coordinate has no square root (not on curve)");
    bool WantOdd = Data[0] == 0x03;
    if (Y.bit(0) != WantOdd)
      Y = Fp.neg(Y);
    return AffinePoint::make(X, Y);
  }
  return makeError("malformed SEC1 point encoding");
}

} // namespace crypto
} // namespace typecoin
