//===- crypto/secp256k1.cpp - The secp256k1 elliptic curve ----------------===//

#include "crypto/secp256k1.h"

#include <cassert>

namespace typecoin {
namespace crypto {

static U256 mustHex(const char *Hex) {
  auto V = U256::fromHex(Hex);
  assert(V && "bad builtin constant");
  return *V;
}

static const char *const PHex =
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
static const char *const GxHex =
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798";
static const char *const GyHex =
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8";

Secp256k1::Secp256k1()
    : Fp(mustHex(PHex)),
      Fn(mustHex(
          "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")),
      N(Fn.modulus()) {
  HalfN = N;
  HalfN.shr1();
  G = AffinePoint::make(mustHex(GxHex), mustHex(GyHex));
  SevenMont = Fp.toMont(U256(7));
  assert(isOnCurve(G) && "generator must lie on the curve");
}

const Secp256k1 &Secp256k1::instance() {
  static const Secp256k1 Curve;
  return Curve;
}

bool Secp256k1::isOnCurve(const AffinePoint &P) const {
  if (P.Infinity)
    return true;
  if (P.X >= Fp.modulus() || P.Y >= Fp.modulus())
    return false;
  U256 X = Fp.toMont(P.X), Y = Fp.toMont(P.Y);
  U256 Lhs = Fp.montMul(Y, Y);
  U256 Rhs = Fp.montAdd(Fp.montMul(Fp.montMul(X, X), X), SevenMont);
  return Lhs == Rhs;
}

Secp256k1::JacobianPoint Secp256k1::toJacobian(const AffinePoint &P) const {
  if (P.Infinity)
    return JacobianPoint{U256::zero(), U256::zero(), U256::zero()};
  return JacobianPoint{Fp.toMont(P.X), Fp.toMont(P.Y), Fp.montOne()};
}

AffinePoint Secp256k1::toAffine(const JacobianPoint &P) const {
  if (P.Z.isZero())
    return AffinePoint::infinity();
  U256 Z = Fp.fromMont(P.Z);
  U256 ZInv = Fp.toMont(Fp.inverse(Z));
  U256 ZInv2 = Fp.montMul(ZInv, ZInv);
  U256 ZInv3 = Fp.montMul(ZInv2, ZInv);
  return AffinePoint::make(Fp.fromMont(Fp.montMul(P.X, ZInv2)),
                           Fp.fromMont(Fp.montMul(P.Y, ZInv3)));
}

Secp256k1::JacobianPoint
Secp256k1::jacDouble(const JacobianPoint &P) const {
  if (P.Z.isZero() || P.Y.isZero())
    return JacobianPoint{U256::zero(), U256::zero(), U256::zero()};
  // dbl-2009-l formulas for a = 0.
  U256 A = Fp.montMul(P.X, P.X);             // X^2
  U256 B = Fp.montMul(P.Y, P.Y);             // Y^2
  U256 C = Fp.montMul(B, B);                 // B^2
  U256 XpB = Fp.montAdd(P.X, B);
  U256 D = Fp.montSub(Fp.montSub(Fp.montMul(XpB, XpB), A), C);
  D = Fp.montAdd(D, D);                      // 2*((X+B)^2 - A - C)
  U256 E = Fp.montAdd(Fp.montAdd(A, A), A);  // 3*A
  U256 F = Fp.montMul(E, E);
  U256 X3 = Fp.montSub(F, Fp.montAdd(D, D));
  U256 C8 = Fp.montAdd(C, C);
  C8 = Fp.montAdd(C8, C8);
  C8 = Fp.montAdd(C8, C8);
  U256 Y3 = Fp.montSub(Fp.montMul(E, Fp.montSub(D, X3)), C8);
  U256 YZ = Fp.montMul(P.Y, P.Z);
  U256 Z3 = Fp.montAdd(YZ, YZ);
  return JacobianPoint{X3, Y3, Z3};
}

Secp256k1::JacobianPoint
Secp256k1::jacAdd(const JacobianPoint &P, const JacobianPoint &Q) const {
  if (P.Z.isZero())
    return Q;
  if (Q.Z.isZero())
    return P;
  U256 Z1Z1 = Fp.montMul(P.Z, P.Z);
  U256 Z2Z2 = Fp.montMul(Q.Z, Q.Z);
  U256 U1 = Fp.montMul(P.X, Z2Z2);
  U256 U2 = Fp.montMul(Q.X, Z1Z1);
  U256 S1 = Fp.montMul(P.Y, Fp.montMul(Z2Z2, Q.Z));
  U256 S2 = Fp.montMul(Q.Y, Fp.montMul(Z1Z1, P.Z));
  if (U1 == U2) {
    if (S1 == S2)
      return jacDouble(P);
    return JacobianPoint{U256::zero(), U256::zero(), U256::zero()};
  }
  U256 H = Fp.montSub(U2, U1);
  U256 R = Fp.montSub(S2, S1);
  U256 H2 = Fp.montMul(H, H);
  U256 H3 = Fp.montMul(H2, H);
  U256 U1H2 = Fp.montMul(U1, H2);
  U256 X3 = Fp.montSub(Fp.montSub(Fp.montMul(R, R), H3),
                       Fp.montAdd(U1H2, U1H2));
  U256 Y3 =
      Fp.montSub(Fp.montMul(R, Fp.montSub(U1H2, X3)), Fp.montMul(S1, H3));
  U256 Z3 = Fp.montMul(Fp.montMul(P.Z, Q.Z), H);
  return JacobianPoint{X3, Y3, Z3};
}

Secp256k1::JacobianPoint
Secp256k1::jacMultiply(const U256 &K, const JacobianPoint &P) const {
  JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
  unsigned Bits = K.bitLength();
  for (int I = static_cast<int>(Bits) - 1; I >= 0; --I) {
    Acc = jacDouble(Acc);
    if (K.bit(static_cast<unsigned>(I)))
      Acc = jacAdd(Acc, P);
  }
  return Acc;
}

AffinePoint Secp256k1::add(const AffinePoint &P, const AffinePoint &Q) const {
  return toAffine(jacAdd(toJacobian(P), toJacobian(Q)));
}

AffinePoint Secp256k1::negate(const AffinePoint &P) const {
  if (P.Infinity)
    return P;
  return AffinePoint::make(P.X, Fp.neg(P.Y));
}

AffinePoint Secp256k1::multiply(const U256 &K, const AffinePoint &P) const {
  U256 KRed = K >= N ? Fn.reduce(K) : K;
  return toAffine(jacMultiply(KRed, toJacobian(P)));
}

AffinePoint Secp256k1::multiplyBase(const U256 &K) const {
  return multiply(K, G);
}

AffinePoint Secp256k1::doubleMultiply(const U256 &A, const U256 &B,
                                      const AffinePoint &P) const {
  // Shamir's trick: interleave both scalar ladders.
  JacobianPoint JG = toJacobian(G);
  JacobianPoint JP = toJacobian(P);
  JacobianPoint Both = jacAdd(JG, JP);
  JacobianPoint Acc{U256::zero(), U256::zero(), U256::zero()};
  unsigned Bits = std::max(A.bitLength(), B.bitLength());
  for (int I = static_cast<int>(Bits) - 1; I >= 0; --I) {
    Acc = jacDouble(Acc);
    bool BitA = A.bit(static_cast<unsigned>(I));
    bool BitB = B.bit(static_cast<unsigned>(I));
    if (BitA && BitB)
      Acc = jacAdd(Acc, Both);
    else if (BitA)
      Acc = jacAdd(Acc, JG);
    else if (BitB)
      Acc = jacAdd(Acc, JP);
  }
  return toAffine(Acc);
}

Bytes Secp256k1::serialize(const AffinePoint &P, bool Compressed) const {
  assert(!P.Infinity && "cannot serialize the point at infinity");
  auto X = P.X.toBytesBE();
  Bytes Out;
  if (Compressed) {
    Out.push_back(P.Y.bit(0) ? 0x03 : 0x02);
    Out.insert(Out.end(), X.begin(), X.end());
    return Out;
  }
  auto Y = P.Y.toBytesBE();
  Out.push_back(0x04);
  Out.insert(Out.end(), X.begin(), X.end());
  Out.insert(Out.end(), Y.begin(), Y.end());
  return Out;
}

Result<AffinePoint> Secp256k1::parse(const Bytes &Data) const {
  if (Data.size() == 65 && Data[0] == 0x04) {
    std::array<uint8_t, 32> XB, YB;
    std::copy(Data.begin() + 1, Data.begin() + 33, XB.begin());
    std::copy(Data.begin() + 33, Data.end(), YB.begin());
    AffinePoint P = AffinePoint::make(U256::fromBytesBE(XB),
                                      U256::fromBytesBE(YB));
    if (!isOnCurve(P))
      return makeError("point is not on secp256k1");
    return P;
  }
  if (Data.size() == 33 && (Data[0] == 0x02 || Data[0] == 0x03)) {
    std::array<uint8_t, 32> XB;
    std::copy(Data.begin() + 1, Data.end(), XB.begin());
    U256 X = U256::fromBytesBE(XB);
    if (X >= Fp.modulus())
      return makeError("x coordinate out of range");
    // y^2 = x^3 + 7; p = 3 mod 4, so sqrt(a) = a^((p+1)/4).
    U256 Rhs = Fp.add(Fp.mul(Fp.mul(X, X), X), U256(7));
    U256 Exp = Fp.modulus();
    Exp.addInPlace(U256::one());
    Exp.shr1();
    Exp.shr1();
    U256 Y = Fp.pow(Rhs, Exp);
    if (Fp.mul(Y, Y) != Rhs)
      return makeError("x coordinate has no square root (not on curve)");
    bool WantOdd = Data[0] == 0x03;
    if (Y.bit(0) != WantOdd)
      Y = Fp.neg(Y);
    return AffinePoint::make(X, Y);
  }
  return makeError("malformed SEC1 point encoding");
}

} // namespace crypto
} // namespace typecoin
