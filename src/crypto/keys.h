//===- crypto/keys.h - Key pairs, addresses, HASH160 ------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Key-pair management: private keys (secp256k1 scalars), public keys,
/// HASH160 public-key hashes, and Base58Check addresses. The paper
/// identifies Typecoin principals with hashes of public keys (Section 4),
/// so `KeyId` doubles as the runtime representation of a principal
/// literal K.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_KEYS_H
#define TYPECOIN_CRYPTO_KEYS_H

#include "crypto/ecdsa.h"
#include "crypto/ripemd160.h"
#include "crypto/secp256k1.h"
#include "support/rng.h"

namespace typecoin {
namespace crypto {

/// HASH160(x) = RIPEMD160(SHA256(x)).
Digest20 hash160(const Bytes &Data);

/// A 20-byte public-key hash; Bitcoin's address payload and Typecoin's
/// principal literal.
struct KeyId {
  Digest20 Hash{};

  bool operator==(const KeyId &O) const { return Hash == O.Hash; }
  bool operator!=(const KeyId &O) const { return Hash != O.Hash; }
  bool operator<(const KeyId &O) const { return Hash < O.Hash; }

  std::string toHex() const { return typecoin::toHex(Hash); }

  /// Base58Check address with version byte 0x00 (Bitcoin mainnet P2PKH).
  std::string toAddress() const;
  static Result<KeyId> fromAddress(const std::string &Address);
};

/// A secp256k1 public key.
class PublicKey {
public:
  PublicKey() = default;
  explicit PublicKey(const AffinePoint &Point) : Point(Point) {}

  const AffinePoint &point() const { return Point; }
  bool isValid() const {
    return !Point.Infinity && Secp256k1::instance().isOnCurve(Point);
  }

  /// SEC1-compressed 33-byte encoding.
  Bytes serialize() const {
    return Secp256k1::instance().serialize(Point, /*Compressed=*/true);
  }
  static Result<PublicKey> parse(const Bytes &Data);

  /// HASH160 of the compressed encoding; the owning principal.
  KeyId id() const { return KeyId{hash160(serialize())}; }

  bool verify(const Digest32 &Hash, const Signature &Sig) const {
    return ecdsaVerify(Point, Hash, Sig);
  }

  bool operator==(const PublicKey &O) const { return Point == O.Point; }

private:
  AffinePoint Point;
};

/// A secp256k1 private key with its derived public key.
class PrivateKey {
public:
  /// Construct from a scalar; fails if out of [1, n).
  static Result<PrivateKey> fromScalar(const U256 &Scalar);

  /// Generate from a deterministic RNG (tests and simulations).
  static PrivateKey generate(Rng &Rand);

  const U256 &scalar() const { return Scalar; }
  const PublicKey &publicKey() const { return Pub; }
  KeyId id() const { return Pub.id(); }

  Signature sign(const Digest32 &Hash) const {
    return ecdsaSign(Scalar, Hash);
  }

private:
  PrivateKey(const U256 &Scalar, const PublicKey &Pub)
      : Scalar(Scalar), Pub(Pub) {}

  U256 Scalar;
  PublicKey Pub;
};

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_KEYS_H
