//===- crypto/base58.cpp - Base58 and Base58Check --------------------------===//

#include "crypto/base58.h"

#include "crypto/sha256.h"

#include <algorithm>
#include <cstring>

namespace typecoin {
namespace crypto {

static const char *const Alphabet =
    "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

std::string base58Encode(const Bytes &Data) {
  // Count leading zero bytes; each maps to a leading '1'.
  size_t Zeros = 0;
  while (Zeros < Data.size() && Data[Zeros] == 0)
    ++Zeros;

  // Repeated division by 58 on a base-256 big number.
  Bytes Digits; // base-58 digits, least significant first
  Bytes Num(Data.begin() + Zeros, Data.end());
  while (!Num.empty()) {
    unsigned Rem = 0;
    Bytes Quot;
    for (uint8_t Byte : Num) {
      unsigned Acc = (Rem << 8) | Byte;
      uint8_t Q = static_cast<uint8_t>(Acc / 58);
      Rem = Acc % 58;
      if (!Quot.empty() || Q != 0)
        Quot.push_back(Q);
    }
    Digits.push_back(static_cast<uint8_t>(Rem));
    Num = std::move(Quot);
  }

  std::string Out(Zeros, '1');
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It)
    Out.push_back(Alphabet[*It]);
  return Out;
}

Result<Bytes> base58Decode(const std::string &Str) {
  static int8_t Map[128];
  static bool MapInit = [] {
    std::memset(Map, -1, sizeof(Map));
    for (int I = 0; Alphabet[I]; ++I)
      Map[static_cast<unsigned char>(Alphabet[I])] = static_cast<int8_t>(I);
    return true;
  }();
  (void)MapInit;

  size_t Ones = 0;
  while (Ones < Str.size() && Str[Ones] == '1')
    ++Ones;

  Bytes Num; // base-256 big number, most significant first
  for (size_t I = Ones; I < Str.size(); ++I) {
    unsigned char C = static_cast<unsigned char>(Str[I]);
    if (C >= 128 || Map[C] < 0)
      return makeError("invalid base58 character");
    // Num = Num * 58 + digit.
    unsigned Carry = static_cast<unsigned>(Map[C]);
    for (auto It = Num.rbegin(); It != Num.rend(); ++It) {
      unsigned Acc = static_cast<unsigned>(*It) * 58 + Carry;
      *It = static_cast<uint8_t>(Acc);
      Carry = Acc >> 8;
    }
    while (Carry) {
      Num.insert(Num.begin(), static_cast<uint8_t>(Carry));
      Carry >>= 8;
    }
  }

  Bytes Out(Ones, 0);
  Out.insert(Out.end(), Num.begin(), Num.end());
  return Out;
}

std::string base58CheckEncode(const Bytes &Payload) {
  Digest32 Check = sha256d(Payload);
  Bytes Full = Payload;
  Full.insert(Full.end(), Check.begin(), Check.begin() + 4);
  return base58Encode(Full);
}

Result<Bytes> base58CheckDecode(const std::string &Str) {
  TC_UNWRAP(Full, base58Decode(Str));
  if (Full.size() < 4)
    return makeError("base58check string too short");
  Bytes Payload(Full.begin(), Full.end() - 4);
  Digest32 Check = sha256d(Payload);
  if (!std::equal(Check.begin(), Check.begin() + 4, Full.end() - 4))
    return makeError("base58check checksum mismatch");
  return Payload;
}

} // namespace crypto
} // namespace typecoin
