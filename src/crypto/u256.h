//===- crypto/u256.h - 256-bit unsigned integers ----------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width 256-bit unsigned arithmetic: the base layer for the
/// secp256k1 field/scalar arithmetic and for proof-of-work targets
/// (block hashes compared as integers; paper Section 2, footnote 3).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_U256_H
#define TYPECOIN_CRYPTO_U256_H

#include "support/bytes.h"
#include "support/result.h"

#include <array>
#include <cstdint>
#include <string>

namespace typecoin {
namespace crypto {

/// 256-bit unsigned integer, little-endian 64-bit limbs.
struct U256 {
  uint64_t Limbs[4] = {0, 0, 0, 0};

  U256() = default;
  explicit U256(uint64_t Low) { Limbs[0] = Low; }

  static U256 zero() { return U256(); }
  static U256 one() { return U256(1); }

  bool isZero() const {
    return Limbs[0] == 0 && Limbs[1] == 0 && Limbs[2] == 0 && Limbs[3] == 0;
  }

  /// Three-way comparison: -1, 0, or 1.
  int cmp(const U256 &Other) const;

  bool operator==(const U256 &O) const { return cmp(O) == 0; }
  bool operator!=(const U256 &O) const { return cmp(O) != 0; }
  bool operator<(const U256 &O) const { return cmp(O) < 0; }
  bool operator<=(const U256 &O) const { return cmp(O) <= 0; }
  bool operator>(const U256 &O) const { return cmp(O) > 0; }
  bool operator>=(const U256 &O) const { return cmp(O) >= 0; }

  /// `*this += Other`; returns the carry out.
  uint64_t addInPlace(const U256 &Other);
  /// `*this -= Other`; returns the borrow out.
  uint64_t subInPlace(const U256 &Other);

  /// Logical shifts by one bit.
  void shl1();
  void shr1();

  /// Value of bit \p I (0 = least significant).
  bool bit(unsigned I) const {
    return (Limbs[I / 64] >> (I % 64)) & 1;
  }

  /// Index of the highest set bit plus one (0 for zero).
  unsigned bitLength() const;

  /// Big-endian 32-byte conversions (the Bitcoin/SEC1 convention).
  static U256 fromBytesBE(const std::array<uint8_t, 32> &Bytes);
  std::array<uint8_t, 32> toBytesBE() const;

  /// 64-hex-digit conversions (big-endian).
  static Result<U256> fromHex(const std::string &Hex);
  std::string toHex() const;
};

/// 512-bit product of two U256 values, little-endian limbs.
struct U512 {
  uint64_t Limbs[8] = {0, 0, 0, 0, 0, 0, 0, 0};
};

/// Schoolbook 256x256 -> 512 multiplication.
U512 mulWide(const U256 &A, const U256 &B);

/// Modular arithmetic for a fixed odd prime modulus, using Montgomery
/// multiplication internally. Values passed in and out are ordinary
/// (non-Montgomery) residues in [0, M).
class ModArith {
public:
  /// \p Modulus must be odd with its top bit set (true for both the
  /// secp256k1 field prime p and group order n).
  explicit ModArith(const U256 &Modulus);

  const U256 &modulus() const { return M; }

  U256 add(const U256 &A, const U256 &B) const;
  U256 sub(const U256 &A, const U256 &B) const;
  U256 neg(const U256 &A) const;
  U256 mul(const U256 &A, const U256 &B) const;
  U256 sqr(const U256 &A) const { return mul(A, A); }
  U256 pow(const U256 &Base, const U256 &Exp) const;
  /// Inverse via Fermat's little theorem; requires a prime modulus and
  /// nonzero \p A.
  U256 inverse(const U256 &A) const;
  /// Reduce an arbitrary 256-bit value mod M.
  U256 reduce(const U256 &A) const;

  /// Montgomery-form entry points for hot loops (EC point arithmetic).
  U256 toMont(const U256 &A) const { return montMul(A, RR); }
  U256 fromMont(const U256 &A) const { return montMul(A, U256::one()); }
  U256 montMul(const U256 &A, const U256 &B) const;
  /// Addition/subtraction work identically on Montgomery representatives.
  U256 montAdd(const U256 &A, const U256 &B) const { return add(A, B); }
  U256 montSub(const U256 &A, const U256 &B) const { return sub(A, B); }
  const U256 &montOne() const { return RModM; }

private:
  U256 M;
  U256 RModM; ///< 2^256 mod M (the Montgomery representation of 1).
  U256 RR;    ///< 2^512 mod M, for conversion into Montgomery form.
  uint64_t Inv; ///< -M^{-1} mod 2^64.
};

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_U256_H
