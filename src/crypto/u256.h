//===- crypto/u256.h - 256-bit unsigned integers ----------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width 256-bit unsigned arithmetic: the base layer for the
/// secp256k1 field/scalar arithmetic and for proof-of-work targets
/// (block hashes compared as integers; paper Section 2, footnote 3).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_U256_H
#define TYPECOIN_CRYPTO_U256_H

#include "support/bytes.h"
#include "support/result.h"

#include <array>
#include <cstdint>
#include <string>

namespace typecoin {
namespace crypto {

/// 256-bit unsigned integer, little-endian 64-bit limbs.
struct U256 {
  uint64_t Limbs[4] = {0, 0, 0, 0};

  U256() = default;
  explicit U256(uint64_t Low) { Limbs[0] = Low; }

  static U256 zero() { return U256(); }
  static U256 one() { return U256(1); }

  bool isZero() const {
    return Limbs[0] == 0 && Limbs[1] == 0 && Limbs[2] == 0 && Limbs[3] == 0;
  }

  /// Three-way comparison: -1, 0, or 1. Inline (with the other
  /// single-digit helpers below) so the EC hot loops in secp256k1.cpp
  /// can fold it into the surrounding arithmetic.
  int cmp(const U256 &Other) const {
    for (int I = 3; I >= 0; --I) {
      if (Limbs[I] < Other.Limbs[I])
        return -1;
      if (Limbs[I] > Other.Limbs[I])
        return 1;
    }
    return 0;
  }

  bool operator==(const U256 &O) const { return cmp(O) == 0; }
  bool operator!=(const U256 &O) const { return cmp(O) != 0; }
  bool operator<(const U256 &O) const { return cmp(O) < 0; }
  bool operator<=(const U256 &O) const { return cmp(O) <= 0; }
  bool operator>(const U256 &O) const { return cmp(O) > 0; }
  bool operator>=(const U256 &O) const { return cmp(O) >= 0; }

  /// `*this += Other`; returns the carry out.
  uint64_t addInPlace(const U256 &Other) {
    unsigned __int128 Carry = 0;
    for (int I = 0; I < 4; ++I) {
      unsigned __int128 Sum =
          static_cast<unsigned __int128>(Limbs[I]) + Other.Limbs[I] + Carry;
      Limbs[I] = static_cast<uint64_t>(Sum);
      Carry = Sum >> 64;
    }
    return static_cast<uint64_t>(Carry);
  }
  /// `*this -= Other`; returns the borrow out.
  uint64_t subInPlace(const U256 &Other) {
    uint64_t Borrow = 0;
    for (int I = 0; I < 4; ++I) {
      unsigned __int128 Diff =
          static_cast<unsigned __int128>(Limbs[I]) - Other.Limbs[I] - Borrow;
      Limbs[I] = static_cast<uint64_t>(Diff);
      Borrow = (Diff >> 64) ? 1 : 0;
    }
    return Borrow;
  }

  /// Logical shifts by one bit.
  void shl1();
  void shr1();

  /// Value of bit \p I (0 = least significant).
  bool bit(unsigned I) const {
    return (Limbs[I / 64] >> (I % 64)) & 1;
  }

  /// Index of the highest set bit plus one (0 for zero).
  unsigned bitLength() const;

  /// Big-endian 32-byte conversions (the Bitcoin/SEC1 convention).
  static U256 fromBytesBE(const std::array<uint8_t, 32> &Bytes);
  std::array<uint8_t, 32> toBytesBE() const;

  /// 64-hex-digit conversions (big-endian).
  static Result<U256> fromHex(const std::string &Hex);
  std::string toHex() const;
};

/// 512-bit product of two U256 values, little-endian limbs.
struct U512 {
  uint64_t Limbs[8] = {0, 0, 0, 0, 0, 0, 0, 0};
};

/// Schoolbook 256x256 -> 512 multiplication. Defined inline: a field
/// multiplication is ~70% of every scalar multiplication's cost, and
/// keeping the limb loops visible to the caller's translation unit is
/// worth roughly a third of the EC runtime over an opaque call.
inline U512 mulWide(const U256 &A, const U256 &B) {
  U512 Out;
  for (int I = 0; I < 4; ++I) {
    unsigned __int128 Carry = 0;
    for (int J = 0; J < 4; ++J) {
      unsigned __int128 Cur =
          static_cast<unsigned __int128>(A.Limbs[I]) * B.Limbs[J] +
          Out.Limbs[I + J] + Carry;
      Out.Limbs[I + J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    Out.Limbs[I + 4] = static_cast<uint64_t>(Carry);
  }
  return Out;
}

/// 512-bit square of a U256: the off-diagonal limb products are computed
/// once and doubled, saving 6 of the 16 schoolbook multiplies.
inline U512 sqrWide(const U256 &A) {
  // Off-diagonal products a_i * a_j (i < j), accumulated once.
  U512 Out;
  for (int I = 0; I < 4; ++I) {
    unsigned __int128 Carry = 0;
    for (int J = I + 1; J < 4; ++J) {
      unsigned __int128 Cur =
          static_cast<unsigned __int128>(A.Limbs[I]) * A.Limbs[J] +
          Out.Limbs[I + J] + Carry;
      Out.Limbs[I + J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    Out.Limbs[I + 4] = static_cast<uint64_t>(Carry);
  }
  // Double the off-diagonal sum (< 2^511, so the top bit never escapes).
  uint64_t Top = 0;
  for (int I = 0; I < 8; ++I) {
    uint64_t Next = Out.Limbs[I] >> 63;
    Out.Limbs[I] = (Out.Limbs[I] << 1) | Top;
    Top = Next;
  }
  // Add the diagonal squares a_i^2 at limb position 2i.
  unsigned __int128 Carry = 0;
  for (int I = 0; I < 4; ++I) {
    unsigned __int128 D =
        static_cast<unsigned __int128>(A.Limbs[I]) * A.Limbs[I];
    unsigned __int128 Cur = static_cast<unsigned __int128>(Out.Limbs[2 * I]) +
                            static_cast<uint64_t>(D) + Carry;
    Out.Limbs[2 * I] = static_cast<uint64_t>(Cur);
    Cur = static_cast<unsigned __int128>(Out.Limbs[2 * I + 1]) +
          static_cast<uint64_t>(D >> 64) + (Cur >> 64);
    Out.Limbs[2 * I + 1] = static_cast<uint64_t>(Cur);
    Carry = Cur >> 64;
  }
  return Out;
}

/// Modular arithmetic for a fixed odd prime modulus. Values passed in
/// and out are ordinary residues in [0, M).
///
/// Internally one of two reduction strategies is selected at
/// construction:
///
///  * **Pseudo-Mersenne** when M = 2^256 - c with c < 2^64 (true for the
///    secp256k1 field prime p, where c = 2^32 + 977): products are
///    reduced by folding the high 256 bits times c back into the low
///    half — two small multiply-accumulate passes instead of a full
///    Montgomery reduction, roughly halving the cost of a field
///    multiplication. In this mode the "Montgomery form" is the identity
///    (toMont/fromMont are no-ops and montOne() is 1), so callers using
///    the mont* entry points consistently are unaffected.
///  * **Montgomery** otherwise (the secp256k1 group order n).
class ModArith {
public:
  /// \p Modulus must be odd with its top bit set (true for both the
  /// secp256k1 field prime p and group order n).
  explicit ModArith(const U256 &Modulus);

  const U256 &modulus() const { return M; }

  U256 add(const U256 &A, const U256 &B) const {
    U256 Out = A;
    uint64_t Carry = Out.addInPlace(B);
    if (Carry || Out >= M)
      Out.subInPlace(M);
    return Out;
  }
  U256 sub(const U256 &A, const U256 &B) const {
    U256 Out = A;
    if (Out.subInPlace(B))
      Out.addInPlace(M);
    return Out;
  }
  U256 neg(const U256 &A) const {
    if (A.isZero())
      return A;
    U256 Out = M;
    Out.subInPlace(A);
    return Out;
  }
  U256 mul(const U256 &A, const U256 &B) const;
  U256 sqr(const U256 &A) const { return fromMont(montSqr(toMont(A))); }
  U256 pow(const U256 &Base, const U256 &Exp) const;
  /// Inverse via Fermat's little theorem; requires a prime modulus and
  /// nonzero \p A.
  U256 inverse(const U256 &A) const;
  /// Reduce an arbitrary 256-bit value mod M.
  U256 reduce(const U256 &A) const;

  /// Montgomery-form entry points for hot loops (EC point arithmetic).
  /// Under the pseudo-Mersenne strategy these degrade gracefully:
  /// to/fromMont are the identity and montMul is a plain modular
  /// multiply with fast folding reduction.
  U256 toMont(const U256 &A) const { return Pseudo ? A : montMul(A, RR); }
  U256 fromMont(const U256 &A) const {
    return Pseudo ? A : montMul(A, U256::one());
  }
  U256 montMul(const U256 &A, const U256 &B) const {
    return reduce512(mulWide(A, B));
  }
  /// Squaring on internal representatives: same reduction as montMul but
  /// over the cheaper sqrWide product. The EC point formulas are
  /// squaring-heavy (5 of the 7 multiplies in a Jacobian doubling), so
  /// this shaves a constant factor off every scalar multiplication.
  U256 montSqr(const U256 &A) const { return reduce512(sqrWide(A)); }
  /// Addition/subtraction work identically on Montgomery representatives.
  U256 montAdd(const U256 &A, const U256 &B) const { return add(A, B); }
  U256 montSub(const U256 &A, const U256 &B) const { return sub(A, B); }
  const U256 &montOne() const { return MontOneV; }

  /// True when the pseudo-Mersenne folding reducer is active.
  bool isPseudoMersenne() const { return Pseudo; }

private:
  /// Reduce a full 512-bit product to [0, M) with whichever strategy
  /// this instance selected. The pseudo-Mersenne fold lives here inline
  /// (it is the secp256k1 field path and sits under every point
  /// operation); the generic Montgomery reduction stays out of line.
  U256 reduce512(const U512 &T) const {
    if (!Pseudo)
      return montReduce512(T);
    // Fold: A*B = Hi*2^256 + Lo = Hi*c + Lo (mod M). Hi*c is at most
    // ~2^290, so one fold leaves a 5-limb value; folding the top limb
    // once more (plus a final carry correction of +c, which cannot
    // itself carry because the low part is tiny when it fires) lands in
    // [0, 2M), finished by one conditional subtract.
    uint64_t R[5] = {T.Limbs[0], T.Limbs[1], T.Limbs[2], T.Limbs[3], 0};
    unsigned __int128 Carry = 0;
    for (int J = 0; J < 4; ++J) {
      unsigned __int128 Cur =
          static_cast<unsigned __int128>(T.Limbs[4 + J]) * C64 + R[J] + Carry;
      R[J] = static_cast<uint64_t>(Cur);
      Carry = Cur >> 64;
    }
    R[4] = static_cast<uint64_t>(Carry);

    U256 Out;
    unsigned __int128 Add = static_cast<unsigned __int128>(R[4]) * C64;
    unsigned __int128 Cur =
        static_cast<unsigned __int128>(R[0]) + static_cast<uint64_t>(Add);
    Out.Limbs[0] = static_cast<uint64_t>(Cur);
    Cur = static_cast<unsigned __int128>(R[1]) +
          static_cast<uint64_t>(Add >> 64) + static_cast<uint64_t>(Cur >> 64);
    Out.Limbs[1] = static_cast<uint64_t>(Cur);
    Cur = static_cast<unsigned __int128>(R[2]) +
          static_cast<uint64_t>(Cur >> 64);
    Out.Limbs[2] = static_cast<uint64_t>(Cur);
    Cur = static_cast<unsigned __int128>(R[3]) +
          static_cast<uint64_t>(Cur >> 64);
    Out.Limbs[3] = static_cast<uint64_t>(Cur);
    if (Cur >> 64)
      Out.addInPlace(U256(C64)); // 2^256 = c (mod M); cannot carry here.
    if (Out >= M)
      Out.subInPlace(M);
    return Out;
  }
  /// Montgomery SOS reduction of a 512-bit product (the group-order
  /// ring; not performance-critical enough to inline).
  U256 montReduce512(U512 T) const;

  U256 M;
  U256 RModM;    ///< 2^256 mod M; doubles as the fold constant c.
  U256 RR;       ///< 2^512 mod M, for conversion into Montgomery form.
  U256 MontOneV; ///< The internal representation of 1.
  uint64_t Inv;  ///< -M^{-1} mod 2^64.
  uint64_t C64 = 0;    ///< c = 2^256 - M when it fits a limb.
  bool Pseudo = false; ///< M = 2^256 - c with c < 2^64.
};

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_U256_H
