//===- crypto/keys.cpp - Key pairs, addresses, HASH160 ---------------------===//

#include "crypto/keys.h"

#include "crypto/base58.h"

namespace typecoin {
namespace crypto {

Digest20 hash160(const Bytes &Data) {
  Digest32 First = sha256(Data);
  return ripemd160(First.data(), First.size());
}

std::string KeyId::toAddress() const {
  Bytes Payload;
  Payload.reserve(1 + Hash.size());
  Payload.push_back(0x00);
  Payload.insert(Payload.end(), Hash.begin(), Hash.end());
  return base58CheckEncode(Payload);
}

Result<KeyId> KeyId::fromAddress(const std::string &Address) {
  TC_UNWRAP(Payload, base58CheckDecode(Address));
  if (Payload.size() != 21 || Payload[0] != 0x00)
    return makeError("not a version-0 P2PKH address");
  KeyId Out;
  std::copy(Payload.begin() + 1, Payload.end(), Out.Hash.begin());
  return Out;
}

Result<PublicKey> PublicKey::parse(const Bytes &Data) {
  TC_UNWRAP(Point, Secp256k1::instance().parse(Data));
  return PublicKey(Point);
}

Result<PrivateKey> PrivateKey::fromScalar(const U256 &Scalar) {
  const Secp256k1 &Curve = Secp256k1::instance();
  if (Scalar.isZero() || Scalar >= Curve.order())
    return makeError("private key scalar out of range [1, n)");
  PublicKey Pub(Curve.multiplyBase(Scalar));
  return PrivateKey(Scalar, Pub);
}

PrivateKey PrivateKey::generate(Rng &Rand) {
  for (;;) {
    U256 Scalar;
    for (auto &Limb : Scalar.Limbs)
      Limb = Rand.next();
    auto Key = fromScalar(Scalar);
    if (Key)
      return Key.takeValue();
  }
}

} // namespace crypto
} // namespace typecoin
