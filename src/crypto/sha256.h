//===- crypto/sha256.h - SHA-256 and double-SHA-256 ------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch SHA-256 (FIPS 180-4) with a streaming interface, plus the
/// double-SHA-256 used throughout Bitcoin for transaction ids, block
/// hashes, and the Typecoin transaction hash embedded into Bitcoin
/// transactions (paper, Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_SHA256_H
#define TYPECOIN_CRYPTO_SHA256_H

#include "support/bytes.h"

#include <array>
#include <cstdint>

namespace typecoin {
namespace crypto {

/// A 32-byte digest.
using Digest32 = std::array<uint8_t, 32>;

/// Streaming SHA-256.
class Sha256 {
public:
  Sha256() { reset(); }

  /// Reinitialize to the empty message.
  void reset();

  /// Absorb \p Len bytes.
  Sha256 &update(const uint8_t *Data, size_t Len);
  Sha256 &update(const Bytes &Data) {
    return update(Data.data(), Data.size());
  }

  /// Pad and produce the digest. The object must be reset before reuse.
  Digest32 finalize();

private:
  void compress(const uint8_t *Block);

  uint32_t State[8];
  uint64_t TotalLen;
  uint8_t Buffer[64];
  size_t BufferLen;
};

/// One-shot SHA-256.
Digest32 sha256(const uint8_t *Data, size_t Len);
Digest32 sha256(const Bytes &Data);

/// Bitcoin's double SHA-256: SHA256(SHA256(x)).
Digest32 sha256d(const uint8_t *Data, size_t Len);
Digest32 sha256d(const Bytes &Data);

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_SHA256_H
