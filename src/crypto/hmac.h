//===- crypto/hmac.h - HMAC-SHA256 ------------------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HMAC-SHA256 (RFC 2104), used by the RFC 6979 deterministic-nonce
/// generator in the ECDSA signer.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_HMAC_H
#define TYPECOIN_CRYPTO_HMAC_H

#include "crypto/sha256.h"

namespace typecoin {
namespace crypto {

/// HMAC-SHA256 of \p Data under \p Key.
Digest32 hmacSha256(const uint8_t *Key, size_t KeyLen, const uint8_t *Data,
                    size_t DataLen);
Digest32 hmacSha256(const Bytes &Key, const Bytes &Data);

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_HMAC_H
