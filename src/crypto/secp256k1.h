//===- crypto/secp256k1.h - The secp256k1 elliptic curve -------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch secp256k1 group arithmetic: y^2 = x^3 + 7 over the prime
/// field p = 2^256 - 2^32 - 977. Jacobian-coordinate point arithmetic with
/// Montgomery field elements; affine conversion and SEC1 point
/// serialization (compressed and uncompressed).
///
/// This implementation favors clarity over side-channel resistance; the
/// repo is a systems reproduction, not a hardened wallet.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_SECP256K1_H
#define TYPECOIN_CRYPTO_SECP256K1_H

#include "crypto/u256.h"

#include <optional>

namespace typecoin {
namespace crypto {

/// An affine curve point, or the point at infinity.
struct AffinePoint {
  U256 X;
  U256 Y;
  bool Infinity = true;

  static AffinePoint infinity() { return AffinePoint(); }
  static AffinePoint make(const U256 &X, const U256 &Y) {
    AffinePoint P;
    P.X = X;
    P.Y = Y;
    P.Infinity = false;
    return P;
  }

  bool operator==(const AffinePoint &O) const {
    if (Infinity || O.Infinity)
      return Infinity == O.Infinity;
    return X == O.X && Y == O.Y;
  }
};

/// The secp256k1 group: curve constants, point arithmetic, and
/// serialization. A process-wide singleton is available via \ref instance.
class Secp256k1 {
public:
  Secp256k1();

  /// The curve's field arithmetic (mod p).
  const ModArith &field() const { return Fp; }
  /// The group-order arithmetic (mod n).
  const ModArith &scalar() const { return Fn; }

  /// Group order n.
  const U256 &order() const { return N; }
  /// n / 2, for low-S signature normalization.
  const U256 &halfOrder() const { return HalfN; }
  /// The standard generator G.
  const AffinePoint &generator() const { return G; }

  /// True if \p P is on the curve (or infinity).
  bool isOnCurve(const AffinePoint &P) const;

  /// Group operations (affine interface; Jacobian internally).
  AffinePoint add(const AffinePoint &P, const AffinePoint &Q) const;
  AffinePoint negate(const AffinePoint &P) const;
  /// Scalar multiplication k*P; k is reduced mod n.
  AffinePoint multiply(const U256 &K, const AffinePoint &P) const;
  /// k*G.
  AffinePoint multiplyBase(const U256 &K) const;
  /// a*G + b*P in one pass (the ECDSA verification shape).
  AffinePoint doubleMultiply(const U256 &A, const U256 &B,
                             const AffinePoint &P) const;

  /// SEC1 serialization: 33 bytes (compressed) or 65 (uncompressed).
  Bytes serialize(const AffinePoint &P, bool Compressed = true) const;
  /// SEC1 parse, with decompression (p = 3 mod 4 square root).
  Result<AffinePoint> parse(const Bytes &Data) const;

  /// Process-wide instance (curve constants are fixed).
  static const Secp256k1 &instance();

private:
  /// Jacobian point with Montgomery-form coordinates; Z == 0 encodes
  /// infinity.
  struct JacobianPoint {
    U256 X, Y, Z;
  };

  JacobianPoint toJacobian(const AffinePoint &P) const;
  AffinePoint toAffine(const JacobianPoint &P) const;
  JacobianPoint jacDouble(const JacobianPoint &P) const;
  JacobianPoint jacAdd(const JacobianPoint &P, const JacobianPoint &Q) const;
  JacobianPoint jacMultiply(const U256 &K, const JacobianPoint &P) const;

  ModArith Fp;
  ModArith Fn;
  U256 N;
  U256 HalfN;
  AffinePoint G;
  U256 SevenMont; ///< Curve constant b = 7 in Montgomery form.
};

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_SECP256K1_H
