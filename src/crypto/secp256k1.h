//===- crypto/secp256k1.h - The secp256k1 elliptic curve -------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// From-scratch secp256k1 group arithmetic: y^2 = x^3 + 7 over the prime
/// field p = 2^256 - 2^32 - 977. Jacobian-coordinate point arithmetic over
/// pseudo-Mersenne field elements; affine conversion and SEC1 point
/// serialization (compressed and uncompressed).
///
/// Scalar multiplication is table-driven (ROADMAP item 4c):
///
///  * `multiplyBase` walks a fixed-base comb table (one mixed addition per
///    window, zero doublings), built once at startup; window width comes
///    from `TYPECOIN_ECMULT_WINDOW` (default 4, 0 disables the table).
///  * `multiply` uses width-5 wNAF over on-the-fly odd multiples of P.
///  * `doubleMultiply` — the exact shape `ecdsaVerify` computes — is an
///    interleaved Straus/Shamir ladder mixing width-8 wNAF over a
///    precomputed odd-multiples-of-G table with width-5 wNAF over P.
///
/// `multiply` and `doubleMultiply` additionally exploit the GLV
/// endomorphism: secp256k1 has j-invariant 0, so phi(x, y) = (beta*x, y)
/// is an order-3 group automorphism acting as multiplication by lambda
/// (a cube root of 1 mod n). Each 256-bit scalar splits as
/// k = k1 + k2*lambda with |k1|, |k2| ~ 128 bits, and k*P is evaluated
/// as k1*P + k2*phi(P) on a shared ladder — halving the doubling count,
/// with phi applied to table entries for one field multiply each.
///
/// The bit-at-a-time reference ladders are retained as `multiplyNaive` /
/// `doubleMultiplyNaive`; the property sweep in tests/crypto compares the
/// table paths against them over random and edge-case inputs.
///
/// This implementation favors clarity over side-channel resistance; the
/// repo is a systems reproduction, not a hardened wallet.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_CRYPTO_SECP256K1_H
#define TYPECOIN_CRYPTO_SECP256K1_H

#include "crypto/u256.h"

#include <optional>
#include <vector>

namespace typecoin {
namespace crypto {

/// An affine curve point, or the point at infinity.
struct AffinePoint {
  U256 X;
  U256 Y;
  bool Infinity = true;

  static AffinePoint infinity() { return AffinePoint(); }
  static AffinePoint make(const U256 &X, const U256 &Y) {
    AffinePoint P;
    P.X = X;
    P.Y = Y;
    P.Infinity = false;
    return P;
  }

  bool operator==(const AffinePoint &O) const {
    if (Infinity || O.Infinity)
      return Infinity == O.Infinity;
    return X == O.X && Y == O.Y;
  }
};

/// The secp256k1 group: curve constants, point arithmetic, and
/// serialization. A process-wide singleton is available via \ref instance.
class Secp256k1 {
public:
  /// \p CombWindowOverride selects the fixed-base comb window width in
  /// bits; -1 reads `TYPECOIN_ECMULT_WINDOW` (default 4), 0 disables the
  /// comb so `multiplyBase` falls back to wNAF over the odd-G table.
  /// Values are clamped to [0, 8]. Tests construct private instances to
  /// sweep window widths; production code uses \ref instance.
  explicit Secp256k1(int CombWindowOverride = -1);

  /// The curve's field arithmetic (mod p).
  const ModArith &field() const { return Fp; }
  /// The group-order arithmetic (mod n).
  const ModArith &scalar() const { return Fn; }

  /// Group order n.
  const U256 &order() const { return N; }
  /// n / 2, for low-S signature normalization.
  const U256 &halfOrder() const { return HalfN; }
  /// The standard generator G.
  const AffinePoint &generator() const { return G; }
  /// The comb window width this instance was built with (0 = disabled).
  unsigned combWindow() const { return CombW; }

  /// GLV endomorphism constants (exposed for the property sweep):
  /// lambda^3 = 1 mod n and beta^3 = 1 mod p, with
  /// lambda * (x, y) = (beta * x, y).
  const U256 &endoLambda() const { return Lambda; }
  const U256 &endoBeta() const { return Beta; }

  /// True if \p P is on the curve (or infinity).
  bool isOnCurve(const AffinePoint &P) const;

  /// Group operations (affine interface; Jacobian internally).
  AffinePoint add(const AffinePoint &P, const AffinePoint &Q) const;
  AffinePoint negate(const AffinePoint &P) const;
  /// Scalar multiplication k*P (width-5 wNAF); k is reduced mod n.
  AffinePoint multiply(const U256 &K, const AffinePoint &P) const;
  /// k*G via the fixed-base comb (or the odd-G wNAF table when the comb
  /// is disabled).
  AffinePoint multiplyBase(const U256 &K) const;
  /// a*G + b*P in one interleaved Straus pass (the ECDSA verification
  /// shape): width-8 wNAF against the precomputed odd-G table, width-5
  /// wNAF against odd multiples of P.
  AffinePoint doubleMultiply(const U256 &A, const U256 &B,
                             const AffinePoint &P) const;

  /// Reference double-and-add ladder; the oracle for the property sweep
  /// and the "before" side of bench_t12.
  AffinePoint multiplyNaive(const U256 &K, const AffinePoint &P) const;
  /// Reference bit-at-a-time Shamir ladder (the pre-table-era
  /// doubleMultiply).
  AffinePoint doubleMultiplyNaive(const U256 &A, const U256 &B,
                                  const AffinePoint &P) const;

  /// SEC1 serialization: 33 bytes (compressed) or 65 (uncompressed).
  Bytes serialize(const AffinePoint &P, bool Compressed = true) const;
  /// SEC1 parse, with decompression (p = 3 mod 4 square root).
  Result<AffinePoint> parse(const Bytes &Data) const;

  /// Process-wide instance (curve constants are fixed; tables are built
  /// exactly once and read-only afterwards, so sharing is thread-safe).
  static const Secp256k1 &instance();

private:
  /// Jacobian point with field-internal coordinates; Z == 0 encodes
  /// infinity.
  struct JacobianPoint {
    U256 X, Y, Z;
  };

  /// Precomputed table entry: an affine point in field-internal form
  /// (never infinity), so additions against it use the cheap mixed
  /// formulas.
  struct MontAffine {
    U256 X, Y;
  };

  /// A scalar decomposed along the lambda endomorphism:
  /// k = (-1)^Neg1 * K1 + (-1)^Neg2 * K2 * lambda (mod n), with K1 and
  /// K2 nonnegative and roughly 128 bits.
  struct SplitScalar {
    U256 K1, K2;
    bool Neg1 = false, Neg2 = false;
  };
  SplitScalar splitLambda(const U256 &K) const;
  /// phi applied to a table entry: (beta*x, y), one field multiply.
  MontAffine endoEntry(const MontAffine &P) const;
  /// One Straus table lookup: add digit D (negated when \p Neg) from
  /// table \p T into \p Acc; no-op for D == 0.
  void strausAdd(JacobianPoint &Acc, int D, bool Neg,
                 const std::vector<MontAffine> &T) const;
  /// As \ref strausAdd, but rescales the (true-affine) entry onto the
  /// iso-curve of the per-call tables by Z2 = IsoZ^2, Z3 = IsoZ^3
  /// first: two extra field multiplies per addition in exchange for
  /// running the whole ladder inversion-free.
  void strausAddScaled(JacobianPoint &Acc, int D, bool Neg,
                       const std::vector<MontAffine> &T, const U256 &Z2,
                       const U256 &Z3) const;

  JacobianPoint toJacobian(const AffinePoint &P) const;
  AffinePoint toAffine(const JacobianPoint &P) const;
  JacobianPoint jacDouble(const JacobianPoint &P) const;
  JacobianPoint jacAdd(const JacobianPoint &P, const JacobianPoint &Q) const;
  /// Mixed addition P + Q with Q affine (Z2 = 1): saves ~5 field muls
  /// over the general formula.
  JacobianPoint jacAddMixed(const JacobianPoint &P, const MontAffine &Q) const;
  /// As \ref jacAddMixed, additionally reporting the Z ratio
  /// Z_out / Z_in in \p Zr. Requires P finite and P != +-Q (true for
  /// the odd-multiple chains that use it).
  JacobianPoint jacAddMixedZr(const JacobianPoint &P, const MontAffine &Q,
                              U256 &Zr) const;
  JacobianPoint jacMultiply(const U256 &K, const JacobianPoint &P) const;
  MontAffine negateEntry(const MontAffine &P) const;

  /// Batch-convert Jacobian points to MontAffine with a single field
  /// inversion (Montgomery's trick). No input may be infinity.
  std::vector<MontAffine>
  normalizeBatch(const std::vector<JacobianPoint> &Pts) const;
  /// Odd multiples {1, 3, 5, ...}*P, Table.size() entries.
  void oddMultiples(const JacobianPoint &P,
                    std::vector<MontAffine> &Table) const;
  /// As \ref oddMultiples, but inversion-free: entries are affine on an
  /// isomorphic curve sharing one global denominator \p IsoZ. A ladder
  /// run against them yields the true point after multiplying the final
  /// accumulator's Z by IsoZ. \p P must be finite with Z = 1.
  void oddMultiplesGlobalZ(const JacobianPoint &P,
                           std::vector<MontAffine> &Table, U256 &IsoZ) const;
  void buildTables();

  ModArith Fp;
  ModArith Fn;
  U256 N;
  U256 HalfN;
  AffinePoint G;
  U256 SevenMont; ///< Curve constant b = 7 in field-internal form.

  U256 Lambda;   ///< Cube root of 1 mod n (scalar action of phi).
  U256 Beta;     ///< Cube root of 1 mod p (x-coordinate action of phi).
  U256 BetaMont; ///< beta in field-internal form.
  /// Lattice constants for the lambda decomposition (libsecp256k1's
  /// basis): k2 = -(round(k*G1/2^384)*B1 + round(k*G2/2^384)*B2),
  /// k1 = k - k2*lambda. MinusB1/MinusB2 store -b1/-b2 mod n.
  U256 SplitG1, SplitG2, MinusB1, MinusB2;

  unsigned CombW = 0;          ///< Comb window width in bits; 0 = disabled.
  std::vector<MontAffine> Comb; ///< [block][digit-1]: d * 2^(W*block) * G.
  std::vector<MontAffine> GOdd; ///< Odd multiples of G for width-8 wNAF.
  std::vector<MontAffine> GLamOdd; ///< phi(GOdd): odd multiples of phi(G).
};

} // namespace crypto
} // namespace typecoin

#endif // TYPECOIN_CRYPTO_SECP256K1_H
