//===- services/escrow.h - Type-checking escrow agents -----------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type-checking escrow (Section 7): an agent holds assets at its key
/// and follows the policy "sign any instance of the transaction that
/// type checks." Trust is diluted by sending assets to an m-of-n pool of
/// agents (e.g. 2-of-3 "can tolerate one of the three agents becoming
/// compromised").
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_SERVICES_ESCROW_H
#define TYPECOIN_SERVICES_ESCROW_H

#include "typecoin/builder.h"
#include "typecoin/opentx.h"

namespace typecoin {
namespace services {

/// A single escrow agent.
class EscrowAgent {
public:
  explicit EscrowAgent(uint64_t Seed) : W(Seed), Key(W.newKey()) {}

  const crypto::PublicKey &publicKey() const { return Key.publicKey(); }
  crypto::KeyId id() const { return Key.id(); }

  /// How far behind the wall clock the agent's chain view may lag
  /// before it refuses to sign (seconds; 0 disables the check). A
  /// partitioned agent whose tip has gone stale cannot judge `spent(...)`
  /// or `before(t)` evidence and must not attest against it.
  void setStalenessHorizon(double Seconds) { StalenessHorizon = Seconds; }
  double stalenessHorizon() const { return StalenessHorizon; }

  /// The agent's policy: typecheck the filled instance against the
  /// node's state (with its correspondence to the carrying Bitcoin
  /// transaction), then contribute a signature for input \p InputIndex
  /// of the Bitcoin transaction. Returns the DER signature with
  /// sighash-type byte, for assembly into the multisig scriptSig.
  /// \p Now is the agent's wall clock; when set and the node's tip is
  /// older than the staleness horizon, the agent refuses.
  Result<Bytes> signIfValid(const tc::Pair &Filled, const tc::Node &Node,
                            size_t InputIndex,
                            std::optional<double> Now = std::nullopt) const;

private:
  tc::Wallet W;
  crypto::PrivateKey Key;
  double StalenessHorizon = 0;
};

/// Create the m-of-n locking script for an escrow pool.
bitcoin::Script escrowPoolScript(int Required,
                                 const std::vector<const EscrowAgent *> &Pool);

/// Assemble an OP_CHECKMULTISIG scriptSig from per-agent signatures
/// (ordering them by key position in \p ScriptPubKey).
Result<bitcoin::Script>
assembleMultisig(const bitcoin::Script &ScriptPubKey,
                 const std::vector<std::pair<Bytes, Bytes>> &KeySigs);

} // namespace services
} // namespace typecoin

#endif // TYPECOIN_SERVICES_ESCROW_H
