//===- services/authserver.cpp - Proof-carrying-authorization server ----------===//

#include "services/authserver.h"

#include <cassert>

namespace typecoin {
namespace services {

using lf::ConstName;

AuthVocab AuthVocab::resolved(const std::string &Txid) const {
  AuthVocab Out;
  Out.File = File.resolved(Txid);
  Out.Homework = Homework.resolved(Txid);
  Out.MayWrite = MayWrite.resolved(Txid);
  Out.MayWriteThis = MayWriteThis.resolved(Txid);
  Out.Use = Use.resolved(Txid);
  return Out;
}

AuthVocab authBasis(logic::Basis &Out) {
  AuthVocab V;
  V.File = ConstName::local("file");
  V.Homework = ConstName::local("homework");
  V.MayWrite = ConstName::local("may-write");
  V.MayWriteThis = ConstName::local("may-write-this");
  V.Use = ConstName::local("use");

  auto Check = [](Status S) {
    assert(S.hasValue() && "auth basis construction must succeed");
    (void)S;
  };

  lf::LFTypePtr FileTy = lf::tConst(V.File);
  Check(Out.declareFamily(V.File, lf::kType()));
  Check(Out.declareTerm(V.Homework, FileTy));
  // may-write : principal -> file -> prop.
  Check(Out.declareFamily(
      V.MayWrite,
      lf::kPi(lf::principalType(), lf::kPi(FileTy, lf::kProp()))));
  // may-write-this : principal -> file -> nat -> prop.
  Check(Out.declareFamily(
      V.MayWriteThis,
      lf::kPi(lf::principalType(),
              lf::kPi(FileTy, lf::kPi(lf::natType(), lf::kProp())))));
  // use : forall K:principal. forall f:file. forall n:nat.
  //         may-write K f -o may-write-this K f n.
  logic::PropPtr UseRule = logic::pForall(
      lf::principalType(),
      logic::pForall(
          FileTy,
          logic::pForall(
              lf::natType(),
              logic::pLolli(
                  logic::pAtom(lf::tApps(lf::tConst(V.MayWrite),
                                         {lf::var(2), lf::var(1)})),
                  logic::pAtom(lf::tApps(
                      lf::tConst(V.MayWriteThis),
                      {lf::var(2), lf::var(1), lf::var(0)}))))));
  Check(Out.declareProp(V.Use, UseRule));
  return V;
}

logic::PropPtr mayWrite(const AuthVocab &V, const crypto::KeyId &K,
                        const lf::ConstName &File) {
  return logic::pAtom(lf::tApps(
      lf::tConst(V.MayWrite),
      {lf::principal(K.toHex()), lf::constant(File)}));
}

logic::PropPtr mayWriteThis(const AuthVocab &V, const crypto::KeyId &K,
                            const lf::ConstName &File, uint64_t Nonce) {
  return logic::pAtom(lf::tApps(
      lf::tConst(V.MayWriteThis),
      {lf::principal(K.toHex()), lf::constant(File), lf::nat(Nonce)}));
}

uint64_t AuthServer::requestWriteNonce(const crypto::KeyId &Writer) {
  uint64_t Nonce = NextNonce++;
  IssuedNonces[Nonce] = Writer;
  return Nonce;
}

Status AuthServer::submitWrite(const crypto::KeyId &Writer,
                               const std::string &Txid,
                               uint32_t OutputIndex, uint64_t Nonce,
                               const std::string &Content) {
  auto Issued = IssuedNonces.find(Nonce);
  if (Issued == IssuedNonces.end() || !(Issued->second == Writer))
    return makeError("auth: nonce was not issued to this writer");
  if (UsedNonces.count(Nonce))
    return makeError("auth: nonce already used");

  // The committing transaction must be confirmed (Section 2, item 6).
  TC_UNWRAP(Id, tc::txidFromHex(Txid));
  int Confs = Node.chain().confirmations(Id);
  if (Confs < MinConfirmations)
    return makeError("auth: transaction has " + std::to_string(Confs) +
                     " confirmations, needs " +
                     std::to_string(MinConfirmations));

  // The txout must carry exactly may-write-this(writer, homework, n).
  logic::PropPtr Actual = Node.state().outputType(Txid, OutputIndex);
  logic::PropPtr Expected =
      mayWriteThis(Vocab, Writer, Vocab.Homework, Nonce);
  if (!logic::propEqual(Actual, Expected))
    return makeError("auth: txout has type " + logic::printProp(Actual) +
                     ", expected " + logic::printProp(Expected));

  UsedNonces.insert(Nonce);
  Contents.push_back(Content);
  return Status::success();
}

} // namespace services
} // namespace typecoin
