//===- services/escrow.cpp - Type-checking escrow agents ----------------------===//

#include "services/escrow.h"

#include "obs/metrics.h"

namespace typecoin {
namespace services {

Result<Bytes> EscrowAgent::signIfValid(const tc::Pair &Filled,
                                       const tc::Node &Node,
                                       size_t InputIndex,
                                       std::optional<double> Now) const {
  // A stale view (e.g. the agent sat on the wrong side of a partition)
  // cannot supply trustworthy `spent`/`before` evidence; refuse rather
  // than attest against it.
  static obs::Counter &SignOk = obs::counter("escrow.sign.ok");
  static obs::Counter &RefusedStale =
      obs::counter("escrow.sign.refused.stale");
  static obs::Counter &RefusedInvalid =
      obs::counter("escrow.sign.refused.invalid");
  if (StalenessHorizon > 0 && Now) {
    double TipAge = *Now - static_cast<double>(Node.chain().tipTime());
    if (TipAge > StalenessHorizon) {
      RefusedStale.inc();
      return makeError("escrow: chain tip is " +
                       std::to_string(static_cast<long long>(TipAge)) +
                       "s old, beyond the staleness horizon of " +
                       std::to_string(
                           static_cast<long long>(StalenessHorizon)) +
                       "s; refusing to sign");
    }
  }
  // Every remaining early return is a policy refusal; count it on the
  // way out unless the signature was actually produced.
  struct RefusalGuard {
    obs::Counter &Ok;
    obs::Counter &Refused;
    bool Signed = false;
    ~RefusalGuard() { (Signed ? Ok : Refused).inc(); }
  } Guard{SignOk, RefusedInvalid};

  // Policy: the instance must correspond to its carrier and typecheck
  // against the current chain state.
  TC_TRY(tc::checkCorrespondence(Filled.Tc, Filled.Btc));
  tc::ChainOracle Oracle(Node.chain(), Node.chain().tipTime());
  if (auto R = Node.state().checkTransaction(Filled.Tc, Oracle); !R)
    return R.takeError().withContext("escrow policy");

  if (InputIndex >= Filled.Btc.Inputs.size())
    return makeError("escrow: input index out of range");
  const bitcoin::Coin *C =
      Node.chain().utxo().find(Filled.Btc.Inputs[InputIndex].Prevout);
  if (!C)
    return makeError("escrow: spent txout not found");
  TC_UNWRAP(Hash, bitcoin::signatureHash(Filled.Btc, InputIndex,
                                         C->Out.ScriptPubKey,
                                         bitcoin::SIGHASH_ALL));
  Bytes Sig = Key.sign(Hash).toDER();
  Sig.push_back(bitcoin::SIGHASH_ALL);
  Guard.Signed = true;
  return Sig;
}

bitcoin::Script
escrowPoolScript(int Required,
                 const std::vector<const EscrowAgent *> &Pool) {
  std::vector<Bytes> Keys;
  Keys.reserve(Pool.size());
  for (const EscrowAgent *Agent : Pool)
    Keys.push_back(Agent->publicKey().serialize());
  return bitcoin::makeMultiSig(Required, Keys);
}

Result<bitcoin::Script>
assembleMultisig(const bitcoin::Script &ScriptPubKey,
                 const std::vector<std::pair<Bytes, Bytes>> &KeySigs) {
  bitcoin::SolvedScript Solved = bitcoin::solveScript(ScriptPubKey);
  if (Solved.Kind != bitcoin::TxOutKind::MultiSig)
    return makeError("escrow: not a multisig script");

  bitcoin::Script Out;
  Out.op(bitcoin::OP_0); // CHECKMULTISIG dummy.
  int Added = 0;
  for (const Bytes &Key : Solved.Data) {
    for (const auto &[SigKey, Sig] : KeySigs) {
      if (SigKey == Key) {
        Out.push(Sig);
        ++Added;
        break;
      }
    }
    if (Added == Solved.Required)
      break;
  }
  if (Added < Solved.Required)
    return makeError("escrow: only " + std::to_string(Added) + " of " +
                     std::to_string(Solved.Required) +
                     " required signatures supplied");
  return Out;
}

} // namespace services
} // namespace typecoin
