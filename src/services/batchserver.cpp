//===- services/batchserver.cpp - Batch-mode credential server ----------------===//

#include "services/batchserver.h"

#include "analysis/lint.h"
#include "analysis/symcheck.h"
#include "obs/metrics.h"
#include "store/chainstore.h"
#include "support/threadpool.h"

namespace typecoin {
namespace services {

/// Obs probes for the batch server: ledger/deferred-queue sizes as
/// gauges, write-through outcomes as counters, and submission (flush)
/// latency as a histogram.
namespace {
struct BatchMetrics {
  obs::Gauge &LedgerSize = obs::gauge("batch.ledger.size");
  obs::Gauge &DeferredSize = obs::gauge("batch.deferred.size");
  obs::Counter &WriteOk = obs::counter("batch.writethrough.ok");
  obs::Counter &WriteDeferred = obs::counter("batch.writethrough.deferred");
  obs::Counter &WriteRejected = obs::counter("batch.writethrough.rejected");
  obs::Counter &RetryFlushed = obs::counter("batch.retry.flushed");
  obs::Histogram &SubmitNs = obs::latencyHistogram("batch.submit_ns");

  static BatchMetrics &get() {
    static BatchMetrics M;
    return M;
  }
};
} // namespace

Status BatchServer::registerDeposit(const std::string &Txid, uint32_t Index,
                                    const crypto::KeyId &Owner) {
  // The txout must exist, be confirmed, and be typed.
  TC_UNWRAP(Id, tc::txidFromHex(Txid));
  if (Node.chain().confirmations(Id) < 1)
    return makeError("batch: deposit transaction is unconfirmed");
  logic::PropPtr Type = Node.state().outputType(Txid, Index);
  if (Type->Kind == logic::Prop::Tag::One)
    return makeError("batch: txout carries no Typecoin resource");
  if (Node.state().isConsumed(Txid, Index))
    return makeError("batch: txout already consumed");
  auto Amount = Node.state().outputAmount(Txid, Index);

  // It must actually be locked by the server's key.
  const bitcoin::Transaction *Btc = Node.chain().findTransaction(Id);
  if (!Btc || Index >= Btc->Outputs.size())
    return makeError("batch: txout not found on chain");
  bitcoin::SolvedScript Solved =
      bitcoin::solveScript(Btc->Outputs[Index].ScriptPubKey);
  bool Ours = false;
  auto SelfId = serverId();
  if (Solved.Kind == bitcoin::TxOutKind::PubKeyHash)
    Ours = Solved.Data[0] == Bytes(SelfId.Hash.begin(), SelfId.Hash.end());
  else if (Solved.Kind == bitcoin::TxOutKind::MultiSig)
    for (const Bytes &Key : Solved.Data)
      Ours = Ours || Key == serverKey().serialize();
  if (!Ours)
    return makeError("batch: deposit txout is not locked to the server");

  Entry E;
  E.Type = Type;
  E.Amount = Amount.value_or(0);
  E.Owner = Owner;
  Ledger[{Txid, Index}] = std::move(E);
  BatchMetrics::get().LedgerSize.set(static_cast<int64_t>(Ledger.size()));
  return Status::success();
}

Status BatchServer::transfer(const std::string &Txid, uint32_t Index,
                             const crypto::KeyId &From,
                             const crypto::KeyId &To) {
  auto It = Ledger.find({Txid, Index});
  if (It == Ledger.end())
    return makeError("batch: no such held resource");
  if (!(It->second.Owner == From))
    return makeError("batch: transfer not authorized by the owner");
  It->second.Owner = To;
  return Status::success();
}

bool BatchServer::holdsResource(const crypto::KeyId &Owner,
                                const logic::PropPtr &Type) const {
  for (const auto &[Anchor, E] : Ledger)
    if (E.Owner == Owner && logic::propEqual(E.Type, Type))
      return true;
  return false;
}

Result<bool> BatchServer::verifyResource(const std::string &Txid,
                                         uint32_t Index,
                                         const logic::PropPtr &Type) const {
  // Own records first.
  auto It = Ledger.find({Txid, Index});
  if (It != Ledger.end())
    return logic::propEqual(It->second.Type, Type);

  // Otherwise the blockchain: the txout must exist, be confirmed, carry
  // the claimed registered type, and be unspent.
  TC_UNWRAP(Id, tc::txidFromHex(Txid));
  if (Node.chain().confirmations(Id) < 1)
    return makeError("batch: transaction is not confirmed");
  if (Node.state().isConsumed(Txid, Index))
    return false;
  return logic::propEqual(Node.state().outputType(Txid, Index), Type);
}

std::vector<Result<bool>>
BatchServer::verifyResources(const std::vector<ResourceClaim> &Claims) const {
  static obs::Counter &Queries = obs::counter("batch.verify.count");
  Queries.inc(Claims.size());
  std::vector<Result<bool>> Results(Claims.size(), Result<bool>(false));
  auto One = [&](size_t I) {
    Results[I] =
        verifyResource(Claims[I].Txid, Claims[I].Index, Claims[I].Type);
  };
  ThreadPool *Pool = ThreadPool::shared();
  if (Pool && Claims.size() > 1)
    Pool->parallelFor(Claims.size(), One);
  else
    for (size_t I = 0; I < Claims.size(); ++I)
      One(I);
  return Results;
}

Result<std::string>
BatchServer::withdraw(const std::string &Txid, uint32_t Index,
                      const crypto::PublicKey &Receiver) {
  auto It = Ledger.find({Txid, Index});
  if (It == Ledger.end())
    return makeError("batch: no such held resource");
  if (!(It->second.Owner == Receiver.id()))
    return makeError("batch: receiver is not the recorded owner");

  tc::Transaction T;
  tc::Input In;
  In.SourceTxid = Txid;
  In.SourceIndex = Index;
  In.Type = It->second.Type;
  In.Amount = It->second.Amount;
  T.Inputs.push_back(std::move(In));
  tc::Output Out;
  Out.Type = It->second.Type;
  Out.Amount = It->second.Amount;
  Out.Owner = Receiver;
  T.Outputs.push_back(std::move(Out));
  TC_UNWRAP(Proof, tc::makeRoutingProof(T));
  T.Proof = Proof;

  TC_UNWRAP(P, tc::buildPair(T, ServerWallet, Node.chain()));
  TC_TRY(Node.submitPair(P));
  ++OnChainTxs;
  Ledger.erase(It);
  BatchMetrics::get().LedgerSize.set(static_cast<int64_t>(Ledger.size()));
  return tc::txidHex(P.Btc);
}

void BatchServer::persistDeferred(const tc::Transaction &T) {
  store::ChainStore *S = Node.store();
  if (!S)
    return;
  // A deferred write-through is a durable obligation (Section 5: it
  // must reach the blockchain); journal it so a crash cannot drop it.
  // WAL failure is counted, not fatal — the in-memory queue still
  // drains it if the process survives.
  if (!S->appendWal(store::WalKind::DeferredAdd, toHex(T.hash()),
                    T.serialize())) {
    static obs::Counter &Failed = obs::counter("batch.deferred.wal_failed");
    Failed.inc();
  }
}

void BatchServer::resolveDeferred(const tc::Transaction &T) {
  store::ChainStore *S = Node.store();
  if (!S)
    return;
  if (!S->appendWal(store::WalKind::DeferredDone, toHex(T.hash()),
                    Bytes())) {
    static obs::Counter &Failed = obs::counter("batch.deferred.wal_failed");
    Failed.inc();
  }
}

size_t BatchServer::recoverDeferred() {
  store::ChainStore *S = Node.store();
  if (!S)
    return 0;
  Deferred.clear();
  for (const auto &[Key, Payload] : S->liveDeferred()) {
    (void)Key;
    auto T = tc::Transaction::deserialize(Payload);
    if (!T) {
      static obs::Counter &Bad = obs::counter("batch.deferred.bad_records");
      Bad.inc();
      continue;
    }
    DeferredWrite D;
    D.T = T.takeValue();
    D.Attempts = 0;
    D.NextRetryTime = 0; // Eligible at the next retryPending.
    Deferred.push_back(std::move(D));
  }
  BatchMetrics::get().DeferredSize.set(static_cast<int64_t>(Deferred.size()));
  return Deferred.size();
}

Result<std::string> BatchServer::trySubmit(const tc::Transaction &T) {
  obs::ScopedTimer Timer(BatchMetrics::get().SubmitNs);
  TC_UNWRAP(P, tc::buildPair(T, ServerWallet, Node.chain()));
  TC_TRY(Node.submitPair(P));
  ++OnChainTxs;
  return tc::txidHex(P.Btc);
}

Result<std::string>
BatchServer::recordWriteThrough(const tc::Transaction &T) {
  BatchMetrics &M = BatchMetrics::get();
  // Lint before paying the cost of building and signing the Bitcoin
  // carrier; a transaction the node would reject never leaves here, and
  // a lint rejection is permanent — it is not worth deferring.
  if (auto S = analysis::lintGate(T); !S) {
    M.WriteRejected.inc();
    return S.takeError();
  }
  // Opt-in symbolic gate (TYPECOIN_SYMCHECK): the carrier does not
  // exist yet, so this is the dataflow-only overload — it catches a
  // write that consumes an already-consumed resource before we pay for
  // building and signing the carrier.
  if (auto S = analysis::symGate(T, Node.chain()); !S) {
    M.WriteRejected.inc();
    return S.takeError();
  }
  auto Txid = trySubmit(T);
  if (Txid) {
    M.WriteOk.inc();
    return Txid;
  }
  // Transient failure (funding races, mempool conflicts a reorg will
  // clear): keep the obligation and retry later. Section 5 requires
  // these transactions to reach the blockchain; dropping one silently
  // would fork the server's view from the chain's.
  DeferredWrite D;
  D.T = T;
  D.Attempts = 1;
  D.NextRetryTime = static_cast<double>(Node.chain().tipTime()) +
                    tc::retryDelay(Retry, 1, toHex(T.hash()));
  persistDeferred(T);
  Deferred.push_back(std::move(D));
  M.WriteDeferred.inc();
  M.DeferredSize.set(static_cast<int64_t>(Deferred.size()));
  return Txid.takeError().withContext("batch: write-through deferred");
}

size_t BatchServer::retryPending(double Now) {
  BatchMetrics &M = BatchMetrics::get();
  static obs::Counter &Attempts = obs::counter("batch.retry.attempts");
  static obs::Counter &Exhausted = obs::counter("batch.retry.exhausted");
  size_t Succeeded = 0;
  for (auto It = Deferred.begin(); It != Deferred.end();) {
    if (Now < It->NextRetryTime || It->Attempts >= Retry.MaxAttempts) {
      ++It;
      continue;
    }
    Attempts.inc();
    if (trySubmit(It->T)) {
      resolveDeferred(It->T);
      It = Deferred.erase(It);
      ++Succeeded;
      continue;
    }
    ++It->Attempts;
    if (It->Attempts >= Retry.MaxAttempts)
      Exhausted.inc();
    It->NextRetryTime = Now + tc::retryDelay(Retry, It->Attempts,
                                             toHex(It->T.hash()));
    ++It;
  }
  M.RetryFlushed.inc(Succeeded);
  M.DeferredSize.set(static_cast<int64_t>(Deferred.size()));
  return Succeeded;
}

} // namespace services
} // namespace typecoin
