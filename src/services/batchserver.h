//===- services/batchserver.h - Batch-mode credential server -----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch mode (Section 3.2): "a trusted third-party maintains a
/// credential server that holds Typecoin resources on behalf of other
/// principals. When principals wish to conduct a batch-mode transaction,
/// they notify the server, which records the transaction but does not
/// submit it to the network." Withdrawals route the resource to its
/// owner's key on-chain; deposits send it to the server's key; validity
/// queries are answered "based on its own records, if it holds the
/// resource, or on the blockchain if it does not."
///
/// Per Section 5, "batch-mode servers must write transactions
/// discharging anything other than true through to the blockchain":
/// \ref recordWriteThrough submits such transactions immediately.
///
/// Off-chain entries here are ownership ledger records over deposited
/// resources (the common credential-passing workload); resource-
/// transforming transactions use the write-through path.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_SERVICES_BATCHSERVER_H
#define TYPECOIN_SERVICES_BATCHSERVER_H

#include "typecoin/builder.h"

namespace typecoin {
namespace services {

/// The batch-mode credential server.
class BatchServer {
public:
  BatchServer(tc::Node &Node, uint64_t WalletSeed)
      : Node(Node), ServerWallet(WalletSeed),
        ServerKey(ServerWallet.newKey()) {}

  /// The server's receiving key (clients deposit to this principal).
  const crypto::PublicKey &serverKey() const {
    return ServerKey.publicKey();
  }
  crypto::KeyId serverId() const { return ServerKey.id(); }
  tc::Wallet &wallet() { return ServerWallet; }

  /// Notice a confirmed deposit: output \p Index of \p Txid must be a
  /// Typecoin output owned by the server's key; it enters the ledger
  /// credited to \p Owner.
  Status registerDeposit(const std::string &Txid, uint32_t Index,
                         const crypto::KeyId &Owner);

  /// Off-chain transfer: reassign a held resource to a new owner. Only
  /// the current owner may transfer (the caller authenticates clients).
  Status transfer(const std::string &Txid, uint32_t Index,
                  const crypto::KeyId &From, const crypto::KeyId &To);

  /// Does the server hold a resource of this type for this principal?
  /// (The validity query of Section 3.2, answered from the records.)
  bool holdsResource(const crypto::KeyId &Owner,
                     const logic::PropPtr &Type) const;

  /// The full validity query of Section 3.2: "the batch-mode server ...
  /// answers based on its own records, if it holds the resource, or on
  /// the blockchain if it does not." Checks that output \p Index of
  /// \p Txid carries \p Type and is unconsumed — first in the ledger,
  /// then against the node's registered Typecoin state.
  Result<bool> verifyResource(const std::string &Txid, uint32_t Index,
                              const logic::PropPtr &Type) const;

  /// One validity query of a batch of claims.
  struct ResourceClaim {
    std::string Txid;
    uint32_t Index = 0;
    logic::PropPtr Type;
  };

  /// Answer a batch of validity queries, fanned across the shared
  /// TYPECOIN_PAR_VERIFY worker pool when it is enabled (each claim only
  /// reads the ledger, chain, and typecoin state). Results align
  /// positionally with \p Claims and are identical to calling
  /// verifyResource per claim. The caller must not mutate the server or
  /// node concurrently.
  std::vector<Result<bool>>
  verifyResources(const std::vector<ResourceClaim> &Claims) const;

  /// Withdraw: submit an on-chain routing transaction sending the held
  /// resource to \p Receiver (which must match the ledger owner). One
  /// Bitcoin transaction regardless of how many off-chain transfers
  /// preceded it — the fee amortization of Section 3.2. Returns the new
  /// Bitcoin txid; the resource leaves the ledger once confirmed.
  Result<std::string> withdraw(const std::string &Txid, uint32_t Index,
                               const crypto::PublicKey &Receiver);

  /// Write-through: a full Typecoin transaction that must go to the
  /// blockchain immediately (any transaction discharging a non-`true`
  /// condition; Section 5). Returns the Bitcoin txid. A transiently
  /// unsubmittable transaction (funding or mempool conflicts during
  /// reorg churn) is not lost: it joins a deferred queue that
  /// \ref retryPending drains with bounded exponential backoff; only a
  /// lint rejection — which the node is guaranteed to repeat — fails
  /// without deferral.
  Result<std::string> recordWriteThrough(const tc::Transaction &T);

  /// Retry deferred write-throughs whose backoff deadline passed at
  /// \p Now (seconds, block-timestamp clock). Each retry rebuilds the
  /// Bitcoin carrier against the current chain. Returns how many
  /// submissions succeeded.
  size_t retryPending(double Now);

  /// Reload the deferred queue from the node's durable store (the
  /// snapshot's deferred set folded with the WAL). Call after a crash
  /// restart, once the node's store is open; entries re-enter the queue
  /// eligible at the next \ref retryPending. Returns how many were
  /// restored. No-op (0) without a store.
  size_t recoverDeferred();

  /// Write-throughs waiting in the deferred queue.
  size_t deferredCount() const { return Deferred.size(); }

  void setRetryPolicy(const tc::RetryPolicy &P) { Retry = P; }

  /// Number of ledger entries.
  size_t ledgerSize() const { return Ledger.size(); }

  /// Total on-chain transactions this server has submitted (the fee
  /// counter for experiment T2).
  size_t onChainTxCount() const { return OnChainTxs; }

private:
  struct Entry {
    logic::PropPtr Type;
    bitcoin::Amount Amount = 0;
    crypto::KeyId Owner;
  };

  struct DeferredWrite {
    tc::Transaction T;
    int Attempts = 0;
    double NextRetryTime = 0;
  };

  Result<std::string> trySubmit(const tc::Transaction &T);
  /// WAL a deferred write-through (durable obligation; Section 5).
  void persistDeferred(const tc::Transaction &T);
  /// WAL the resolution of a deferred write-through.
  void resolveDeferred(const tc::Transaction &T);

  tc::Node &Node;
  tc::Wallet ServerWallet;
  crypto::PrivateKey ServerKey;
  /// Ledger keyed by the anchoring on-chain txout.
  std::map<std::pair<std::string, uint32_t>, Entry> Ledger;
  size_t OnChainTxs = 0;
  std::vector<DeferredWrite> Deferred;
  tc::RetryPolicy Retry;
};

} // namespace services
} // namespace typecoin

#endif // TYPECOIN_SERVICES_BATCHSERVER_H
