//===- services/authserver.h - Proof-carrying-authorization server -*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running proof-carrying-authorization example (Section 2):
/// a fileserver that performs a write only after the writer commits a
/// single-use credential on the blockchain.
///
///   "Bob submits the write to the file system, which replies with a
///    nonce n. Bob then submits a Typecoin transaction that alters his
///    credential to include the nonce:
///      may-write(Bob, homework) -o may-write-this(Bob, homework, n)
///    Once the filesystem sees the nonce in a confirmed transaction, it
///    recognizes that Bob has committed to the write, so it performs it."
///
/// The vocabulary (`file`, `may-write`, `may-write-this`, and the
/// nonce-infusing rule `use`) is published as a basis in a setup
/// transaction; \ref authBasis builds it.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_SERVICES_AUTHSERVER_H
#define TYPECOIN_SERVICES_AUTHSERVER_H

#include "typecoin/builder.h"

#include <set>

namespace typecoin {
namespace services {

/// Labels of the constants the auth basis declares (all `this.*` until
/// the setup transaction confirms).
struct AuthVocab {
  lf::ConstName File;         ///< file : type
  lf::ConstName Homework;     ///< homework : file
  lf::ConstName MayWrite;     ///< may-write : principal -> file -> prop
  lf::ConstName MayWriteThis; ///< may-write-this : ... -> nat -> prop
  lf::ConstName Use;          ///< forall K, f, n. may-write K f -o
                              ///<   may-write-this K f n

  /// Vocabulary resolved to the setup transaction's id.
  AuthVocab resolved(const std::string &Txid) const;
};

/// Build the authorization basis; returns the vocabulary.
AuthVocab authBasis(logic::Basis &Out);

/// `may-write(K, f)` as a proposition.
logic::PropPtr mayWrite(const AuthVocab &V, const crypto::KeyId &K,
                        const lf::ConstName &File);
/// `may-write-this(K, f, n)`.
logic::PropPtr mayWriteThis(const AuthVocab &V, const crypto::KeyId &K,
                            const lf::ConstName &File, uint64_t Nonce);

/// The fileserver.
class AuthServer {
public:
  AuthServer(tc::Node &Node, AuthVocab Vocab, int MinConfirmations = 6)
      : Node(Node), Vocab(std::move(Vocab)),
        MinConfirmations(MinConfirmations) {}

  /// Step 1 of the protocol: the writer requests a nonce.
  uint64_t requestWriteNonce(const crypto::KeyId &Writer);

  /// Step 2: the writer names a txout claimed to carry
  /// `may-write-this(writer, homework, nonce)`. The server checks that
  /// the transaction is confirmed deeply enough, that the registered
  /// type matches, and that the nonce is the one it issued; then it
  /// performs the write.
  Status submitWrite(const crypto::KeyId &Writer, const std::string &Txid,
                     uint32_t OutputIndex, uint64_t Nonce,
                     const std::string &Content);

  /// The stored file contents (the observable effect).
  const std::vector<std::string> &fileContents() const { return Contents; }

private:
  tc::Node &Node;
  AuthVocab Vocab;
  int MinConfirmations;
  uint64_t NextNonce = 1;
  std::map<uint64_t, crypto::KeyId> IssuedNonces;
  std::set<uint64_t> UsedNonces;
  std::vector<std::string> Contents;
};

} // namespace services
} // namespace typecoin

#endif // TYPECOIN_SERVICES_AUTHSERVER_H
