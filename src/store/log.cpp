//===- store/log.cpp - Checksummed append-only record log -----------------===//

#include "store/log.h"

#include <array>

namespace typecoin {
namespace store {

namespace {

constexpr uint32_t FrameMagic = 0x31524354; // 'TCR1' little-endian.
constexpr size_t HeaderSize = 12;
/// Refuse absurd lengths so a corrupt header cannot drive a giant
/// allocation during the scan.
constexpr uint32_t MaxRecordSize = 64u << 20;

uint32_t readU32le(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | static_cast<uint32_t>(P[1]) << 8 |
         static_cast<uint32_t>(P[2]) << 16 | static_cast<uint32_t>(P[3]) << 24;
}

void putU32le(Bytes &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

} // namespace

uint32_t crc32(const uint8_t *Data, size_t Len) {
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ Data[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

Bytes frameRecord(const Bytes &Payload) {
  Bytes Out;
  Out.reserve(HeaderSize + Payload.size());
  putU32le(Out, FrameMagic);
  putU32le(Out, static_cast<uint32_t>(Payload.size()));
  putU32le(Out, crc32(Payload));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

LogScan scanRecords(const Bytes &Data) {
  LogScan S;
  size_t Pos = 0;
  while (Data.size() - Pos >= HeaderSize) {
    const uint8_t *P = Data.data() + Pos;
    uint32_t Magic = readU32le(P);
    uint32_t Len = readU32le(P + 4);
    uint32_t Crc = readU32le(P + 8);
    if (Magic != FrameMagic || Len > MaxRecordSize ||
        Data.size() - Pos - HeaderSize < Len)
      break;
    if (crc32(P + HeaderSize, Len) != Crc)
      break;
    S.Records.emplace_back(P + HeaderSize, P + HeaderSize + Len);
    Pos += HeaderSize + Len;
  }
  S.GoodBytes = Pos;
  S.Tail = Pos < Data.size();
  return S;
}

Status RecordWriter::append(const Bytes &Payload) {
  if (Poisoned)
    return makeError("record log: poisoned by earlier write failure");
  Bytes Frame = frameRecord(Payload);
  Status W = File->append(Frame);
  if (!W) {
    // A partial frame may have landed; cut back to the last boundary so
    // the file stays scannable. If even that fails the file handle is
    // unusable and we fail every later append fast.
    if (!File->truncate(GoodBytes))
      Poisoned = true;
    return W;
  }
  GoodBytes += Frame.size();
  return Status::success();
}

Status RecordWriter::sync() {
  if (Poisoned)
    return makeError("record log: poisoned by earlier write failure");
  return File->sync();
}

Status RecordWriter::reset() {
  if (Poisoned)
    return makeError("record log: poisoned by earlier write failure");
  TC_TRY(File->truncate(0));
  GoodBytes = 0;
  return File->sync();
}

Result<OpenedLog> openLog(Vfs &V, const std::string &Path) {
  TC_UNWRAP(F, V.open(Path, /*Create=*/true));
  TC_UNWRAP(Data, F->readAll());
  OpenedLog L;
  L.Scan = scanRecords(Data);
  if (L.Scan.Tail)
    TC_TRY(F->truncate(L.Scan.GoodBytes));
  L.Writer.reset(new RecordWriter(std::move(F), L.Scan.GoodBytes));
  return L;
}

} // namespace store
} // namespace typecoin
