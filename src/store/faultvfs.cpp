//===- store/faultvfs.cpp - Fault-injecting VFS wrapper -------------------===//

#include "store/faultvfs.h"

#include "support/strings.h"

namespace typecoin {
namespace store {

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Clean:
    return "clean";
  case FaultKind::Torn:
    return "torn";
  case FaultKind::Corrupt:
    return "corrupt";
  case FaultKind::FsyncLie:
    return "fsynclie";
  case FaultKind::Enospc:
    return "enospc";
  case FaultKind::Short:
    return "short";
  }
  return "?";
}

Result<StoreFaultPlan> parseFaultPlan(const std::string &Spec) {
  size_t At = Spec.find('@');
  if (At == std::string::npos)
    return makeError("fault plan '" + Spec + "': expected <kind>@<op>[:seed]");
  std::string KindName = Spec.substr(0, At);
  std::string Rest = Spec.substr(At + 1);
  StoreFaultPlan P;
  bool Known = false;
  for (FaultKind K : {FaultKind::Clean, FaultKind::Torn, FaultKind::Corrupt,
                      FaultKind::FsyncLie, FaultKind::Enospc,
                      FaultKind::Short}) {
    if (KindName == faultKindName(K)) {
      P.Kind = K;
      Known = true;
      break;
    }
  }
  if (!Known)
    return makeError("fault plan '" + Spec + "': unknown kind '" + KindName +
                     "'");
  size_t Colon = Rest.find(':');
  std::string OpStr = Rest.substr(0, Colon);
  try {
    P.TriggerOp = std::stoull(OpStr);
    if (Colon != std::string::npos)
      P.Seed = std::stoull(Rest.substr(Colon + 1));
  } catch (const std::exception &) {
    return makeError("fault plan '" + Spec + "': bad number");
  }
  return P;
}

FaultVfs::Gate FaultVfs::gate(bool IsSync, Status &Err) {
  if (Crashed) {
    Err = makeError("vfs: simulated power loss");
    return Gate::Fail;
  }
  if (Plan.Kind == FaultKind::FsyncLie && IsSync) {
    // The lying disk acknowledges every fsync without persisting.
    // Syncs still count as crash points below.
    ++Ops;
    if (Plan.TriggerOp != 0 && Ops == Plan.TriggerOp) {
      Crashed = true;
      Err = makeError("vfs: simulated power loss");
      return Gate::Fail;
    }
    return Gate::LieOk;
  }
  ++Ops;
  if (Plan.TriggerOp == 0 || Ops != Plan.TriggerOp)
    return Gate::Proceed;
  switch (Plan.Kind) {
  case FaultKind::Clean:
  case FaultKind::Torn:
  case FaultKind::Corrupt:
  case FaultKind::FsyncLie:
    Crashed = true;
    Err = makeError("vfs: simulated power loss");
    return Gate::Fail;
  case FaultKind::Enospc:
    if (FaultSpent)
      return Gate::Proceed;
    FaultSpent = true;
    Err = makeError("vfs: no space left on device");
    return Gate::Fail;
  case FaultKind::Short:
    // Handled by FaultFile::append (needs the data); other ops treat a
    // short fault like a transient failure.
    if (FaultSpent)
      return Gate::Proceed;
    FaultSpent = true;
    Err = makeError("vfs: short write");
    return Gate::Fail;
  }
  return Gate::Proceed;
}

void FaultVfs::powerLoss() {
  Crashed = true;
  if (Mem)
    Mem->crash(CrashOpt);
}

// Named (not anonymous) namespace so the friend declaration in
// FaultVfs binds.
class FaultFile : public VfsFile {
public:
  FaultFile(VfsFilePtr Inner, FaultVfs &Owner, std::string Path)
      : Inner(std::move(Inner)), Owner(Owner), Path(std::move(Path)) {}

  Result<size_t> size() override {
    if (Owner.crashed())
      return makeError("vfs: simulated power loss");
    return Inner->size();
  }

  Status append(const uint8_t *Data, size_t Len) override {
    if (Owner.crashed())
      return makeError("vfs: simulated power loss");
    const StoreFaultPlan &Plan = Owner.plan();
    bool AtTrigger =
        Plan.TriggerOp != 0 && Owner.Ops + 1 == Plan.TriggerOp &&
        Plan.Kind != FaultKind::FsyncLie;
    if (AtTrigger &&
        (Plan.Kind == FaultKind::Torn || Plan.Kind == FaultKind::Corrupt)) {
      // A seeded prefix of the in-flight write reaches the file before
      // the power cut. The tail is unsynced, so it survives the crash
      // only if MemVfs::crash is told to keep it (torn sector).
      ++Owner.Ops;
      Owner.Crashed = true;
      Rng R(Plan.Seed);
      size_t Keep = Len == 0 ? 0 : R.nextBelow(Len);
      if (Keep > 0)
        (void)Inner->append(Data, Keep);
      Owner.CrashOpt.KeepUnsyncedPath = Path;
      Owner.CrashOpt.FlipBitInTail = Plan.Kind == FaultKind::Corrupt;
      return makeError("vfs: simulated power loss");
    }
    if (AtTrigger && Plan.Kind == FaultKind::Short && !Owner.FaultSpent) {
      // Half the data lands, then the write errors; the process lives
      // on and must repair the partial record.
      ++Owner.Ops;
      Owner.FaultSpent = true;
      if (Len / 2 > 0)
        (void)Inner->append(Data, Len / 2);
      return makeError("vfs: short write");
    }
    Status Err = Status::success();
    switch (Owner.gate(/*IsSync=*/false, Err)) {
    case FaultVfs::Gate::Fail:
      return Err;
    case FaultVfs::Gate::LieOk:
    case FaultVfs::Gate::Proceed:
      break;
    }
    return Inner->append(Data, Len);
  }

  Result<Bytes> readAll() override {
    if (Owner.crashed())
      return makeError("vfs: simulated power loss");
    return Inner->readAll();
  }

  Status truncate(size_t NewSize) override {
    Status Err = Status::success();
    switch (Owner.gate(/*IsSync=*/false, Err)) {
    case FaultVfs::Gate::Fail:
      return Err;
    case FaultVfs::Gate::LieOk:
    case FaultVfs::Gate::Proceed:
      break;
    }
    return Inner->truncate(NewSize);
  }

  Status sync() override {
    Status Err = Status::success();
    switch (Owner.gate(/*IsSync=*/true, Err)) {
    case FaultVfs::Gate::Fail:
      return Err;
    case FaultVfs::Gate::LieOk:
      return Status::success();
    case FaultVfs::Gate::Proceed:
      break;
    }
    return Inner->sync();
  }

private:
  VfsFilePtr Inner;
  FaultVfs &Owner;
  std::string Path;
};

Result<VfsFilePtr> FaultVfs::open(const std::string &Path, bool Create) {
  if (Crashed)
    return makeError("vfs: simulated power loss");
  if (Create) {
    // Creating a file is a namespace mutation: a crash point.
    TC_UNWRAP(Exists, Inner.exists(Path));
    if (!Exists) {
      Status Err = Status::success();
      switch (gate(/*IsSync=*/false, Err)) {
      case Gate::Fail:
        return Err.takeError();
      case Gate::LieOk:
      case Gate::Proceed:
        break;
      }
    }
  }
  TC_UNWRAP(F, Inner.open(Path, Create));
  return VfsFilePtr(new FaultFile(std::move(F), *this, Path));
}

Result<bool> FaultVfs::exists(const std::string &Path) {
  if (Crashed)
    return makeError("vfs: simulated power loss");
  return Inner.exists(Path);
}

Status FaultVfs::remove(const std::string &Path) {
  Status Err = Status::success();
  switch (gate(/*IsSync=*/false, Err)) {
  case Gate::Fail:
    return Err;
  case Gate::LieOk:
  case Gate::Proceed:
    break;
  }
  return Inner.remove(Path);
}

Status FaultVfs::rename(const std::string &From, const std::string &To) {
  Status Err = Status::success();
  switch (gate(/*IsSync=*/false, Err)) {
  case Gate::Fail:
    return Err;
  case Gate::LieOk:
  case Gate::Proceed:
    break;
  }
  return Inner.rename(From, To);
}

Status FaultVfs::mkdirs(const std::string &Dir) {
  if (Crashed)
    return makeError("vfs: simulated power loss");
  return Inner.mkdirs(Dir);
}

Result<std::vector<std::string>> FaultVfs::list(const std::string &Dir) {
  if (Crashed)
    return makeError("vfs: simulated power loss");
  return Inner.list(Dir);
}

Status FaultVfs::syncDir(const std::string &Dir) {
  Status Err = Status::success();
  switch (gate(/*IsSync=*/true, Err)) {
  case Gate::Fail:
    return Err;
  case Gate::LieOk:
    return Status::success();
  case Gate::Proceed:
    break;
  }
  return Inner.syncDir(Dir);
}

} // namespace store
} // namespace typecoin
