//===- store/vfs.h - Virtual filesystem for durable state -------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage layer's I/O boundary: a small virtual-filesystem
/// abstraction that every durable-state write goes through. Three
/// backends:
///
///  * \ref PosixVfs — the real thing: fd-based appends, `fsync`,
///    `rename`, directory syncs.
///  * \ref MemVfs — an in-memory filesystem that *models durability
///    honestly*: every file tracks its last-synced content separately
///    from its current content, and renames stay provisional until the
///    containing directory is synced. \ref MemVfs::crash rewinds the
///    filesystem to exactly what a power loss would leave behind.
///  * \ref FaultVfs (store/faultvfs.h) — a wrapper injecting torn
///    writes, short writes, fsync lies, ENOSPC, and crash points at
///    every I/O boundary.
///
/// The chainstate engine (store/chainstore.h) is written against this
/// interface only, so the crash matrix in tests/store can prove its
/// recovery invariants against the simulated backends and the same code
/// runs unmodified on the POSIX one.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_STORE_VFS_H
#define TYPECOIN_STORE_VFS_H

#include "support/bytes.h"
#include "support/result.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace typecoin {
namespace store {

/// An open file handle. Append-oriented: the log formats built on top
/// never overwrite in place, they append, truncate (torn-tail repair),
/// and sync.
class VfsFile {
public:
  virtual ~VfsFile() = default;

  virtual Result<size_t> size() = 0;
  virtual Status append(const uint8_t *Data, size_t Len) = 0;
  Status append(const Bytes &Data) {
    return append(Data.data(), Data.size());
  }
  virtual Result<Bytes> readAll() = 0;
  virtual Status truncate(size_t NewSize) = 0;
  /// Make everything written so far durable (fsync).
  virtual Status sync() = 0;
};

using VfsFilePtr = std::unique_ptr<VfsFile>;

/// The filesystem interface.
class Vfs {
public:
  virtual ~Vfs() = default;

  /// Open \p Path, creating it when \p Create is set; fails on a
  /// missing file otherwise.
  virtual Result<VfsFilePtr> open(const std::string &Path, bool Create) = 0;
  virtual Result<bool> exists(const std::string &Path) = 0;
  virtual Status remove(const std::string &Path) = 0;
  /// Atomic replace: \p To refers to the old content or the new one,
  /// never a mixture. Durable only after \ref syncDir on the parent.
  virtual Status rename(const std::string &From, const std::string &To) = 0;
  virtual Status mkdirs(const std::string &Dir) = 0;
  virtual Result<std::vector<std::string>> list(const std::string &Dir) = 0;
  /// Make namespace operations (creates, renames, removes) under
  /// \p Dir durable.
  virtual Status syncDir(const std::string &Dir) = 0;
};

/// The directory component of \p Path ("." when it has none).
std::string dirnameOf(const std::string &Path);

/// Crash-safe whole-file replace: write \p Data to `Path + ".tmp"`,
/// sync it, rename over \p Path, and sync the directory. A crash at any
/// point leaves either the old complete file or the new complete file.
Status writeFileAtomic(Vfs &V, const std::string &Path, const Bytes &Data);

/// Read an entire file (convenience over open + readAll).
Result<Bytes> readFileAll(Vfs &V, const std::string &Path);

/// The real POSIX backend.
class PosixVfs : public Vfs {
public:
  Result<VfsFilePtr> open(const std::string &Path, bool Create) override;
  Result<bool> exists(const std::string &Path) override;
  Status remove(const std::string &Path) override;
  Status rename(const std::string &From, const std::string &To) override;
  Status mkdirs(const std::string &Dir) override;
  Result<std::vector<std::string>> list(const std::string &Dir) override;
  Status syncDir(const std::string &Dir) override;
};

/// What a power loss preserves beyond the synced prefix of each file
/// (see \ref MemVfs::crash).
struct CrashOptions {
  /// Keep this file's *unsynced* content too — the torn-write case,
  /// where the in-flight data partially reached the platter. Empty:
  /// every file rewinds to its synced content.
  std::string KeepUnsyncedPath;
  /// Flip one bit in the kept unsynced tail (bit-rot on the torn
  /// sector). Only meaningful with KeepUnsyncedPath.
  bool FlipBitInTail = false;
};

/// An in-memory filesystem with honest durability semantics. Not
/// thread-safe (the chainstate engine serializes its I/O).
class MemVfs : public Vfs {
public:
  Result<VfsFilePtr> open(const std::string &Path, bool Create) override;
  Result<bool> exists(const std::string &Path) override;
  Status remove(const std::string &Path) override;
  Status rename(const std::string &From, const std::string &To) override;
  Status mkdirs(const std::string &Dir) override;
  Result<std::vector<std::string>> list(const std::string &Dir) override;
  Status syncDir(const std::string &Dir) override;

  /// Simulate a power loss: every file rewinds to its last-synced
  /// content (except per \p Opt), and renames not yet covered by a
  /// \ref syncDir are rolled back. Open handles keep working against
  /// the post-crash content (they model a reopened process).
  void crash(const CrashOptions &Opt = {});

  /// Test introspection: the durable (synced) size of a file, or
  /// nullopt when it does not exist.
  std::optional<size_t> durableSize(const std::string &Path) const;

  /// One in-memory file: current content plus the last-synced content.
  struct MemFile {
    Bytes Content;
    Bytes Durable;
  };

private:
  struct PendingRename {
    std::string From;
    std::string To;
    /// The file previously at To (nullptr when To was fresh).
    std::shared_ptr<MemFile> Replaced;
  };

  std::map<std::string, std::shared_ptr<MemFile>> Files;
  std::vector<PendingRename> PendingRenames;
};

} // namespace store
} // namespace typecoin

#endif // TYPECOIN_STORE_VFS_H
