//===- store/chainstore.h - Durable chainstate engine -----------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable chainstate engine (ROADMAP item 1): an append-only block
/// file plus a write-ahead log and epoch-batched snapshots, all written
/// through \ref Vfs so the crash matrix can prove the recovery
/// invariants under injected faults.
///
/// Store directory layout (every file uses the framed record format of
/// store/log.h):
///
///   blocks.log   one record per accepted block: blockHashHex +
///                raw block bytes. Appended as blocks arrive, fsync'd
///                at each flush epoch (blocks are re-derivable from
///                peers, so the unsynced tail is only a convenience).
///   wal.log      one record per journal mutation since the last epoch:
///                kind byte + key + payload. fsync'd per append — the
///                node acknowledges a registration only after its WAL
///                record is durable.
///   epoch.snap   a single record: the epoch header (number, tip,
///                UTXO digest) + full registration journal + deferred
///                write-throughs + serialized UTXO set. Replaced
///                atomically (tmp + rename + dir sync) at each flush
///                epoch; the WAL is truncated only after the new
///                snapshot is durable.
///
/// Recovery = load epoch.snap (if any) + replay blocks.log through the
/// validated connect path + re-apply wal.log. A torn tail on either log
/// truncates cleanly at the last intact record; epoch.snap is either
/// the old or the new complete snapshot, never a mixture.
///
/// The engine stores opaque payload bytes; (de)serialization of pairs,
/// blocks and the UTXO set lives with their owning types
/// (typecoin/persist.h) so this library depends only on support.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_STORE_CHAINSTORE_H
#define TYPECOIN_STORE_CHAINSTORE_H

#include "store/log.h"
#include "store/vfs.h"

#include <set>

namespace typecoin {
namespace store {

/// WAL record kinds.
enum class WalKind : uint8_t {
  PairAdd = 1,      ///< Registration journal insert (key = payload hex).
  DeferredAdd = 2,  ///< Batch server deferred write-through queued.
  DeferredDone = 3, ///< Deferred write-through resolved (payload empty).
};

/// One decoded WAL record.
struct WalRecord {
  WalKind Kind;
  std::string Key;
  Bytes Payload;
};

/// Everything a flush epoch snapshots.
struct EpochData {
  uint64_t Number = 0;
  std::string TipHashHex;
  uint32_t TipHeight = 0;
  /// sha256d over the serialized UTXO set — cross-checked during
  /// assume-valid replay (see Node::openStore).
  std::string UtxoDigestHex;
  std::vector<std::pair<std::string, Bytes>> Journal;
  std::vector<std::pair<std::string, Bytes>> Deferred;
  Bytes Utxo;
};

/// What ChainStore::open found on disk (recovery provenance, surfaced
/// through obs counters and tclint --store).
struct OpenStats {
  bool HadEpoch = false;
  bool EpochCorrupt = false; ///< Snapshot present but undecodable.
  bool BlocksTruncated = false;
  bool WalTruncated = false;
  size_t BlockRecords = 0;
  size_t WalRecords = 0;
};

/// The durable chainstate engine. Not thread-safe: callers (Node) hold
/// their own lock around mutations.
class ChainStore {
public:
  /// Open (creating if needed) the store at \p Dir. Scans and repairs
  /// both logs, decodes the epoch snapshot when present.
  static Result<std::unique_ptr<ChainStore>> open(Vfs &V,
                                                  const std::string &Dir);

  // --- Recovery-time accessors ------------------------------------------

  const OpenStats &openStats() const { return Stats; }
  /// The decoded snapshot, when one was durable.
  const EpochData *epoch() const { return HasEpoch ? &Snap : nullptr; }
  /// Block records in append order: (blockHashHex, raw block bytes).
  const std::vector<std::pair<std::string, Bytes>> &blockRecords() const {
    return BlockRecs;
  }
  /// WAL records since the snapshot, in append order.
  const std::vector<WalRecord> &walRecords() const { return WalRecs; }
  /// Deferred write-throughs live after folding the WAL into the
  /// snapshot's deferred set.
  std::vector<std::pair<std::string, Bytes>> liveDeferred() const;

  // --- Runtime mutations ------------------------------------------------

  /// Append one block record (no fsync; durable at the next epoch).
  /// Duplicate hashes are dropped so reorg re-submissions stay cheap.
  Status appendBlock(const std::string &HashHex, const Bytes &BlockBytes);

  /// Append one WAL record and fsync it; returns only once durable.
  Status appendWal(WalKind Kind, const std::string &Key,
                   const Bytes &Payload);

  /// Flush epoch: sync the block log, atomically replace the snapshot,
  /// then truncate the WAL. A crash between any two steps recovers to
  /// either the previous epoch (plus its WAL) or the new one.
  Status flushEpoch(const EpochData &Data);

  // --- Gauges ------------------------------------------------------------

  uint64_t epochNumber() const { return HasEpoch ? Snap.Number : 0; }
  size_t walBytes() const { return Wal ? Wal->goodBytes() : 0; }
  /// Blocks appended since the last epoch sync.
  size_t dirtyBlocks() const { return DirtyBlocks; }

  static constexpr const char *BlocksFile = "blocks.log";
  static constexpr const char *WalFile = "wal.log";
  static constexpr const char *EpochFile = "epoch.snap";

private:
  ChainStore(Vfs &V, std::string Dir) : V(V), Dir(std::move(Dir)) {}

  std::string path(const char *Name) const { return Dir + "/" + Name; }

  Vfs &V;
  std::string Dir;
  std::unique_ptr<RecordWriter> Blocks;
  std::unique_ptr<RecordWriter> Wal;
  std::vector<std::pair<std::string, Bytes>> BlockRecs;
  std::vector<WalRecord> WalRecs;
  std::set<std::string> KnownBlocks;
  EpochData Snap;
  bool HasEpoch = false;
  OpenStats Stats;
  size_t DirtyBlocks = 0;
};

/// Serialize / decode the snapshot payload (exposed for tclint).
Bytes serializeEpoch(const EpochData &Data);
Result<EpochData> deserializeEpoch(const Bytes &Payload);
/// Decode one WAL record payload.
Result<WalRecord> deserializeWalRecord(const Bytes &Payload);

/// Offline verification for `tclint --store`: scan a store directory
/// without repairing anything and report what a recovery would see.
struct StoreInspection {
  bool DirExists = false;
  bool EpochPresent = false;
  bool EpochCorrupt = false;
  uint64_t EpochNumber = 0;
  std::string TipHashHex;
  uint32_t TipHeight = 0;
  size_t BlockRecords = 0;
  size_t BlockTailBytes = 0; ///< Damaged bytes past the intact prefix.
  size_t WalRecords = 0;
  size_t WalTailBytes = 0;
  size_t UndecodableWalRecords = 0; ///< Intact CRC but bad payload.
  bool TmpLeftover = false; ///< An epoch .tmp survived a crash (benign).
};
Result<StoreInspection> inspectStore(Vfs &V, const std::string &Dir);

} // namespace store
} // namespace typecoin

#endif // TYPECOIN_STORE_CHAINSTORE_H
