//===- store/log.h - Checksummed append-only record log ---------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framing shared by every durable file in the store: a sequence of
/// self-delimiting records, each protected by a CRC32, so a torn tail
/// (the only legal on-disk damage under the durability contract in
/// DESIGN.md) is detected at the exact record boundary and truncated
/// away instead of poisoning the replay.
///
/// Frame layout (all little-endian):
///
///     u32 magic 'TCR1' | u32 payloadLen | u32 crc32(payload) | payload
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_STORE_LOG_H
#define TYPECOIN_STORE_LOG_H

#include "store/vfs.h"
#include "support/bytes.h"
#include "support/result.h"

namespace typecoin {
namespace store {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one).
uint32_t crc32(const uint8_t *Data, size_t Len);
inline uint32_t crc32(const Bytes &Data) {
  return crc32(Data.data(), Data.size());
}

/// Serialize one frame around \p Payload.
Bytes frameRecord(const Bytes &Payload);

/// The outcome of scanning a record log.
struct LogScan {
  std::vector<Bytes> Records;
  /// Bytes of intact frames from the start of the file; anything past
  /// this offset is a torn or corrupt tail.
  size_t GoodBytes = 0;
  /// The file extended past GoodBytes (damage was present).
  bool Tail = false;
};

/// Decode frames from \p Data until the first damaged one.
LogScan scanRecords(const Bytes &Data);

/// Appends framed records to a log file and keeps it repairable: a
/// failed append truncates back to the last intact frame so the file
/// never accumulates a mid-file hole. If even the repair fails the
/// writer poisons itself and every later append fails fast.
class RecordWriter {
public:
  /// \p GoodBytes is the intact prefix found by \ref scanRecords.
  RecordWriter(VfsFilePtr File, size_t GoodBytes)
      : File(std::move(File)), GoodBytes(GoodBytes) {}

  /// Frame and append \p Payload. On I/O failure, truncates the partial
  /// frame away before returning the error.
  Status append(const Bytes &Payload);

  /// fsync the file.
  Status sync();

  /// Bytes of intact frames currently in the file.
  size_t goodBytes() const { return GoodBytes; }

  /// Truncate the log to empty (after its contents were folded into a
  /// durable snapshot) and sync.
  Status reset();

private:
  VfsFilePtr File;
  size_t GoodBytes;
  bool Poisoned = false;
};

/// Open \p Path (creating it), scan it, and truncate any damaged tail
/// so the on-disk file again ends at a frame boundary. Returns the scan
/// plus a writer positioned after the last intact record.
struct OpenedLog {
  LogScan Scan;
  std::unique_ptr<RecordWriter> Writer;
};
Result<OpenedLog> openLog(Vfs &V, const std::string &Path);

} // namespace store
} // namespace typecoin

#endif // TYPECOIN_STORE_LOG_H
