//===- store/faultvfs.h - Fault-injecting VFS wrapper -----------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage-layer sibling of the network `FaultPlan` (bitcoin/
/// network.h): a \ref Vfs wrapper that numbers every state-changing I/O
/// operation as a *crash point* and injects a planned fault at one of
/// them. The crash matrix in tests/store sweeps (crash point × fault
/// kind) and asserts that recovery always reproduces the fingerprint of
/// an uninterrupted twin.
///
/// Fault kinds:
///
///  * Clean    — power loss at the crash point: the op and everything
///               after it fails; unsynced data is gone.
///  * Torn     — like Clean, but a prefix of the in-flight write
///               survives (a torn record the log reader must truncate).
///  * Corrupt  — like Torn, plus a flipped bit in the surviving tail
///               (bit-rot; caught by the per-record checksum).
///  * FsyncLie — every fsync claims success without making anything
///               durable (the infamous lying disk); power loss at the
///               crash point. Recovery can only promise a consistent
///               *prefix* here, never completeness.
///  * Enospc   — the write at the crash point fails (disk full) but the
///               process survives; the engine must surface the error
///               and stay consistent. Power loss only at \ref powerLoss.
///  * Short    — the write at the crash point writes a prefix and
///               fails; the engine must repair (truncate) and stay
///               usable. Power loss only at \ref powerLoss.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_STORE_FAULTVFS_H
#define TYPECOIN_STORE_FAULTVFS_H

#include "store/vfs.h"
#include "support/rng.h"

namespace typecoin {
namespace store {

enum class FaultKind { Clean, Torn, Corrupt, FsyncLie, Enospc, Short };

const char *faultKindName(FaultKind K);

/// The plan for one crash-matrix cell.
struct StoreFaultPlan {
  FaultKind Kind = FaultKind::Clean;
  /// 1-based index of the state-changing op the fault fires at;
  /// 0 = never fire (counting runs).
  uint64_t TriggerOp = 0;
  /// Seed for the torn-prefix length choice.
  uint64_t Seed = 1;
};

/// Parse a `TYPECOIN_STORE_FAULTS` spec: `<kind>@<op>[:<seed>]`, e.g.
/// `torn@17` or `fsynclie@4:99`. Kinds are the lower-case enumerator
/// names.
Result<StoreFaultPlan> parseFaultPlan(const std::string &Spec);

/// A Vfs wrapper injecting the planned fault. Wraps any backend; the
/// power-loss simulation additionally needs the backend to be the
/// \ref MemVfs whose crash() models it.
class FaultVfs : public Vfs {
public:
  explicit FaultVfs(Vfs &Inner, MemVfs *Mem = nullptr)
      : Inner(Inner), Mem(Mem) {}

  void setPlan(const StoreFaultPlan &P) { Plan = P; }
  const StoreFaultPlan &plan() const { return Plan; }

  /// State-changing ops gated so far — the number of crash points this
  /// workload exposes. A counting run (TriggerOp = 0) measures the
  /// matrix dimension.
  uint64_t opCount() const { return Ops; }
  /// Has the planned crash fired (every later op fails)?
  bool crashed() const { return Crashed; }

  /// Simulate the power loss on the wrapped MemVfs: apply the recorded
  /// torn-tail effect and rewind everything unsynced. For Enospc/Short/
  /// FsyncLie cells (where the process survives the fault) this is the
  /// end-of-workload power cut.
  void powerLoss();

  Result<VfsFilePtr> open(const std::string &Path, bool Create) override;
  Result<bool> exists(const std::string &Path) override;
  Status remove(const std::string &Path) override;
  Status rename(const std::string &From, const std::string &To) override;
  Status mkdirs(const std::string &Dir) override;
  Result<std::vector<std::string>> list(const std::string &Dir) override;
  Status syncDir(const std::string &Dir) override;

private:
  friend class FaultFile;

  /// Gate one state-changing op. Returns the action the caller takes.
  enum class Gate { Proceed, Fail, LieOk };
  Gate gate(bool IsSync, Status &Err);

  Vfs &Inner;
  MemVfs *Mem;
  StoreFaultPlan Plan;
  uint64_t Ops = 0;
  bool Crashed = false;
  bool FaultSpent = false; ///< Enospc/Short fire once.
  /// Torn-tail record: which file's unsynced tail survives the crash.
  CrashOptions CrashOpt;
};

} // namespace store
} // namespace typecoin

#endif // TYPECOIN_STORE_FAULTVFS_H
