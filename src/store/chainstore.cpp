//===- store/chainstore.cpp - Durable chainstate engine -------------------===//

#include "store/chainstore.h"

#include "support/serialize.h"

namespace typecoin {
namespace store {

Bytes serializeEpoch(const EpochData &Data) {
  Writer W;
  W.writeU64(Data.Number);
  W.writeString(Data.TipHashHex);
  W.writeU32(Data.TipHeight);
  W.writeString(Data.UtxoDigestHex);
  W.writeCompactSize(Data.Journal.size());
  for (const auto &[Key, Payload] : Data.Journal) {
    W.writeString(Key);
    W.writeVarBytes(Payload);
  }
  W.writeCompactSize(Data.Deferred.size());
  for (const auto &[Key, Payload] : Data.Deferred) {
    W.writeString(Key);
    W.writeVarBytes(Payload);
  }
  W.writeVarBytes(Data.Utxo);
  return W.takeBuffer();
}

Result<EpochData> deserializeEpoch(const Bytes &Payload) {
  Reader R(Payload);
  EpochData Data;
  TC_UNWRAP(Number, R.readU64());
  Data.Number = Number;
  TC_UNWRAP(TipHash, R.readString());
  Data.TipHashHex = TipHash;
  TC_UNWRAP(TipHeight, R.readU32());
  Data.TipHeight = TipHeight;
  TC_UNWRAP(Digest, R.readString());
  Data.UtxoDigestHex = Digest;
  TC_UNWRAP(JournalCount, R.readCompactSize());
  for (uint64_t I = 0; I < JournalCount; ++I) {
    TC_UNWRAP(Key, R.readString());
    TC_UNWRAP(Val, R.readVarBytes());
    Data.Journal.emplace_back(Key, Val);
  }
  TC_UNWRAP(DeferredCount, R.readCompactSize());
  for (uint64_t I = 0; I < DeferredCount; ++I) {
    TC_UNWRAP(Key, R.readString());
    TC_UNWRAP(Val, R.readVarBytes());
    Data.Deferred.emplace_back(Key, Val);
  }
  TC_UNWRAP(Utxo, R.readVarBytes());
  Data.Utxo = Utxo;
  TC_TRY(R.expectEnd());
  return Data;
}

Result<WalRecord> deserializeWalRecord(const Bytes &Payload) {
  Reader R(Payload);
  WalRecord Rec;
  TC_UNWRAP(Kind, R.readU8());
  if (Kind < 1 || Kind > 3)
    return makeError("wal: unknown record kind " + std::to_string(Kind));
  Rec.Kind = static_cast<WalKind>(Kind);
  TC_UNWRAP(Key, R.readString());
  Rec.Key = Key;
  TC_UNWRAP(Val, R.readVarBytes());
  Rec.Payload = Val;
  TC_TRY(R.expectEnd());
  return Rec;
}

namespace {

Bytes encodeBlockRecord(const std::string &HashHex, const Bytes &BlockBytes) {
  Writer W;
  W.writeString(HashHex);
  W.writeVarBytes(BlockBytes);
  return W.takeBuffer();
}

Result<std::pair<std::string, Bytes>> decodeBlockRecord(const Bytes &Payload) {
  Reader R(Payload);
  TC_UNWRAP(HashHex, R.readString());
  TC_UNWRAP(BlockBytes, R.readVarBytes());
  TC_TRY(R.expectEnd());
  return std::make_pair(HashHex, BlockBytes);
}

} // namespace

Result<std::unique_ptr<ChainStore>> ChainStore::open(Vfs &V,
                                                     const std::string &Dir) {
  TC_TRY(V.mkdirs(Dir));
  std::unique_ptr<ChainStore> S(new ChainStore(V, Dir));

  // The epoch snapshot: the durability anchor. Absent on first boot; a
  // crash mid-replace leaves either the old or the new file, so any
  // present file should decode — an undecodable one is bit-rot, which
  // we survive by falling back to from-genesis replay.
  TC_UNWRAP(HaveSnap, V.exists(S->path(EpochFile)));
  if (HaveSnap) {
    TC_UNWRAP(SnapBytes, readFileAll(V, S->path(EpochFile)));
    LogScan Scan = scanRecords(SnapBytes);
    if (Scan.Records.size() == 1 && !Scan.Tail) {
      auto Decoded = deserializeEpoch(Scan.Records[0]);
      if (Decoded) {
        S->Snap = Decoded.takeValue();
        S->HasEpoch = true;
        S->Stats.HadEpoch = true;
      } else {
        S->Stats.EpochCorrupt = true;
      }
    } else {
      S->Stats.EpochCorrupt = true;
    }
  }

  // A leftover epoch.tmp from a crash mid-flush is dead weight.
  const std::string Tmp = S->path(EpochFile) + ".tmp";
  TC_UNWRAP(HaveTmp, V.exists(Tmp));
  if (HaveTmp)
    TC_TRY(V.remove(Tmp));

  TC_UNWRAP(BlocksLog, openLog(V, S->path(BlocksFile)));
  S->Stats.BlocksTruncated = BlocksLog.Scan.Tail;
  for (const Bytes &Rec : BlocksLog.Scan.Records) {
    auto Decoded = decodeBlockRecord(Rec);
    if (!Decoded)
      return Decoded.takeError();
    if (S->KnownBlocks.insert(Decoded->first).second)
      S->BlockRecs.push_back(Decoded.takeValue());
  }
  S->Stats.BlockRecords = S->BlockRecs.size();
  S->Blocks = std::move(BlocksLog.Writer);

  TC_UNWRAP(WalLog, openLog(V, S->path(WalFile)));
  S->Stats.WalTruncated = WalLog.Scan.Tail;
  for (const Bytes &Rec : WalLog.Scan.Records) {
    auto Decoded = deserializeWalRecord(Rec);
    if (!Decoded)
      return Decoded.takeError();
    S->WalRecs.push_back(Decoded.takeValue());
  }
  S->Stats.WalRecords = S->WalRecs.size();
  S->Wal = std::move(WalLog.Writer);

  return S;
}

std::vector<std::pair<std::string, Bytes>> ChainStore::liveDeferred() const {
  // Snapshot deferreds + WAL adds, minus WAL dones, preserving order.
  std::vector<std::pair<std::string, Bytes>> Live;
  if (HasEpoch)
    Live = Snap.Deferred;
  for (const WalRecord &Rec : WalRecs) {
    if (Rec.Kind == WalKind::DeferredAdd) {
      Live.emplace_back(Rec.Key, Rec.Payload);
    } else if (Rec.Kind == WalKind::DeferredDone) {
      for (auto It = Live.begin(); It != Live.end(); ++It) {
        if (It->first == Rec.Key) {
          Live.erase(It);
          break;
        }
      }
    }
  }
  return Live;
}

Status ChainStore::appendBlock(const std::string &HashHex,
                               const Bytes &BlockBytes) {
  if (!KnownBlocks.insert(HashHex).second)
    return Status::success();
  Status W = Blocks->append(encodeBlockRecord(HashHex, BlockBytes));
  if (!W) {
    KnownBlocks.erase(HashHex);
    return W;
  }
  BlockRecs.emplace_back(HashHex, BlockBytes);
  ++DirtyBlocks;
  return Status::success();
}

Status ChainStore::appendWal(WalKind Kind, const std::string &Key,
                             const Bytes &Payload) {
  Writer W;
  W.writeU8(static_cast<uint8_t>(Kind));
  W.writeString(Key);
  W.writeVarBytes(Payload);
  TC_TRY(Wal->append(W.takeBuffer()));
  TC_TRY(Wal->sync());
  WalRecord Rec;
  Rec.Kind = Kind;
  Rec.Key = Key;
  Rec.Payload = Payload;
  WalRecs.push_back(std::move(Rec));
  return Status::success();
}

Status ChainStore::flushEpoch(const EpochData &Data) {
  // Step 1: the block log must be durable before the snapshot can
  // attest to its tip (the snapshot's UTXO set is only reproducible
  // from the blocks it summarizes).
  TC_TRY(Blocks->sync());
  // Step 2: atomically replace the snapshot.
  TC_TRY(writeFileAtomic(V, path(EpochFile), frameRecord(serializeEpoch(Data))));
  // Step 3: only now is the WAL redundant.
  TC_TRY(Wal->reset());
  Snap = Data;
  HasEpoch = true;
  WalRecs.clear();
  DirtyBlocks = 0;
  return Status::success();
}

Result<StoreInspection> inspectStore(Vfs &V, const std::string &Dir) {
  StoreInspection Out;
  const std::string EpochPath = Dir + "/" + ChainStore::EpochFile;
  const std::string BlocksPath = Dir + "/" + ChainStore::BlocksFile;
  const std::string WalPath = Dir + "/" + ChainStore::WalFile;

  // Dir existence: probe via list (MemVfs has no directories, so fall
  // back to probing the files).
  auto Listed = V.list(Dir);
  TC_UNWRAP(HaveBlocks, V.exists(BlocksPath));
  TC_UNWRAP(HaveWal, V.exists(WalPath));
  TC_UNWRAP(HaveEpoch, V.exists(EpochPath));
  Out.DirExists = (Listed && !Listed->empty()) || HaveBlocks || HaveWal ||
                  HaveEpoch;
  if (!Out.DirExists)
    return Out;

  if (HaveEpoch) {
    Out.EpochPresent = true;
    TC_UNWRAP(SnapBytes, readFileAll(V, EpochPath));
    LogScan Scan = scanRecords(SnapBytes);
    if (Scan.Records.size() == 1 && !Scan.Tail) {
      auto Decoded = deserializeEpoch(Scan.Records[0]);
      if (Decoded) {
        Out.EpochNumber = Decoded->Number;
        Out.TipHashHex = Decoded->TipHashHex;
        Out.TipHeight = Decoded->TipHeight;
      } else {
        Out.EpochCorrupt = true;
      }
    } else {
      Out.EpochCorrupt = true;
    }
  }
  TC_UNWRAP(HaveTmp, V.exists(EpochPath + ".tmp"));
  Out.TmpLeftover = HaveTmp;

  if (HaveBlocks) {
    TC_UNWRAP(Data, readFileAll(V, BlocksPath));
    LogScan Scan = scanRecords(Data);
    Out.BlockRecords = Scan.Records.size();
    Out.BlockTailBytes = Data.size() - Scan.GoodBytes;
  }
  if (HaveWal) {
    TC_UNWRAP(Data, readFileAll(V, WalPath));
    LogScan Scan = scanRecords(Data);
    Out.WalRecords = Scan.Records.size();
    Out.WalTailBytes = Data.size() - Scan.GoodBytes;
    for (const Bytes &Rec : Scan.Records)
      if (!deserializeWalRecord(Rec))
        ++Out.UndecodableWalRecords;
  }
  return Out;
}

} // namespace store
} // namespace typecoin
