//===- store/vfs.cpp - Virtual filesystem for durable state ---------------===//

#include "store/vfs.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace typecoin {
namespace store {

std::string dirnameOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

Status writeFileAtomic(Vfs &V, const std::string &Path, const Bytes &Data) {
  const std::string Tmp = Path + ".tmp";
  {
    TC_UNWRAP(F, V.open(Tmp, /*Create=*/true));
    TC_UNWRAP(Size, F->size());
    if (Size != 0)
      TC_TRY(F->truncate(0));
    TC_TRY(F->append(Data));
    TC_TRY(F->sync());
  }
  TC_TRY(V.rename(Tmp, Path));
  return V.syncDir(dirnameOf(Path));
}

Result<Bytes> readFileAll(Vfs &V, const std::string &Path) {
  TC_UNWRAP(F, V.open(Path, /*Create=*/false));
  return F->readAll();
}

// --- PosixVfs -----------------------------------------------------------

namespace {

std::string errnoMessage(const std::string &What, const std::string &Path) {
  return "vfs: " + What + " " + Path + ": " + std::strerror(errno);
}

class PosixFile : public VfsFile {
public:
  PosixFile(int Fd, std::string Path) : Fd(Fd), Path(std::move(Path)) {}
  ~PosixFile() override {
    if (Fd >= 0)
      ::close(Fd);
  }

  Result<size_t> size() override {
    struct stat St;
    if (::fstat(Fd, &St) != 0)
      return makeError(errnoMessage("stat", Path));
    return static_cast<size_t>(St.st_size);
  }

  Status append(const uint8_t *Data, size_t Len) override {
    if (::lseek(Fd, 0, SEEK_END) < 0)
      return makeError(errnoMessage("seek", Path));
    size_t Done = 0;
    while (Done < Len) {
      ssize_t N = ::write(Fd, Data + Done, Len - Done);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return makeError(errnoMessage("write", Path));
      }
      Done += static_cast<size_t>(N);
    }
    return Status::success();
  }

  Result<Bytes> readAll() override {
    TC_UNWRAP(Size, size());
    Bytes Out(Size);
    size_t Done = 0;
    while (Done < Size) {
      ssize_t N = ::pread(Fd, Out.data() + Done, Size - Done,
                          static_cast<off_t>(Done));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return makeError(errnoMessage("read", Path));
      }
      if (N == 0)
        break; // Raced with a truncate; return what exists.
      Done += static_cast<size_t>(N);
    }
    Out.resize(Done);
    return Out;
  }

  Status truncate(size_t NewSize) override {
    if (::ftruncate(Fd, static_cast<off_t>(NewSize)) != 0)
      return makeError(errnoMessage("truncate", Path));
    return Status::success();
  }

  Status sync() override {
    if (::fsync(Fd) != 0)
      return makeError(errnoMessage("fsync", Path));
    return Status::success();
  }

private:
  int Fd;
  std::string Path;
};

} // namespace

Result<VfsFilePtr> PosixVfs::open(const std::string &Path, bool Create) {
  int Flags = O_RDWR | (Create ? O_CREAT : 0);
  int Fd = ::open(Path.c_str(), Flags, 0644);
  if (Fd < 0)
    return makeError(errnoMessage("open", Path));
  return VfsFilePtr(new PosixFile(Fd, Path));
}

Result<bool> PosixVfs::exists(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) == 0)
    return true;
  if (errno == ENOENT)
    return false;
  return makeError(errnoMessage("stat", Path));
}

Status PosixVfs::remove(const std::string &Path) {
  if (::unlink(Path.c_str()) != 0)
    return makeError(errnoMessage("unlink", Path));
  return Status::success();
}

Status PosixVfs::rename(const std::string &From, const std::string &To) {
  if (::rename(From.c_str(), To.c_str()) != 0)
    return makeError(errnoMessage("rename", From + " -> " + To));
  return Status::success();
}

Status PosixVfs::mkdirs(const std::string &Dir) {
  if (Dir.empty() || Dir == "." || Dir == "/")
    return Status::success();
  std::string Partial;
  size_t Pos = 0;
  while (Pos <= Dir.size()) {
    size_t Slash = Dir.find('/', Pos);
    if (Slash == std::string::npos)
      Slash = Dir.size();
    Partial = Dir.substr(0, Slash);
    Pos = Slash + 1;
    if (Partial.empty())
      continue;
    if (::mkdir(Partial.c_str(), 0755) != 0 && errno != EEXIST)
      return makeError(errnoMessage("mkdir", Partial));
  }
  return Status::success();
}

Result<std::vector<std::string>> PosixVfs::list(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return makeError(errnoMessage("opendir", Dir));
  std::vector<std::string> Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name != "." && Name != "..")
      Out.push_back(Name);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

Status PosixVfs::syncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return makeError(errnoMessage("open dir", Dir));
  int Rc = ::fsync(Fd);
  ::close(Fd);
  if (Rc != 0)
    return makeError(errnoMessage("fsync dir", Dir));
  return Status::success();
}

// --- MemVfs -------------------------------------------------------------

namespace {

class MemVfsFile : public VfsFile {
public:
  explicit MemVfsFile(std::shared_ptr<MemVfs::MemFile> F)
      : F(std::move(F)) {}

  Result<size_t> size() override { return F->Content.size(); }

  Status append(const uint8_t *Data, size_t Len) override {
    F->Content.insert(F->Content.end(), Data, Data + Len);
    return Status::success();
  }

  Result<Bytes> readAll() override { return F->Content; }

  Status truncate(size_t NewSize) override {
    if (NewSize < F->Content.size())
      F->Content.resize(NewSize);
    return Status::success();
  }

  Status sync() override {
    F->Durable = F->Content;
    return Status::success();
  }

private:
  std::shared_ptr<MemVfs::MemFile> F;
};

} // namespace

Result<VfsFilePtr> MemVfs::open(const std::string &Path, bool Create) {
  auto It = Files.find(Path);
  if (It == Files.end()) {
    if (!Create)
      return makeError("vfs: open " + Path + ": no such file");
    It = Files.emplace(Path, std::make_shared<MemFile>()).first;
  }
  return VfsFilePtr(new MemVfsFile(It->second));
}

Result<bool> MemVfs::exists(const std::string &Path) {
  return Files.count(Path) != 0;
}

Status MemVfs::remove(const std::string &Path) {
  if (Files.erase(Path) == 0)
    return makeError("vfs: unlink " + Path + ": no such file");
  return Status::success();
}

Status MemVfs::rename(const std::string &From, const std::string &To) {
  auto It = Files.find(From);
  if (It == Files.end())
    return makeError("vfs: rename " + From + ": no such file");
  PendingRename P;
  P.From = From;
  P.To = To;
  auto ToIt = Files.find(To);
  if (ToIt != Files.end())
    P.Replaced = ToIt->second;
  PendingRenames.push_back(std::move(P));
  Files[To] = It->second;
  Files.erase(It);
  return Status::success();
}

Status MemVfs::mkdirs(const std::string &) { return Status::success(); }

Result<std::vector<std::string>> MemVfs::list(const std::string &Dir) {
  std::vector<std::string> Out;
  std::string Prefix = Dir.empty() || Dir == "." ? "" : Dir + "/";
  for (const auto &[Path, F] : Files) {
    if (Path.rfind(Prefix, 0) != 0)
      continue;
    std::string Rest = Path.substr(Prefix.size());
    if (Rest.find('/') == std::string::npos)
      Out.push_back(Rest);
  }
  return Out;
}

Status MemVfs::syncDir(const std::string &Dir) {
  // Namespace operations under Dir become durable.
  std::string Prefix = Dir.empty() || Dir == "." ? "" : Dir + "/";
  auto Under = [&](const std::string &Path) {
    return dirnameOf(Path) == (Dir.empty() ? "." : Dir) ||
           Path.rfind(Prefix, 0) == 0;
  };
  PendingRenames.erase(
      std::remove_if(PendingRenames.begin(), PendingRenames.end(),
                     [&](const PendingRename &P) { return Under(P.To); }),
      PendingRenames.end());
  return Status::success();
}

void MemVfs::crash(const CrashOptions &Opt) {
  // Roll back renames the directory never made durable, newest first.
  for (size_t I = PendingRenames.size(); I-- > 0;) {
    PendingRename &P = PendingRenames[I];
    auto It = Files.find(P.To);
    if (It != Files.end() && Files.count(P.From) == 0)
      Files[P.From] = It->second;
    if (P.Replaced)
      Files[P.To] = P.Replaced;
    else
      Files.erase(P.To);
  }
  PendingRenames.clear();

  for (auto &[Path, F] : Files) {
    if (Path == Opt.KeepUnsyncedPath) {
      // Torn write: the unsynced tail (partially) reached the platter.
      if (Opt.FlipBitInTail && F->Content.size() > F->Durable.size())
        F->Content[F->Content.size() - 1] ^= 0x40;
      continue;
    }
    F->Content = F->Durable;
  }
}

std::optional<size_t> MemVfs::durableSize(const std::string &Path) const {
  auto It = Files.find(Path);
  if (It == Files.end())
    return std::nullopt;
  return It->second->Durable.size();
}

} // namespace store
} // namespace typecoin
