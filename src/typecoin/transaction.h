//===- typecoin/transaction.h - Typecoin transactions ------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typecoin transactions (Figure 1): `T = (Sigma, C, inputs, outputs, M)`
/// — a local basis, an affine grant, inputs `txid.n -> A/a` taking typed
/// resources and bitcoins from earlier transaction-outputs, outputs
/// `B/b ->> K` sending typed resources and bitcoins to principals, and a
/// proof term M showing that the transaction balances:
///
///   Sigma_global, Sigma |- M : (C (x) A (x) R) -o if(phi, B)
///
/// Transactions are canonically serialized; their double-SHA256 is the
/// hash embedded into the corresponding Bitcoin transaction (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_TRANSACTION_H
#define TYPECOIN_TYPECOIN_TRANSACTION_H

#include "bitcoin/amount.h"
#include "crypto/keys.h"
#include "logic/check.h"

namespace typecoin {
namespace tc {

/// An input `txid.n -> A/a`: spend output \p SourceIndex of the Bitcoin
/// transaction \p SourceTxid, claiming it carries type \p Type and
/// \p Amount satoshi.
struct Input {
  std::string SourceTxid; ///< Display-hex Bitcoin txid.
  uint32_t SourceIndex = 0;
  logic::PropPtr Type;
  bitcoin::Amount Amount = 0;
};

/// An output `B/b ->> K`: resources of type \p Type plus \p Amount
/// satoshi, sent to the principal owning \p Owner.
struct Output {
  logic::PropPtr Type;
  bitcoin::Amount Amount = 0;
  /// The receiving public key. The principal literal K is its HASH160.
  crypto::PublicKey Owner;

  crypto::KeyId ownerId() const { return Owner.id(); }
  lf::TermPtr ownerTerm() const {
    return lf::principal(ownerId().toHex());
  }
};

/// A Typecoin transaction.
struct Transaction {
  logic::Basis LocalBasis;
  /// The affine grant C; defaults to 1 (no granted resources).
  logic::PropPtr Grant;
  std::vector<Input> Inputs;
  std::vector<Output> Outputs;
  logic::ProofPtr Proof;
  /// Fallback transactions (Section 5): used in list order if the
  /// primary is invalid when it reaches the blockchain. Every fallback
  /// must map onto the same Bitcoin transaction.
  std::vector<Transaction> Fallbacks;

  Transaction();

  /// Canonical serialization (deterministic; hashed for embedding).
  Bytes serialize() const;
  static Result<Transaction> deserialize(const Bytes &Data);

  /// Double-SHA256 of the serialization: the embedded metadata.
  crypto::Digest32 hash() const;

  /// The tensor of input types `A` (right-nested; empty = 1).
  logic::PropPtr inputTensor() const;
  /// The tensor of output types `B`.
  logic::PropPtr outputTensor() const;
  /// The tensor of receipts `R = receipt(w_1) (x) ... (x) receipt(w_n)`.
  logic::PropPtr receiptTensor() const;
  /// The full proof obligation `(C (x) A (x) R) -o if(phi, B)` for the
  /// given condition; with `phi = true` callers may also use the bare
  /// `-o B` form (see txcheck).
  logic::PropPtr obligation(const logic::CondPtr &Phi) const;
};

/// The digest signed by an affine `assert(K, A, sig)`: "sig is a
/// signature by K of A, Sigma', C, inputs, outputs" (Appendix A) — the
/// whole transaction except the proof term, which contains the
/// signatures ("the proof term need not be signed, and indeed cannot
/// be", footnote 7).
crypto::Digest32 affineAssertDigest(const Transaction &T,
                                    const logic::PropPtr &A);

/// The digest signed by a persistent `assert!(K, A, sig)`: A alone.
crypto::Digest32 persistentAssertDigest(const logic::PropPtr &A);

/// The signature blob carried by assert proof terms: the signer's public
/// key (so the verifier can check it hashes to K) plus a DER ECDSA
/// signature of the appropriate digest.
Bytes makeAffirmationBlob(const crypto::PrivateKey &Key,
                          const crypto::Digest32 &Digest);
Status verifyAffirmationBlob(const std::string &KHash,
                             const crypto::Digest32 &Digest,
                             const Bytes &Blob);

/// Convenience: build the assert/assert! proof terms, signing with
/// \p Key (which must hash to the claimed principal).
logic::ProofPtr makeAssert(const crypto::PrivateKey &Key,
                           const Transaction &T, const logic::PropPtr &A);
logic::ProofPtr makeAssertBang(const crypto::PrivateKey &Key,
                               const logic::PropPtr &A);

/// AffirmationVerifier bound to a transaction (for the affine form).
class TxAffirmationVerifier : public logic::AffirmationVerifier {
public:
  explicit TxAffirmationVerifier(const Transaction &T) : T(T) {}

  Status verifyAffine(const std::string &KHash, const logic::PropPtr &A,
                      const Bytes &Sig) const override {
    return verifyAffirmationBlob(KHash, affineAssertDigest(T, A), Sig);
  }
  Status verifyPersistent(const std::string &KHash,
                          const logic::PropPtr &A,
                          const Bytes &Sig) const override {
    return verifyAffirmationBlob(KHash, persistentAssertDigest(A), Sig);
  }

private:
  const Transaction &T;
};

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_TRANSACTION_H
