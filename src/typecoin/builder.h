//===- typecoin/builder.h - High-level transaction construction --*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience layer for assembling coupled (Typecoin, Bitcoin)
/// transaction pairs: fee funding via extra trivial type-1 inputs
/// (Section 3.1), change outputs, signing, mechanical "routing" proofs
/// for transactions that move resources without transforming them, and
/// the cleanup transaction that cracks a resource open to recover the
/// bitcoins inside.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_BUILDER_H
#define TYPECOIN_TYPECOIN_BUILDER_H

#include "typecoin/node.h"
#include "typecoin/state.h"

namespace typecoin {
namespace tc {

/// Options for \ref buildPair.
struct BuildOptions {
  EmbedScheme Scheme = EmbedScheme::Multisig1of2;
  bitcoin::Amount Fee = bitcoin::TypicalFeePerTx;
  /// When set, fee/balance inputs avoid txouts this state knows to carry
  /// a non-trivial type — otherwise the builder could silently crack a
  /// resource open just to pay a fee.
  const State *AvoidTypedOutputsOf = nullptr;
};

/// Realize \p Tc as a signed Bitcoin transaction: selects additional
/// trivial inputs from \p Funds (wallet money) to cover output amounts
/// plus the fee, adds a change output back to the wallet when above
/// dust, embeds the hash, and signs every input with the wallet's keys.
/// The wallet must hold keys for all Typecoin inputs being spent.
Result<Pair> buildPair(const Transaction &Tc, Wallet &W,
                       const bitcoin::Blockchain &Chain,
                       const BuildOptions &Options = BuildOptions());

/// Build the proof term for a pure *routing* transaction: one whose
/// outputs carry exactly the input types as a multiset, possibly
/// reordered and with different owners (the batch-server withdrawal and
/// open-transaction shapes). The grant and receipts are discarded by
/// affine weakening. Fails when no bijection between input and output
/// types exists.
Result<logic::ProofPtr> makeRoutingProof(const Transaction &T);

/// Build a plain Bitcoin transaction that spends the given txouts to a
/// single P2PKH output, "cracking a resource open to recover the
/// bitcoins inside" (Section 3.1). Signed by the wallet.
Result<bitcoin::Transaction>
crackOutputs(const std::vector<bitcoin::OutPoint> &Points, Wallet &W,
             const bitcoin::Blockchain &Chain, const crypto::KeyId &PayTo,
             bitcoin::Amount Fee = bitcoin::TypicalFeePerTx);

/// Helper: the display-hex txid of a Bitcoin transaction.
inline std::string txidHex(const bitcoin::Transaction &Btc) {
  return Btc.txid().toHex();
}

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_BUILDER_H
