//===- typecoin/node.h - A full Typecoin node ---------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A full node: a Bitcoin chain + mempool coupled to the Typecoin chain
/// state. Typecoin transactions ride Bitcoin transactions (Section 3);
/// when a carrying Bitcoin transaction confirms, the node re-checks the
/// Typecoin transaction (or its first valid fallback) against the
/// block's timestamp and spent-evidence and registers it.
///
/// Registration is reorg-safe and delivery-safe:
///
///  * Pending carriers are keyed by the *Typecoin payload hash*, not the
///    Bitcoin txid, so a signature-malleated twin of the carrier
///    (Andrychowicz et al.) still registers the pair — under the txid
///    that actually confirmed.
///  * The node scans newly-matured chain regions (everything at least
///    `registrationDepth` deep) and records where it stopped; a reorg
///    that rewrites scanned history is detected and answered by
///    rebuilding the Typecoin state from genesis via \ref replayChain,
///    never by silently diverging.
///  * Submitted pairs persist in a journal (the simulated disk). After a
///    crash, \ref recover rebuilds mempool-independent state from the
///    chain + journal; unconfirmed pairs re-enter the resubmission
///    queue, which \ref tick drains with bounded exponential backoff.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_NODE_H
#define TYPECOIN_TYPECOIN_NODE_H

#include "bitcoin/miner.h"
#include "typecoin/embed.h"
#include "typecoin/state.h"
#include "typecoin/wallet.h"

#include <functional>

namespace typecoin {

namespace store {
class ChainStore;
class Vfs;
} // namespace store

namespace tc {

/// Condition oracle backed by a Bitcoin blockchain: `before(t)` is
/// judged against a fixed evaluation time (the block timestamp of the
/// transaction under check), `spent(txid.n)` against the best chain.
class ChainOracle : public logic::CondOracle {
public:
  ChainOracle(const bitcoin::Blockchain &Chain, uint64_t EvalTime)
      : Chain(Chain), EvalTime(EvalTime) {}

  uint64_t evaluationTime() const override { return EvalTime; }
  Result<bool> isSpent(const std::string &Txid,
                       uint32_t Index) const override;

private:
  const bitcoin::Blockchain &Chain;
  uint64_t EvalTime;
};

/// Convert display-hex txid to the wire type.
Result<bitcoin::TxId> txidFromHex(const std::string &Hex);

/// A coupled pair: the Typecoin transaction and the Bitcoin transaction
/// carrying its hash.
struct Pair {
  Transaction Tc;
  bitcoin::Transaction Btc;
};

/// The payload key a pair is tracked under: hex of `Tc.hash()` — stable
/// across carrier malleation, unlike the Bitcoin txid.
std::string payloadKey(const Pair &P);

/// Where a registered Typecoin payload landed on the chain.
struct Registration {
  std::string TxidHex;       ///< Confirmed carrier txid (display hex).
  bitcoin::BlockHash InBlock; ///< Best-chain block that carried it.
  int Height = 0;
};

/// Everything submitted through a node, keyed by payload hash — the
/// simulated durable store that survives a crash.
using PairJournal = std::map<std::string, Pair>;

/// Resubmission backoff for pairs whose carriers have not confirmed.
/// Exponential with optional deterministic jitter: with JitterFraction
/// > 0, each delay is scaled by a factor in [1 - J, 1 + J) drawn from a
/// PRNG seeded by (JitterSeed, retry key, attempt) — reproducible, and
/// it de-synchronizes the post-recovery stampede where every pending
/// pair becomes eligible at the same tick. Defaults to 0 (exact
/// schedule) so simulation timelines stay byte-stable.
struct RetryPolicy {
  double InitialDelaySeconds = 2.0;
  double BackoffFactor = 2.0;
  double MaxDelaySeconds = 64.0;
  int MaxAttempts = 8;
  double JitterFraction = 0.0;
  uint64_t JitterSeed = 0;
};

/// The backoff delay before attempt \p Attempts + 1 (Attempts >= 1),
/// jittered per the policy. \p JitterKey identifies the retried item
/// (payload key, txid) so distinct items jitter independently.
double retryDelay(const RetryPolicy &Policy, int Attempts,
                  const std::string &JitterKey = std::string());

/// Rebuilt-from-genesis Typecoin view of a chain: scan every matured
/// block for carriers of journaled pairs and register them in chain
/// order. This is the recovery path (crash restart, deep reorg) and the
/// cross-check for incremental registration.
struct ReplayResult {
  State TcState;
  std::map<std::string, Registration> Registered; ///< By payload hash.
  std::vector<std::string> SpoiledTxids;
};
Result<ReplayResult> replayChain(const bitcoin::Blockchain &Chain,
                                 const PairJournal &Journal,
                                 int RegistrationDepth);

/// A full node.
class Node {
public:
  explicit Node(bitcoin::ChainParams Params = defaultParams(),
                int RegistrationDepth = 1);
  ~Node(); // Out of line: owns a forward-declared store::ChainStore.

  /// Regtest-style parameters with instant coinbase maturity.
  static bitcoin::ChainParams defaultParams();

  /// How many confirmations a carrying Bitcoin transaction needs before
  /// its Typecoin transaction is registered (the paper's irreversibility
  /// threshold is six; tests default to one). Reorgs shallower than
  /// this depth never touch registered state; deeper ones trigger a
  /// from-genesis rebuild (see \ref replayChain).
  int registrationDepth() const { return RegistrationDepth; }

  bitcoin::Blockchain &chain() { return Chain; }
  const bitcoin::Blockchain &chain() const { return Chain; }
  bitcoin::Mempool &mempool() { return Pool; }
  State &state() { return TcState; }
  const State &state() const { return TcState; }

  /// Validate a pair (correspondence, relay policy, and a provisional
  /// Typecoin check at the current tip time), journal it, and queue it
  /// for mining. The pair stays pending — and is periodically
  /// resubmitted by \ref tick — until a carrier with its payload
  /// confirms at registration depth.
  Status submitPair(const Pair &P);

  /// Submit a plain Bitcoin transaction (no Typecoin overlay), e.g.
  /// cracking a resource open to recover the bitcoins (Section 3.1).
  Status submitPlain(const bitcoin::Transaction &Btc);

  /// Mine one block at \p Time paying \p Payout, then register any
  /// newly-matured Typecoin carriers. Returns the Bitcoin txids of
  /// Typecoin transactions that spoiled, if any.
  Result<std::vector<std::string>> mineBlock(const crypto::KeyId &Payout,
                                             uint32_t Time);

  /// Accept an externally-mined block (a peer's relay). Revalidates the
  /// mempool against the possibly-reorganized chain and synchronizes
  /// Typecoin registrations; a reorg past scanned history triggers the
  /// from-genesis rebuild. Returns newly-spoiled txids.
  Result<std::vector<std::string>> submitBlock(const bitcoin::Block &B);

  // --- Crash / recovery -------------------------------------------------

  /// What \ref recover rebuilt, so operators (and the `node.recover.*`
  /// obs counters) can see exactly how much state a crash cost.
  struct RecoverStats {
    size_t JournalSize = 0;        ///< Durable pairs that survived.
    size_t Registered = 0;         ///< Re-registered from the chain.
    size_t Requeued = 0;           ///< Back in the resubmission queue.
    size_t MempoolReadmitted = 0;  ///< Unconfirmed carriers re-admitted.
    size_t MempoolDropped = 0;     ///< Pool entries lost in the crash.
  };

  /// Recover after a crash that lost all volatile state (mempool,
  /// pending queue, Typecoin indices). Only the chain and the pair
  /// journal survive; everything else is rebuilt from them. Unconfirmed
  /// journal pairs re-enter the mempool and the resubmission queue.
  /// Returns counts of everything rebuilt (mirrored on obs counters).
  Result<RecoverStats> recover();

  // --- Durable store ----------------------------------------------------

  /// What \ref openStore found and rebuilt.
  struct StoreRecoverStats {
    /// State was rebuilt from the on-disk store (vs. a fresh/bootstrap
    /// store that was seeded from this node's in-memory state).
    bool FromDisk = false;
    uint64_t Epoch = 0;            ///< Last durable epoch (0 = none).
    size_t BlocksReplayed = 0;     ///< Blocks re-connected from the log.
    size_t BlockReplayErrors = 0;  ///< Log records the chain rejected.
    size_t JournalRestored = 0;    ///< Pairs from snapshot + WAL.
    bool DigestMismatch = false;   ///< Snapshot UTXO digest cross-check
                                   ///< failed; fell back to full
                                   ///< validation.
    RecoverStats Rebuild;          ///< The volatile-state rebuild.
  };

  /// Attach a durable chainstate store at \p Dir (see store/
  /// chainstore.h). When the store already holds state, the node
  /// rebuilds from disk: blocks replay through the validated connect
  /// path (script checks skipped up to the last durable epoch's tip,
  /// whose UTXO digest is cross-checked), the registration journal is
  /// restored from the snapshot plus the WAL, and volatile state is
  /// rebuilt as in \ref recover. When the store is empty, the node's
  /// current in-memory state seeds it (from-genesis bootstrap). After
  /// this call every accepted pair is WAL-durable before submitPair
  /// returns, and every \p EpochInterval persisted blocks trigger a
  /// flush epoch. The Vfs must outlive the node.
  Result<StoreRecoverStats> openStore(store::Vfs &V, const std::string &Dir,
                                      uint64_t EpochInterval = 8);

  /// Env-driven convenience: attach a PosixVfs store at
  /// `$TYPECOIN_STORE_DIR` (no-op when unset), wrapped in a FaultVfs
  /// per `$TYPECOIN_STORE_FAULTS` (`<kind>@<op>[:seed]`) when set.
  Result<bool> openStoreFromEnv();

  /// The attached store, or nullptr.
  store::ChainStore *store() { return Store.get(); }

  /// Force a flush epoch now (blocks fsync'd, snapshot replaced, WAL
  /// truncated). No-op without a store.
  Status flushStoreEpoch();

  // --- Resubmission queue -----------------------------------------------

  /// Hook invoked whenever \ref tick resubmits a pair (wire this to a
  /// network relay). Initial submission does not invoke it.
  void setRelay(std::function<void(const Pair &)> Hook) {
    Relay = std::move(Hook);
  }
  void setRetryPolicy(const RetryPolicy &P) { Retry = P; }
  const RetryPolicy &retryPolicy() const { return Retry; }

  /// Resubmit every pending pair whose backoff deadline has passed at
  /// \p Now (seconds, same clock as block timestamps). Gives up on a
  /// pair after RetryPolicy::MaxAttempts. Returns how many were
  /// resubmitted.
  size_t tick(double Now);

  /// Unconfirmed journaled pairs awaiting (re)submission.
  size_t pendingCount() const { return Pending.size(); }
  /// Submission attempts so far for a payload key (0 if unknown).
  int attemptsOf(const std::string &PayloadHex) const;

  // --- Registration queries ---------------------------------------------

  /// Has the payload of \p P been registered (under whatever txid its
  /// carrier — possibly a malleated twin — confirmed as)?
  bool isRegistered(const std::string &PayloadHex) const {
    return Registered.count(PayloadHex) != 0;
  }
  const Registration *registrationOf(const std::string &PayloadHex) const;
  const PairJournal &journal() const { return Journal; }

  /// Confirmations of the Bitcoin transaction carrying a pair.
  int confirmations(const std::string &TxidHex) const;

  /// The current simulated clock (last block time).
  uint32_t now() const { return Chain.tipTime(); }

private:
  /// A journaled pair whose carrier has not yet reached registration
  /// depth, with its resubmission schedule.
  struct PendingCarrier {
    Pair P;
    int Attempts = 0;
    double NextRetryTime = 0;
  };

  /// Incrementally scan newly-matured blocks for journaled carriers; on
  /// detecting that scanned history was reorganized away, rebuild
  /// everything via \ref replayChain. Returns newly-spoiled txids.
  Result<std::vector<std::string>> syncRegistrations();
  /// Journal a pair whose carrier already confirmed on the best chain
  /// (a client retrying after a refused durable ack, or a peer
  /// re-sending a confirmed pair) and rebuild registrations from the
  /// chain. Idempotent for already-journaled payloads.
  Status adoptConfirmedPair(const Pair &P);
  double backoffDelay(int Attempts,
                      const std::string &JitterKey = std::string()) const;

  /// The shared rebuild of volatile state from (Chain, Journal) —
  /// recover()'s body, also run by openStore after a disk replay.
  Result<RecoverStats> rebuildVolatileState();
  /// Write \p B through to the block log and run the epoch trigger.
  void persistBlock(const bitcoin::Block &B);
  /// Refresh the store.* obs gauges.
  void updateStoreGauges();

  bitcoin::Blockchain Chain;
  bitcoin::Mempool Pool;
  State TcState;
  int RegistrationDepth;

  PairJournal Journal; ///< Durable; survives crash (see \ref recover).
  std::map<std::string, PendingCarrier> Pending; ///< By payload hash.
  std::map<std::string, Registration> Registered; ///< By payload hash.
  /// Scan frontier: the highest matured height already scanned, and the
  /// best-chain hash observed there (mismatch later = deep reorg).
  int LastScannedHeight = 0;
  bitcoin::BlockHash LastScannedHash{};

  RetryPolicy Retry;
  std::function<void(const Pair &)> Relay;

  std::unique_ptr<store::ChainStore> Store;
  uint64_t EpochInterval = 8;
  /// Backends owned when the store came from \ref openStoreFromEnv.
  std::unique_ptr<store::Vfs> OwnedVfs;
  std::unique_ptr<store::Vfs> OwnedFaultVfs;
};

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_NODE_H
