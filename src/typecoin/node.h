//===- typecoin/node.h - A full Typecoin node ---------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A full node: a Bitcoin chain + mempool coupled to the Typecoin chain
/// state. Typecoin transactions ride Bitcoin transactions (Section 3);
/// when a carrying Bitcoin transaction confirms, the node re-checks the
/// Typecoin transaction (or its first valid fallback) against the
/// block's timestamp and spent-evidence and registers it.
///
/// Registration is reorg-safe and delivery-safe:
///
///  * Pending carriers are keyed by the *Typecoin payload hash*, not the
///    Bitcoin txid, so a signature-malleated twin of the carrier
///    (Andrychowicz et al.) still registers the pair — under the txid
///    that actually confirmed.
///  * The node scans newly-matured chain regions (everything at least
///    `registrationDepth` deep) and records where it stopped; a reorg
///    that rewrites scanned history is detected and answered by
///    rebuilding the Typecoin state from genesis via \ref replayChain,
///    never by silently diverging.
///  * Submitted pairs persist in a journal (the simulated disk). After a
///    crash, \ref recover rebuilds mempool-independent state from the
///    chain + journal; unconfirmed pairs re-enter the resubmission
///    queue, which \ref tick drains with bounded exponential backoff.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_NODE_H
#define TYPECOIN_TYPECOIN_NODE_H

#include "bitcoin/miner.h"
#include "typecoin/embed.h"
#include "typecoin/state.h"
#include "typecoin/wallet.h"

#include <functional>

namespace typecoin {
namespace tc {

/// Condition oracle backed by a Bitcoin blockchain: `before(t)` is
/// judged against a fixed evaluation time (the block timestamp of the
/// transaction under check), `spent(txid.n)` against the best chain.
class ChainOracle : public logic::CondOracle {
public:
  ChainOracle(const bitcoin::Blockchain &Chain, uint64_t EvalTime)
      : Chain(Chain), EvalTime(EvalTime) {}

  uint64_t evaluationTime() const override { return EvalTime; }
  Result<bool> isSpent(const std::string &Txid,
                       uint32_t Index) const override;

private:
  const bitcoin::Blockchain &Chain;
  uint64_t EvalTime;
};

/// Convert display-hex txid to the wire type.
Result<bitcoin::TxId> txidFromHex(const std::string &Hex);

/// A coupled pair: the Typecoin transaction and the Bitcoin transaction
/// carrying its hash.
struct Pair {
  Transaction Tc;
  bitcoin::Transaction Btc;
};

/// The payload key a pair is tracked under: hex of `Tc.hash()` — stable
/// across carrier malleation, unlike the Bitcoin txid.
std::string payloadKey(const Pair &P);

/// Where a registered Typecoin payload landed on the chain.
struct Registration {
  std::string TxidHex;       ///< Confirmed carrier txid (display hex).
  bitcoin::BlockHash InBlock; ///< Best-chain block that carried it.
  int Height = 0;
};

/// Everything submitted through a node, keyed by payload hash — the
/// simulated durable store that survives a crash.
using PairJournal = std::map<std::string, Pair>;

/// Resubmission backoff for pairs whose carriers have not confirmed.
struct RetryPolicy {
  double InitialDelaySeconds = 2.0;
  double BackoffFactor = 2.0;
  double MaxDelaySeconds = 64.0;
  int MaxAttempts = 8;
};

/// Rebuilt-from-genesis Typecoin view of a chain: scan every matured
/// block for carriers of journaled pairs and register them in chain
/// order. This is the recovery path (crash restart, deep reorg) and the
/// cross-check for incremental registration.
struct ReplayResult {
  State TcState;
  std::map<std::string, Registration> Registered; ///< By payload hash.
  std::vector<std::string> SpoiledTxids;
};
Result<ReplayResult> replayChain(const bitcoin::Blockchain &Chain,
                                 const PairJournal &Journal,
                                 int RegistrationDepth);

/// A full node.
class Node {
public:
  explicit Node(bitcoin::ChainParams Params = defaultParams(),
                int RegistrationDepth = 1);

  /// Regtest-style parameters with instant coinbase maturity.
  static bitcoin::ChainParams defaultParams();

  /// How many confirmations a carrying Bitcoin transaction needs before
  /// its Typecoin transaction is registered (the paper's irreversibility
  /// threshold is six; tests default to one). Reorgs shallower than
  /// this depth never touch registered state; deeper ones trigger a
  /// from-genesis rebuild (see \ref replayChain).
  int registrationDepth() const { return RegistrationDepth; }

  bitcoin::Blockchain &chain() { return Chain; }
  const bitcoin::Blockchain &chain() const { return Chain; }
  bitcoin::Mempool &mempool() { return Pool; }
  State &state() { return TcState; }
  const State &state() const { return TcState; }

  /// Validate a pair (correspondence, relay policy, and a provisional
  /// Typecoin check at the current tip time), journal it, and queue it
  /// for mining. The pair stays pending — and is periodically
  /// resubmitted by \ref tick — until a carrier with its payload
  /// confirms at registration depth.
  Status submitPair(const Pair &P);

  /// Submit a plain Bitcoin transaction (no Typecoin overlay), e.g.
  /// cracking a resource open to recover the bitcoins (Section 3.1).
  Status submitPlain(const bitcoin::Transaction &Btc);

  /// Mine one block at \p Time paying \p Payout, then register any
  /// newly-matured Typecoin carriers. Returns the Bitcoin txids of
  /// Typecoin transactions that spoiled, if any.
  Result<std::vector<std::string>> mineBlock(const crypto::KeyId &Payout,
                                             uint32_t Time);

  /// Accept an externally-mined block (a peer's relay). Revalidates the
  /// mempool against the possibly-reorganized chain and synchronizes
  /// Typecoin registrations; a reorg past scanned history triggers the
  /// from-genesis rebuild. Returns newly-spoiled txids.
  Result<std::vector<std::string>> submitBlock(const bitcoin::Block &B);

  // --- Crash / recovery -------------------------------------------------

  /// What \ref recover rebuilt, so operators (and the `node.recover.*`
  /// obs counters) can see exactly how much state a crash cost.
  struct RecoverStats {
    size_t JournalSize = 0;        ///< Durable pairs that survived.
    size_t Registered = 0;         ///< Re-registered from the chain.
    size_t Requeued = 0;           ///< Back in the resubmission queue.
    size_t MempoolReadmitted = 0;  ///< Unconfirmed carriers re-admitted.
    size_t MempoolDropped = 0;     ///< Pool entries lost in the crash.
  };

  /// Recover after a crash that lost all volatile state (mempool,
  /// pending queue, Typecoin indices). Only the chain and the pair
  /// journal survive; everything else is rebuilt from them. Unconfirmed
  /// journal pairs re-enter the mempool and the resubmission queue.
  /// Returns counts of everything rebuilt (mirrored on obs counters).
  Result<RecoverStats> recover();

  // --- Resubmission queue -----------------------------------------------

  /// Hook invoked whenever \ref tick resubmits a pair (wire this to a
  /// network relay). Initial submission does not invoke it.
  void setRelay(std::function<void(const Pair &)> Hook) {
    Relay = std::move(Hook);
  }
  void setRetryPolicy(const RetryPolicy &P) { Retry = P; }
  const RetryPolicy &retryPolicy() const { return Retry; }

  /// Resubmit every pending pair whose backoff deadline has passed at
  /// \p Now (seconds, same clock as block timestamps). Gives up on a
  /// pair after RetryPolicy::MaxAttempts. Returns how many were
  /// resubmitted.
  size_t tick(double Now);

  /// Unconfirmed journaled pairs awaiting (re)submission.
  size_t pendingCount() const { return Pending.size(); }
  /// Submission attempts so far for a payload key (0 if unknown).
  int attemptsOf(const std::string &PayloadHex) const;

  // --- Registration queries ---------------------------------------------

  /// Has the payload of \p P been registered (under whatever txid its
  /// carrier — possibly a malleated twin — confirmed as)?
  bool isRegistered(const std::string &PayloadHex) const {
    return Registered.count(PayloadHex) != 0;
  }
  const Registration *registrationOf(const std::string &PayloadHex) const;
  const PairJournal &journal() const { return Journal; }

  /// Confirmations of the Bitcoin transaction carrying a pair.
  int confirmations(const std::string &TxidHex) const;

  /// The current simulated clock (last block time).
  uint32_t now() const { return Chain.tipTime(); }

private:
  /// A journaled pair whose carrier has not yet reached registration
  /// depth, with its resubmission schedule.
  struct PendingCarrier {
    Pair P;
    int Attempts = 0;
    double NextRetryTime = 0;
  };

  /// Incrementally scan newly-matured blocks for journaled carriers; on
  /// detecting that scanned history was reorganized away, rebuild
  /// everything via \ref replayChain. Returns newly-spoiled txids.
  Result<std::vector<std::string>> syncRegistrations();
  double backoffDelay(int Attempts) const;

  bitcoin::Blockchain Chain;
  bitcoin::Mempool Pool;
  State TcState;
  int RegistrationDepth;

  PairJournal Journal; ///< Durable; survives crash (see \ref recover).
  std::map<std::string, PendingCarrier> Pending; ///< By payload hash.
  std::map<std::string, Registration> Registered; ///< By payload hash.
  /// Scan frontier: the highest matured height already scanned, and the
  /// best-chain hash observed there (mismatch later = deep reorg).
  int LastScannedHeight = 0;
  bitcoin::BlockHash LastScannedHash{};

  RetryPolicy Retry;
  std::function<void(const Pair &)> Relay;
};

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_NODE_H
