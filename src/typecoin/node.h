//===- typecoin/node.h - A full Typecoin node ---------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A full node: a Bitcoin chain + mempool coupled to the Typecoin chain
/// state. Typecoin transactions ride Bitcoin transactions (Section 3);
/// when a carrying Bitcoin transaction confirms, the node re-checks the
/// Typecoin transaction (or its first valid fallback) against the
/// block's timestamp and spent-evidence and registers it.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_NODE_H
#define TYPECOIN_TYPECOIN_NODE_H

#include "bitcoin/miner.h"
#include "typecoin/embed.h"
#include "typecoin/state.h"
#include "typecoin/wallet.h"

namespace typecoin {
namespace tc {

/// Condition oracle backed by a Bitcoin blockchain: `before(t)` is
/// judged against a fixed evaluation time (the block timestamp of the
/// transaction under check), `spent(txid.n)` against the best chain.
class ChainOracle : public logic::CondOracle {
public:
  ChainOracle(const bitcoin::Blockchain &Chain, uint64_t EvalTime)
      : Chain(Chain), EvalTime(EvalTime) {}

  uint64_t evaluationTime() const override { return EvalTime; }
  Result<bool> isSpent(const std::string &Txid,
                       uint32_t Index) const override;

private:
  const bitcoin::Blockchain &Chain;
  uint64_t EvalTime;
};

/// Convert display-hex txid to the wire type.
Result<bitcoin::TxId> txidFromHex(const std::string &Hex);

/// A coupled pair: the Typecoin transaction and the Bitcoin transaction
/// carrying its hash.
struct Pair {
  Transaction Tc;
  bitcoin::Transaction Btc;
};

/// A full node.
class Node {
public:
  explicit Node(bitcoin::ChainParams Params = defaultParams(),
                int RegistrationDepth = 1);

  /// Regtest-style parameters with instant coinbase maturity.
  static bitcoin::ChainParams defaultParams();

  /// How many confirmations a carrying Bitcoin transaction needs before
  /// its Typecoin transaction is registered (the paper's irreversibility
  /// threshold is six; tests default to one). Typecoin state never has
  /// to unwind as long as reorgs shallower than this depth are the only
  /// ones that occur.
  int registrationDepth() const { return RegistrationDepth; }

  bitcoin::Blockchain &chain() { return Chain; }
  const bitcoin::Blockchain &chain() const { return Chain; }
  bitcoin::Mempool &mempool() { return Pool; }
  State &state() { return TcState; }
  const State &state() const { return TcState; }

  /// Validate a pair (correspondence, relay policy, and a provisional
  /// Typecoin check at the current tip time) and queue it for mining.
  Status submitPair(const Pair &P);

  /// Submit a plain Bitcoin transaction (no Typecoin overlay), e.g.
  /// cracking a resource open to recover the bitcoins (Section 3.1).
  Status submitPlain(const bitcoin::Transaction &Btc);

  /// Mine one block at \p Time paying \p Payout, then register any
  /// confirmed Typecoin transactions against the new block's state.
  /// Returns the ids of Typecoin transactions that spoiled, if any.
  Result<std::vector<std::string>> mineBlock(const crypto::KeyId &Payout,
                                             uint32_t Time);

  /// Confirmations of the Bitcoin transaction carrying a pair.
  int confirmations(const std::string &TxidHex) const;

  /// The current simulated clock (last block time).
  uint32_t now() const { return Chain.tipTime(); }

private:
  bitcoin::Blockchain Chain;
  bitcoin::Mempool Pool;
  State TcState;
  int RegistrationDepth;
  /// Typecoin transactions awaiting confirmation, keyed by the Bitcoin
  /// txid (display hex).
  std::map<std::string, Transaction> PendingTc;
};

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_NODE_H
