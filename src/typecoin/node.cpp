//===- typecoin/node.cpp - A full Typecoin node --------------------------------===//

#include "typecoin/node.h"

#include "analysis/audit.h"
#include "analysis/lint.h"
#include "analysis/symcheck.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/chainstore.h"
#include "store/faultvfs.h"
#include "support/rng.h"
#include "typecoin/persist.h"

#include <algorithm>
#include <cstdlib>

namespace typecoin {
namespace tc {

Result<bitcoin::TxId> txidFromHex(const std::string &Hex) {
  TC_UNWRAP(Raw, fromHexFixed<32>(Hex));
  std::reverse(Raw.begin(), Raw.end());
  bitcoin::TxId Id;
  Id.Hash = Raw;
  return Id;
}

Result<bool> ChainOracle::isSpent(const std::string &Txid,
                                  uint32_t Index) const {
  TC_UNWRAP(Id, txidFromHex(Txid));
  return Chain.isSpent(bitcoin::OutPoint{Id, Index});
}

std::string payloadKey(const Pair &P) { return toHex(P.Tc.hash()); }

/// Scan blocks [From, To] of the best chain (inclusive), registering
/// any transaction that carries the payload of a journaled pair and is
/// not yet registered. Shared by incremental sync and full replay.
static Result<std::vector<std::string>>
scanRange(const bitcoin::Blockchain &Chain, const PairJournal &Journal,
          State &TcState, std::map<std::string, Registration> &Registered,
          int From, int To) {
  std::vector<std::string> Spoiled;
  for (int H = From; H <= To; ++H) {
    auto Hash = Chain.blockHashAt(H);
    if (!Hash)
      continue;
    const bitcoin::Block *B = Chain.blockByHash(*Hash);
    if (!B)
      continue;
    for (const bitcoin::Transaction &Tx : B->Txs) {
      if (Tx.isCoinbase())
        continue;
      auto Meta = extractMetadata(Tx);
      if (!Meta)
        continue;
      std::string Payload = toHex(*Meta);
      auto JIt = Journal.find(Payload);
      if (JIt == Journal.end() || Registered.count(Payload))
        continue;
      // The confirmed carrier may be a signature-malleated twin of the
      // one we broadcast (different txid, same effect); correspondence
      // only constrains what the payload actually commits to, so it
      // accepts the twin and rejects unrelated transactions that merely
      // embed the same hash.
      if (!checkCorrespondence(JIt->second.Tc, Tx))
        continue;
      std::string TxidHex = Tx.txid().toHex();
      // Conditions are judged at the transaction's own block (Section 5:
      // "unambiguous evidence ... for any particular transaction in the
      // blockchain").
      ChainOracle Oracle(Chain, B->Header.Time);
      TC_UNWRAP(Selected,
                TcState.applyTransaction(JIt->second.Tc, TxidHex, Oracle));
      Registered[Payload] = Registration{TxidHex, *Hash, H};
      if (Selected > JIt->second.Tc.Fallbacks.size())
        Spoiled.push_back(TxidHex);
    }
  }
  return Spoiled;
}

Result<ReplayResult> replayChain(const bitcoin::Blockchain &Chain,
                                 const PairJournal &Journal,
                                 int RegistrationDepth) {
  ReplayResult Out;
  int End = Chain.height() - RegistrationDepth + 1;
  if (End < 1)
    return Out;
  TC_UNWRAP(Spoiled, scanRange(Chain, Journal, Out.TcState, Out.Registered,
                               1, End));
  Out.SpoiledTxids = std::move(Spoiled);
  return Out;
}

bitcoin::ChainParams Node::defaultParams() {
  bitcoin::ChainParams Params;
  Params.CoinbaseMaturity = 1;
  return Params;
}

Node::Node(bitcoin::ChainParams Params, int RegistrationDepth)
    : Chain(std::move(Params)), RegistrationDepth(RegistrationDepth) {
#ifdef TYPECOIN_AUDIT
  // Debug builds re-derive the ledger invariants after every block
  // connect/disconnect (analysis/audit.h).
  analysis::installChainAuditor(Chain);
#endif
}

Node::~Node() = default;

double retryDelay(const RetryPolicy &Policy, int Attempts,
                  const std::string &JitterKey) {
  double Delay = Policy.InitialDelaySeconds;
  for (int I = 1; I < Attempts; ++I) {
    Delay *= Policy.BackoffFactor;
    if (Delay >= Policy.MaxDelaySeconds) {
      Delay = Policy.MaxDelaySeconds;
      break;
    }
  }
  Delay = std::min(Delay, Policy.MaxDelaySeconds);
  if (Policy.JitterFraction > 0.0) {
    // Deterministic per-(key, attempt) jitter: a stable hash of the
    // retried item folded with the policy seed and the attempt count,
    // so replays of the same schedule are reproducible and two items
    // recovering together fan out instead of stampeding.
    uint64_t H = 1469598103934665603ull ^ Policy.JitterSeed;
    for (char C : JitterKey) {
      H ^= static_cast<uint8_t>(C);
      H *= 1099511628211ull;
    }
    H ^= static_cast<uint64_t>(Attempts);
    H *= 1099511628211ull;
    Rng R(H);
    double Scale = 1.0 + Policy.JitterFraction * (2.0 * R.nextDouble() - 1.0);
    Delay *= Scale;
  }
  return Delay;
}

double Node::backoffDelay(int Attempts, const std::string &JitterKey) const {
  return retryDelay(Retry, Attempts, JitterKey);
}

/// Obs probes for the submission pipeline: one counter per gate outcome
/// plus a latency histogram per stage, so `tcstat` can attribute
/// submit-path time to lint vs correspondence vs the full check.
namespace {
struct SubmitMetrics {
  obs::Counter &Accepted = obs::counter("node.submit.accepted");
  obs::Counter &RejectedLint = obs::counter("node.submit.rejected.lint");
  obs::Counter &RejectedCorrespondence =
      obs::counter("node.submit.rejected.correspondence");
  obs::Counter &RejectedPrecheck =
      obs::counter("node.submit.rejected.precheck");
  obs::Counter &RejectedSym = obs::counter("node.submit.rejected.sym");
  obs::Counter &RejectedMempool =
      obs::counter("node.submit.rejected.mempool");
  obs::Histogram &LintNs = obs::latencyHistogram("node.submit.lint_ns");
  obs::Histogram &EmbedNs = obs::latencyHistogram("node.submit.embed_ns");
  obs::Histogram &PrecheckNs =
      obs::latencyHistogram("node.submit.precheck_ns");

  static SubmitMetrics &get() {
    static SubmitMetrics M;
    return M;
  }
};
} // namespace

Status Node::submitPair(const Pair &P) {
  SubmitMetrics &M = SubmitMetrics::get();
  obs::Span Trace("node.submitPair");
  // Reject-early gate: a cheap structural lint (affine usage, script
  // standardness, embedding shape) before the full correspondence and
  // proof checks. Only findings the full pipeline is guaranteed to
  // reject — across the primary and every fallback — turn into errors.
  {
    obs::ScopedTimer Timer(M.LintNs);
    analysis::LintOptions LintOpts;
    LintOpts.RequireStandard = Pool.policy().RequireStandard;
    if (auto S = analysis::lintGate(P, LintOpts); !S) {
      M.RejectedLint.inc();
      return S;
    }
  }

  // Opt-in symbolic gate (TYPECOIN_SYMCHECK): tcsym over the carrier
  // output scripts plus the whole-ledger affine dataflow pass. A no-op
  // (single env read) when the gate is off.
  if (auto S = analysis::symGate(P, Chain); !S) {
    M.RejectedSym.inc();
    return S;
  }

  {
    obs::ScopedTimer Timer(M.EmbedNs);
    if (auto S = checkCorrespondence(P.Tc, P.Btc); !S) {
      M.RejectedCorrespondence.inc();
      return S;
    }
  }
  // Late adoption: the carrier already confirmed, so the provisional
  // mempool path is meaningless — its inputs were spent by its own
  // confirmation, and the authoritative Typecoin check already ran (or
  // will run) at the block's own timestamp during registration. This
  // happens when a client retries after a crash (or a refused durable
  // ack) on a node that meanwhile saw the carrier confirm, or when a
  // peer re-sends a confirmed pair during healing.
  if (Chain.confirmations(P.Btc.txid()) >= 1)
    return adoptConfirmedPair(P);

  // Provisional Typecoin check against the present chain view; the
  // authoritative check happens at confirmation time.
  ChainOracle Oracle(Chain, Chain.tipTime());
  {
    obs::ScopedTimer Timer(M.PrecheckNs);
    if (auto R = TcState.checkTransaction(P.Tc, Oracle); !R) {
      // A currently-invalid primary is still relayable when some fallback
      // is valid (Section 5); otherwise reject early.
      if (auto Sel = TcState.selectValid(P.Tc, Oracle); !Sel) {
        M.RejectedPrecheck.inc();
        return R.takeError().withContext("typecoin pre-check");
      }
    }
  }
  if (auto S = Pool.acceptTransaction(P.Btc, Chain); !S) {
    M.RejectedMempool.inc();
    return S;
  }

  std::string Payload = payloadKey(P);
  // Durable-ack contract: once a store is attached, the pair's WAL
  // record is fsync'd before submitPair returns success. A write
  // failure (e.g. ENOSPC) rejects the submission — the caller retries —
  // rather than acking state a crash would forget.
  if (Store) {
    if (auto S = Store->appendWal(store::WalKind::PairAdd, Payload,
                                  serializePair(P));
        !S) {
      static obs::Counter &WalFailed = obs::counter("store.wal.failed");
      WalFailed.inc();
      return S.takeError().withContext("store: journal write-through");
    }
    updateStoreGauges();
  }
  Journal[Payload] = P;
  if (!Registered.count(Payload)) {
    PendingCarrier PC;
    PC.P = P;
    PC.Attempts = 1;
    PC.NextRetryTime =
        static_cast<double>(Chain.tipTime()) + backoffDelay(1, Payload);
    Pending[Payload] = std::move(PC);
  }
  M.Accepted.inc();
  return Status::success();
}

Status Node::adoptConfirmedPair(const Pair &P) {
  std::string Payload = payloadKey(P);
  if (Journal.count(Payload))
    return Status::success(); // Already known; registration is chain-driven.
  // Same durable-ack contract as the pending path: the journal entry
  // must be WAL-durable before the adoption is acknowledged.
  if (Store) {
    if (auto S = Store->appendWal(store::WalKind::PairAdd, Payload,
                                  serializePair(P));
        !S) {
      static obs::Counter &WalFailed = obs::counter("store.wal.failed");
      WalFailed.inc();
      return S.takeError().withContext("store: journal write-through");
    }
    updateStoreGauges();
  }
  Journal[Payload] = P;
  static obs::Counter &Adopted = obs::counter("node.submit.late_adopted");
  Adopted.inc();
  // The incremental scan frontier is already past the carrier's block:
  // rebuild the Typecoin view from the chain so the adopted pair
  // registers (or lands back in the resubmission queue if its carrier
  // has not matured to registration depth yet).
  if (auto R = rebuildVolatileState(); !R)
    return R.takeError().withContext("late adoption rebuild");
  return Status::success();
}

Status Node::submitPlain(const bitcoin::Transaction &Btc) {
  return Pool.acceptTransaction(Btc, Chain);
}

Result<std::vector<std::string>> Node::syncRegistrations() {
  int End = Chain.height() - RegistrationDepth + 1;

  // Deep-reorg detection: the scan frontier or any registration's block
  // is no longer on the best chain. Shallow reorgs (entirely above the
  // frontier) never trip this — matured history is stable by
  // construction unless a reorg crosses registrationDepth.
  bool Diverged = false;
  if (LastScannedHeight > 0) {
    auto H = Chain.blockHashAt(LastScannedHeight);
    if (!H || !(*H == LastScannedHash))
      Diverged = true;
  }
  if (!Diverged)
    for (const auto &[Payload, Reg] : Registered) {
      auto H = Chain.blockHashAt(Reg.Height);
      if (!H || !(*H == Reg.InBlock)) {
        Diverged = true;
        break;
      }
    }

  std::vector<std::string> Spoiled;
  if (Diverged) {
    // Rewritten history: rather than patching state whose premises are
    // gone, rebuild the whole Typecoin view from genesis against the
    // new best chain. Anything whose carrier fell out of the chain goes
    // back to pending for resubmission.
    static obs::Counter &DeepReorgs = obs::counter("node.deep_reorg.count");
    DeepReorgs.inc();
    obs::Span Trace("node.replayChain");
    TC_UNWRAP(R, replayChain(Chain, Journal, RegistrationDepth));
    TcState = std::move(R.TcState);
    Registered = std::move(R.Registered);
    Spoiled = std::move(R.SpoiledTxids);
    Pool.revalidate(Chain);
  } else if (End > LastScannedHeight) {
    TC_UNWRAP(S, scanRange(Chain, Journal, TcState, Registered,
                           LastScannedHeight + 1, End));
    Spoiled = std::move(S);
  }

  // Advance the frontier and reconcile the pending queue with what is
  // now registered (or no longer is).
  if (End >= 1) {
    if (auto H = Chain.blockHashAt(End)) {
      LastScannedHeight = End;
      LastScannedHash = *H;
    }
  } else {
    LastScannedHeight = 0;
  }
  for (const auto &[Payload, Reg] : Registered)
    Pending.erase(Payload);
  if (Diverged)
    for (const auto &[Payload, P] : Journal) {
      if (Registered.count(Payload) || Pending.count(Payload))
        continue;
      PendingCarrier PC;
      PC.P = P;
      PC.Attempts = 0;
      PC.NextRetryTime = 0; // Eligible at the next tick.
      Pending[Payload] = std::move(PC);
    }
  return Spoiled;
}

Result<std::vector<std::string>>
Node::mineBlock(const crypto::KeyId &Payout, uint32_t Time) {
  TC_UNWRAP(Block, bitcoin::mineAndSubmit(Chain, Pool, Payout, Time));
  persistBlock(Block);
  TC_UNWRAP(Spoiled, syncRegistrations());
#ifdef TYPECOIN_AUDIT
  TC_TRY(analysis::auditMempool(Pool, Chain));
  TC_TRY(analysis::auditState(TcState));
#endif
  return Spoiled;
}

Result<std::vector<std::string>> Node::submitBlock(const bitcoin::Block &B) {
  TC_TRY(Chain.submitBlock(B));
  persistBlock(B);
  // The block may have extended the tip or triggered a reorganization;
  // either way the pool must be consistent with the new best chain.
  Pool.revalidate(Chain);
  TC_UNWRAP(Spoiled, syncRegistrations());
#ifdef TYPECOIN_AUDIT
  TC_TRY(analysis::auditMempool(Pool, Chain));
  TC_TRY(analysis::auditState(TcState));
#endif
  return Spoiled;
}

Result<Node::RecoverStats> Node::recover() {
  static obs::Counter &Runs = obs::counter("node.recover.runs");
  Runs.inc();
  return rebuildVolatileState();
}

Result<Node::RecoverStats> Node::rebuildVolatileState() {
  static obs::Counter &RegisteredC = obs::counter("node.recover.registered");
  static obs::Counter &RequeuedC = obs::counter("node.recover.requeued");
  static obs::Counter &ReadmittedC =
      obs::counter("node.recover.mempool_readmitted");
  static obs::Histogram &RecoverNs =
      obs::latencyHistogram("node.recover_ns");
  obs::ScopedTimer Timer(RecoverNs);
  obs::Span Trace("node.recover");

  RecoverStats Stats;
  Stats.JournalSize = Journal.size();

  // Volatile state is gone: the mempool, the pending queue, and every
  // in-memory Typecoin index. The chain (block store) and the pair
  // journal are the durable inputs; rebuild everything from them.
  Stats.MempoolDropped = Pool.clear();
  Pending.clear();
  Registered.clear();
  TcState = State();
  LastScannedHeight = 0;
  LastScannedHash = bitcoin::BlockHash{};

  TC_UNWRAP(R, replayChain(Chain, Journal, RegistrationDepth));
  TcState = std::move(R.TcState);
  Registered = std::move(R.Registered);
  int End = Chain.height() - RegistrationDepth + 1;
  if (End >= 1) {
    if (auto H = Chain.blockHashAt(End)) {
      LastScannedHeight = End;
      LastScannedHash = *H;
    }
  }
  Stats.Registered = Registered.size();

  // Unconfirmed journal entries go back into the mempool (best effort —
  // their inputs may have been spent while we were down) and the
  // resubmission queue.
  for (const auto &[Payload, P] : Journal) {
    if (Registered.count(Payload))
      continue;
    if (Pool.acceptTransaction(P.Btc, Chain))
      ++Stats.MempoolReadmitted;
    PendingCarrier PC;
    PC.P = P;
    PC.Attempts = 0;
    PC.NextRetryTime = 0;
    Pending[Payload] = std::move(PC);
    ++Stats.Requeued;
  }
  RegisteredC.inc(Stats.Registered);
  RequeuedC.inc(Stats.Requeued);
  ReadmittedC.inc(Stats.MempoolReadmitted);
#ifdef TYPECOIN_AUDIT
  TC_TRY(analysis::auditMempool(Pool, Chain));
  TC_TRY(analysis::auditState(TcState));
#endif
  return Stats;
}

size_t Node::tick(double Now) {
  static obs::Counter &Attempts = obs::counter("node.resubmit.attempts");
  static obs::Counter &Exhausted = obs::counter("node.resubmit.exhausted");
  size_t Resubmitted = 0;
  for (auto &[Payload, PC] : Pending) {
    if (PC.Attempts >= Retry.MaxAttempts)
      continue; // Gave up; the pair stays journaled but is not retried.
    if (Now < PC.NextRetryTime)
      continue;
    // Re-admission can fail transiently (e.g. inputs held by a
    // conflicting pool entry that a reorg will evict); count the
    // attempt either way so backoff still applies.
    (void)Pool.acceptTransaction(PC.P.Btc, Chain);
    if (Relay)
      Relay(PC.P);
    ++PC.Attempts;
    Attempts.inc();
    if (PC.Attempts >= Retry.MaxAttempts)
      Exhausted.inc();
    PC.NextRetryTime = Now + backoffDelay(PC.Attempts, Payload);
    ++Resubmitted;
  }
  if (Resubmitted) {
    static obs::Counter &Resubmits = obs::counter("node.resubmit.count");
    Resubmits.inc(Resubmitted);
  }
  return Resubmitted;
}

void Node::updateStoreGauges() {
  if (!Store)
    return;
  static obs::Gauge &WalBytes = obs::gauge("store.wal.bytes");
  static obs::Gauge &DirtyBlocks = obs::gauge("store.dirty.blocks");
  static obs::Gauge &EpochG = obs::gauge("store.epoch");
  WalBytes.set(static_cast<int64_t>(Store->walBytes()));
  DirtyBlocks.set(static_cast<int64_t>(Store->dirtyBlocks()));
  EpochG.set(static_cast<int64_t>(Store->epochNumber()));
}

void Node::persistBlock(const bitcoin::Block &B) {
  if (!Store)
    return;
  // Block bytes are re-derivable from peers, so a failed append is
  // survivable (counted, not fatal): recovery replays a shorter log and
  // heals by resync. Journal writes, by contrast, are durable-ack.
  if (!Store->appendBlock(B.hash().toHex(), B.serialize())) {
    static obs::Counter &Failed = obs::counter("store.block_persist.failed");
    Failed.inc();
    updateStoreGauges();
    return;
  }
  if (Store->dirtyBlocks() >= EpochInterval) {
    if (!flushStoreEpoch()) {
      static obs::Counter &Failed = obs::counter("store.flush.failed");
      Failed.inc();
    }
  }
  updateStoreGauges();
}

Status Node::flushStoreEpoch() {
  if (!Store)
    return Status::success();
  static obs::Histogram &FlushNs = obs::latencyHistogram("store.flush_ns");
  obs::ScopedTimer Timer(FlushNs);

  store::EpochData Data;
  Data.Number = Store->epochNumber() + 1;
  Data.TipHashHex = Chain.tipHash().toHex();
  Data.TipHeight = static_cast<uint32_t>(Chain.height());
  Data.UtxoDigestHex = utxoDigestHex(Chain.utxo());
  for (const auto &[Payload, P] : Journal)
    Data.Journal.emplace_back(Payload, serializePair(P));
  // Unresolved deferred write-throughs (batch server) roll forward into
  // the new snapshot so truncating the WAL cannot lose them.
  Data.Deferred = Store->liveDeferred();
  Data.Utxo = serializeUtxo(Chain.utxo());
  TC_TRY(Store->flushEpoch(Data));
  updateStoreGauges();
  return Status::success();
}

Result<Node::StoreRecoverStats>
Node::openStore(store::Vfs &V, const std::string &Dir,
                uint64_t EpochIntervalBlocks) {
  static obs::Counter &FromDiskC = obs::counter("store.recover.from_disk");
  static obs::Counter &BootstrapC = obs::counter("store.recover.bootstrap");
  static obs::Counter &EpochCorruptC =
      obs::counter("store.recover.epoch_corrupt");
  static obs::Counter &ReplayErrC =
      obs::counter("store.recover.block_replay_errors");
  static obs::Counter &DigestMismatchC =
      obs::counter("store.recover.digest_mismatch");
  static obs::Counter &DigestUnhealedC =
      obs::counter("store.recover.digest_mismatch_unhealed");

  obs::Span Trace("node.openStore");
  EpochInterval = EpochIntervalBlocks == 0 ? 1 : EpochIntervalBlocks;
  TC_UNWRAP(Opened, store::ChainStore::open(V, Dir));
  Store = std::move(Opened);

  StoreRecoverStats Stats;
  const store::OpenStats &OS = Store->openStats();
  if (OS.EpochCorrupt)
    EpochCorruptC.inc();
  Stats.FromDisk = OS.HadEpoch || OS.BlockRecords > 0 || OS.WalRecords > 0;

  if (!Stats.FromDisk) {
    // Fresh store: seed it from the node's current in-memory state
    // (from-genesis bootstrap). The genesis block is derived from the
    // chain parameters, so only heights >= 1 are logged.
    BootstrapC.inc();
    std::vector<std::pair<int, const bitcoin::Block *>> Blocks;
    Chain.forEachBlock([&](const bitcoin::Block &B, int Height, bool) {
      if (Height > 0)
        Blocks.emplace_back(Height, &B);
    });
    std::stable_sort(Blocks.begin(), Blocks.end(),
                     [](const auto &A, const auto &B) {
                       return A.first < B.first;
                     });
    for (const auto &[Height, B] : Blocks) {
      (void)Height;
      TC_TRY(Store->appendBlock(B->hash().toHex(), B->serialize()));
    }
    TC_TRY(flushStoreEpoch());
    Stats.Epoch = Store->epochNumber();
    updateStoreGauges();
    return Stats;
  }

  // Rebuild from disk. Blocks replay through the full validated connect
  // path; when a durable epoch attests a tip, script checks are skipped
  // up to its height and the snapshot's UTXO digest is cross-checked
  // the moment the rebuilt tip matches it.
  FromDiskC.inc();
  const store::EpochData *Epoch = Store->epoch();
  Stats.Epoch = Epoch ? Epoch->Number : 0;

  auto ReplayBlocks = [&](bool AssumeValid) -> bool {
    // Returns whether the digest cross-check held (vacuously true
    // without an epoch or when the tip never reached the epoch tip).
    Stats.BlocksReplayed = 0;
    Stats.BlockReplayErrors = 0;
    if (AssumeValid && Epoch)
      Chain.setAssumeValidHeight(static_cast<int>(Epoch->TipHeight));
    bool DigestOk = true;
    bool DigestChecked = false;
    for (const auto &[HashHex, BlockBytes] : Store->blockRecords()) {
      auto B = bitcoin::Block::deserialize(BlockBytes);
      if (!B || !Chain.submitBlock(*B)) {
        // Undecodable or unconnectable records (e.g. children of a
        // crash-truncated parent) are counted and skipped; resync from
        // peers heals the gap.
        ++Stats.BlockReplayErrors;
        continue;
      }
      ++Stats.BlocksReplayed;
      if (Epoch && !DigestChecked &&
          Chain.tipHash().toHex() == Epoch->TipHashHex) {
        DigestChecked = true;
        DigestOk = utxoDigestHex(Chain.utxo()) == Epoch->UtxoDigestHex;
      }
    }
    Chain.setAssumeValidHeight(-1);
    return DigestOk;
  };

  if (!ReplayBlocks(/*AssumeValid=*/true)) {
    // The snapshot's UTXO digest disagrees with the assume-valid
    // replay: distrust the snapshot and re-validate everything.
    DigestMismatchC.inc();
    Stats.DigestMismatch = true;
    Chain = bitcoin::Blockchain(Chain.params());
#ifdef TYPECOIN_AUDIT
    analysis::installChainAuditor(Chain);
#endif
    if (!ReplayBlocks(/*AssumeValid=*/false)) {
      // Full validation accepted the blocks yet the digest still
      // disagrees: the snapshot itself is wrong. The fully-validated
      // chain wins; flag loudly.
      DigestUnhealedC.inc();
    }
  }
  ReplayErrC.inc(Stats.BlockReplayErrors);

  // Registration journal: snapshot entries first, then WAL records
  // appended since the snapshot (idempotent map inserts).
  Journal.clear();
  auto RestorePair = [&](const std::string &Key, const Bytes &Payload) {
    auto P = deserializePair(Payload);
    if (!P) {
      static obs::Counter &BadPairs =
          obs::counter("store.recover.bad_pair_records");
      BadPairs.inc();
      return;
    }
    Journal[Key] = P.takeValue();
  };
  if (Epoch)
    for (const auto &[Key, Payload] : Epoch->Journal)
      RestorePair(Key, Payload);
  for (const store::WalRecord &Rec : Store->walRecords())
    if (Rec.Kind == store::WalKind::PairAdd)
      RestorePair(Rec.Key, Rec.Payload);
  Stats.JournalRestored = Journal.size();

  // Volatile state rebuilds exactly as in recover().
  TC_UNWRAP(Rebuild, rebuildVolatileState());
  Stats.Rebuild = Rebuild;
  updateStoreGauges();
  return Stats;
}

Result<bool> Node::openStoreFromEnv() {
  const char *Dir = std::getenv("TYPECOIN_STORE_DIR");
  if (!Dir || !*Dir)
    return false;
  OwnedVfs.reset(new store::PosixVfs());
  store::Vfs *V = OwnedVfs.get();
  if (const char *Faults = std::getenv("TYPECOIN_STORE_FAULTS");
      Faults && *Faults) {
    TC_UNWRAP(Plan, store::parseFaultPlan(Faults));
    auto FV = std::make_unique<store::FaultVfs>(*OwnedVfs);
    FV->setPlan(Plan);
    OwnedFaultVfs = std::move(FV);
    V = OwnedFaultVfs.get();
  }
  TC_TRY(openStore(*V, Dir));
  return true;
}

int Node::attemptsOf(const std::string &PayloadHex) const {
  auto It = Pending.find(PayloadHex);
  return It == Pending.end() ? 0 : It->second.Attempts;
}

const Registration *
Node::registrationOf(const std::string &PayloadHex) const {
  auto It = Registered.find(PayloadHex);
  return It == Registered.end() ? nullptr : &It->second;
}

int Node::confirmations(const std::string &TxidHex) const {
  auto Id = txidFromHex(TxidHex);
  if (!Id)
    return 0;
  return Chain.confirmations(*Id);
}

} // namespace tc
} // namespace typecoin
