//===- typecoin/node.cpp - A full Typecoin node --------------------------------===//

#include "typecoin/node.h"

#include "analysis/audit.h"
#include "analysis/lint.h"

#include <algorithm>

namespace typecoin {
namespace tc {

Result<bitcoin::TxId> txidFromHex(const std::string &Hex) {
  TC_UNWRAP(Raw, fromHexFixed<32>(Hex));
  std::reverse(Raw.begin(), Raw.end());
  bitcoin::TxId Id;
  Id.Hash = Raw;
  return Id;
}

Result<bool> ChainOracle::isSpent(const std::string &Txid,
                                  uint32_t Index) const {
  TC_UNWRAP(Id, txidFromHex(Txid));
  return Chain.isSpent(bitcoin::OutPoint{Id, Index});
}

bitcoin::ChainParams Node::defaultParams() {
  bitcoin::ChainParams Params;
  Params.CoinbaseMaturity = 1;
  return Params;
}

Node::Node(bitcoin::ChainParams Params, int RegistrationDepth)
    : Chain(std::move(Params)), RegistrationDepth(RegistrationDepth) {
#ifdef TYPECOIN_AUDIT
  // Debug builds re-derive the ledger invariants after every block
  // connect/disconnect (analysis/audit.h).
  analysis::installChainAuditor(Chain);
#endif
}

Status Node::submitPair(const Pair &P) {
  // Reject-early gate: a cheap structural lint (affine usage, script
  // standardness, embedding shape) before the full correspondence and
  // proof checks. Only findings the full pipeline is guaranteed to
  // reject — across the primary and every fallback — turn into errors.
  analysis::LintOptions LintOpts;
  LintOpts.RequireStandard = Pool.policy().RequireStandard;
  TC_TRY(analysis::lintGate(P, LintOpts));

  TC_TRY(checkCorrespondence(P.Tc, P.Btc));
  // Provisional Typecoin check against the present chain view; the
  // authoritative check happens at confirmation time.
  ChainOracle Oracle(Chain, Chain.tipTime());
  if (auto R = TcState.checkTransaction(P.Tc, Oracle); !R) {
    // A currently-invalid primary is still relayable when some fallback
    // is valid (Section 5); otherwise reject early.
    if (auto Sel = TcState.selectValid(P.Tc, Oracle); !Sel)
      return R.takeError().withContext("typecoin pre-check");
  }
  TC_TRY(Pool.acceptTransaction(P.Btc, Chain));
  PendingTc[P.Btc.txid().toHex()] = P.Tc;
  return Status::success();
}

Status Node::submitPlain(const bitcoin::Transaction &Btc) {
  return Pool.acceptTransaction(Btc, Chain);
}

Result<std::vector<std::string>>
Node::mineBlock(const crypto::KeyId &Payout, uint32_t Time) {
  TC_UNWRAP(Block, bitcoin::mineAndSubmit(Chain, Pool, Payout, Time));
  (void)Block; // Registration scans all pending carriers, not just this
               // block's.
  std::vector<std::string> Spoiled;
  // Register Typecoin transactions whose carriers have reached the
  // registration depth, ordered by chain position (height, then index
  // within the block) so dependencies resolve first.
  std::vector<std::pair<std::pair<int, size_t>, std::string>> Ready;
  for (const auto &[Txid, Tc] : PendingTc) {
    auto Id = txidFromHex(Txid);
    if (!Id)
      continue;
    if (Chain.confirmations(*Id) < RegistrationDepth)
      continue;
    auto Loc = Chain.locate(*Id);
    if (!Loc)
      continue;
    Ready.push_back({{Loc->Height, Loc->IndexInBlock}, Txid});
  }
  std::sort(Ready.begin(), Ready.end());
  for (const auto &[Pos, Txid] : Ready) {
    auto It = PendingTc.find(Txid);
    auto Id = txidFromHex(Txid);
    auto Loc = Chain.locate(*Id);
    // Conditions are judged at the transaction's own block (Section 5:
    // "unambiguous evidence ... for any particular transaction in the
    // blockchain").
    ChainOracle Oracle(Chain, Loc->BlockTime);
    TC_UNWRAP(Selected, TcState.applyTransaction(It->second, Txid, Oracle));
    if (Selected > It->second.Fallbacks.size())
      Spoiled.push_back(Txid);
    PendingTc.erase(It);
  }
#ifdef TYPECOIN_AUDIT
  TC_TRY(analysis::auditMempool(Pool, Chain));
  TC_TRY(analysis::auditState(TcState));
#endif
  return Spoiled;
}

int Node::confirmations(const std::string &TxidHex) const {
  auto Id = txidFromHex(TxidHex);
  if (!Id)
    return 0;
  return Chain.confirmations(*Id);
}

} // namespace tc
} // namespace typecoin
