//===- typecoin/node.cpp - A full Typecoin node --------------------------------===//

#include "typecoin/node.h"

#include "analysis/audit.h"
#include "analysis/lint.h"
#include "analysis/symcheck.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include <algorithm>

namespace typecoin {
namespace tc {

Result<bitcoin::TxId> txidFromHex(const std::string &Hex) {
  TC_UNWRAP(Raw, fromHexFixed<32>(Hex));
  std::reverse(Raw.begin(), Raw.end());
  bitcoin::TxId Id;
  Id.Hash = Raw;
  return Id;
}

Result<bool> ChainOracle::isSpent(const std::string &Txid,
                                  uint32_t Index) const {
  TC_UNWRAP(Id, txidFromHex(Txid));
  return Chain.isSpent(bitcoin::OutPoint{Id, Index});
}

std::string payloadKey(const Pair &P) { return toHex(P.Tc.hash()); }

/// Scan blocks [From, To] of the best chain (inclusive), registering
/// any transaction that carries the payload of a journaled pair and is
/// not yet registered. Shared by incremental sync and full replay.
static Result<std::vector<std::string>>
scanRange(const bitcoin::Blockchain &Chain, const PairJournal &Journal,
          State &TcState, std::map<std::string, Registration> &Registered,
          int From, int To) {
  std::vector<std::string> Spoiled;
  for (int H = From; H <= To; ++H) {
    auto Hash = Chain.blockHashAt(H);
    if (!Hash)
      continue;
    const bitcoin::Block *B = Chain.blockByHash(*Hash);
    if (!B)
      continue;
    for (const bitcoin::Transaction &Tx : B->Txs) {
      if (Tx.isCoinbase())
        continue;
      auto Meta = extractMetadata(Tx);
      if (!Meta)
        continue;
      std::string Payload = toHex(*Meta);
      auto JIt = Journal.find(Payload);
      if (JIt == Journal.end() || Registered.count(Payload))
        continue;
      // The confirmed carrier may be a signature-malleated twin of the
      // one we broadcast (different txid, same effect); correspondence
      // only constrains what the payload actually commits to, so it
      // accepts the twin and rejects unrelated transactions that merely
      // embed the same hash.
      if (!checkCorrespondence(JIt->second.Tc, Tx))
        continue;
      std::string TxidHex = Tx.txid().toHex();
      // Conditions are judged at the transaction's own block (Section 5:
      // "unambiguous evidence ... for any particular transaction in the
      // blockchain").
      ChainOracle Oracle(Chain, B->Header.Time);
      TC_UNWRAP(Selected,
                TcState.applyTransaction(JIt->second.Tc, TxidHex, Oracle));
      Registered[Payload] = Registration{TxidHex, *Hash, H};
      if (Selected > JIt->second.Tc.Fallbacks.size())
        Spoiled.push_back(TxidHex);
    }
  }
  return Spoiled;
}

Result<ReplayResult> replayChain(const bitcoin::Blockchain &Chain,
                                 const PairJournal &Journal,
                                 int RegistrationDepth) {
  ReplayResult Out;
  int End = Chain.height() - RegistrationDepth + 1;
  if (End < 1)
    return Out;
  TC_UNWRAP(Spoiled, scanRange(Chain, Journal, Out.TcState, Out.Registered,
                               1, End));
  Out.SpoiledTxids = std::move(Spoiled);
  return Out;
}

bitcoin::ChainParams Node::defaultParams() {
  bitcoin::ChainParams Params;
  Params.CoinbaseMaturity = 1;
  return Params;
}

Node::Node(bitcoin::ChainParams Params, int RegistrationDepth)
    : Chain(std::move(Params)), RegistrationDepth(RegistrationDepth) {
#ifdef TYPECOIN_AUDIT
  // Debug builds re-derive the ledger invariants after every block
  // connect/disconnect (analysis/audit.h).
  analysis::installChainAuditor(Chain);
#endif
}

double Node::backoffDelay(int Attempts) const {
  double Delay = Retry.InitialDelaySeconds;
  for (int I = 1; I < Attempts; ++I) {
    Delay *= Retry.BackoffFactor;
    if (Delay >= Retry.MaxDelaySeconds)
      return Retry.MaxDelaySeconds;
  }
  return std::min(Delay, Retry.MaxDelaySeconds);
}

/// Obs probes for the submission pipeline: one counter per gate outcome
/// plus a latency histogram per stage, so `tcstat` can attribute
/// submit-path time to lint vs correspondence vs the full check.
namespace {
struct SubmitMetrics {
  obs::Counter &Accepted = obs::counter("node.submit.accepted");
  obs::Counter &RejectedLint = obs::counter("node.submit.rejected.lint");
  obs::Counter &RejectedCorrespondence =
      obs::counter("node.submit.rejected.correspondence");
  obs::Counter &RejectedPrecheck =
      obs::counter("node.submit.rejected.precheck");
  obs::Counter &RejectedSym = obs::counter("node.submit.rejected.sym");
  obs::Counter &RejectedMempool =
      obs::counter("node.submit.rejected.mempool");
  obs::Histogram &LintNs = obs::latencyHistogram("node.submit.lint_ns");
  obs::Histogram &EmbedNs = obs::latencyHistogram("node.submit.embed_ns");
  obs::Histogram &PrecheckNs =
      obs::latencyHistogram("node.submit.precheck_ns");

  static SubmitMetrics &get() {
    static SubmitMetrics M;
    return M;
  }
};
} // namespace

Status Node::submitPair(const Pair &P) {
  SubmitMetrics &M = SubmitMetrics::get();
  obs::Span Trace("node.submitPair");
  // Reject-early gate: a cheap structural lint (affine usage, script
  // standardness, embedding shape) before the full correspondence and
  // proof checks. Only findings the full pipeline is guaranteed to
  // reject — across the primary and every fallback — turn into errors.
  {
    obs::ScopedTimer Timer(M.LintNs);
    analysis::LintOptions LintOpts;
    LintOpts.RequireStandard = Pool.policy().RequireStandard;
    if (auto S = analysis::lintGate(P, LintOpts); !S) {
      M.RejectedLint.inc();
      return S;
    }
  }

  // Opt-in symbolic gate (TYPECOIN_SYMCHECK): tcsym over the carrier
  // output scripts plus the whole-ledger affine dataflow pass. A no-op
  // (single env read) when the gate is off.
  if (auto S = analysis::symGate(P, Chain); !S) {
    M.RejectedSym.inc();
    return S;
  }

  {
    obs::ScopedTimer Timer(M.EmbedNs);
    if (auto S = checkCorrespondence(P.Tc, P.Btc); !S) {
      M.RejectedCorrespondence.inc();
      return S;
    }
  }
  // Provisional Typecoin check against the present chain view; the
  // authoritative check happens at confirmation time.
  ChainOracle Oracle(Chain, Chain.tipTime());
  {
    obs::ScopedTimer Timer(M.PrecheckNs);
    if (auto R = TcState.checkTransaction(P.Tc, Oracle); !R) {
      // A currently-invalid primary is still relayable when some fallback
      // is valid (Section 5); otherwise reject early.
      if (auto Sel = TcState.selectValid(P.Tc, Oracle); !Sel) {
        M.RejectedPrecheck.inc();
        return R.takeError().withContext("typecoin pre-check");
      }
    }
  }
  if (auto S = Pool.acceptTransaction(P.Btc, Chain); !S) {
    M.RejectedMempool.inc();
    return S;
  }

  std::string Payload = payloadKey(P);
  Journal[Payload] = P;
  if (!Registered.count(Payload)) {
    PendingCarrier PC;
    PC.P = P;
    PC.Attempts = 1;
    PC.NextRetryTime =
        static_cast<double>(Chain.tipTime()) + backoffDelay(1);
    Pending[Payload] = std::move(PC);
  }
  M.Accepted.inc();
  return Status::success();
}

Status Node::submitPlain(const bitcoin::Transaction &Btc) {
  return Pool.acceptTransaction(Btc, Chain);
}

Result<std::vector<std::string>> Node::syncRegistrations() {
  int End = Chain.height() - RegistrationDepth + 1;

  // Deep-reorg detection: the scan frontier or any registration's block
  // is no longer on the best chain. Shallow reorgs (entirely above the
  // frontier) never trip this — matured history is stable by
  // construction unless a reorg crosses registrationDepth.
  bool Diverged = false;
  if (LastScannedHeight > 0) {
    auto H = Chain.blockHashAt(LastScannedHeight);
    if (!H || !(*H == LastScannedHash))
      Diverged = true;
  }
  if (!Diverged)
    for (const auto &[Payload, Reg] : Registered) {
      auto H = Chain.blockHashAt(Reg.Height);
      if (!H || !(*H == Reg.InBlock)) {
        Diverged = true;
        break;
      }
    }

  std::vector<std::string> Spoiled;
  if (Diverged) {
    // Rewritten history: rather than patching state whose premises are
    // gone, rebuild the whole Typecoin view from genesis against the
    // new best chain. Anything whose carrier fell out of the chain goes
    // back to pending for resubmission.
    static obs::Counter &DeepReorgs = obs::counter("node.deep_reorg.count");
    DeepReorgs.inc();
    obs::Span Trace("node.replayChain");
    TC_UNWRAP(R, replayChain(Chain, Journal, RegistrationDepth));
    TcState = std::move(R.TcState);
    Registered = std::move(R.Registered);
    Spoiled = std::move(R.SpoiledTxids);
    Pool.revalidate(Chain);
  } else if (End > LastScannedHeight) {
    TC_UNWRAP(S, scanRange(Chain, Journal, TcState, Registered,
                           LastScannedHeight + 1, End));
    Spoiled = std::move(S);
  }

  // Advance the frontier and reconcile the pending queue with what is
  // now registered (or no longer is).
  if (End >= 1) {
    if (auto H = Chain.blockHashAt(End)) {
      LastScannedHeight = End;
      LastScannedHash = *H;
    }
  } else {
    LastScannedHeight = 0;
  }
  for (const auto &[Payload, Reg] : Registered)
    Pending.erase(Payload);
  if (Diverged)
    for (const auto &[Payload, P] : Journal) {
      if (Registered.count(Payload) || Pending.count(Payload))
        continue;
      PendingCarrier PC;
      PC.P = P;
      PC.Attempts = 0;
      PC.NextRetryTime = 0; // Eligible at the next tick.
      Pending[Payload] = std::move(PC);
    }
  return Spoiled;
}

Result<std::vector<std::string>>
Node::mineBlock(const crypto::KeyId &Payout, uint32_t Time) {
  TC_UNWRAP(Block, bitcoin::mineAndSubmit(Chain, Pool, Payout, Time));
  (void)Block; // Registration scans matured heights, not just this block.
  TC_UNWRAP(Spoiled, syncRegistrations());
#ifdef TYPECOIN_AUDIT
  TC_TRY(analysis::auditMempool(Pool, Chain));
  TC_TRY(analysis::auditState(TcState));
#endif
  return Spoiled;
}

Result<std::vector<std::string>> Node::submitBlock(const bitcoin::Block &B) {
  TC_TRY(Chain.submitBlock(B));
  // The block may have extended the tip or triggered a reorganization;
  // either way the pool must be consistent with the new best chain.
  Pool.revalidate(Chain);
  TC_UNWRAP(Spoiled, syncRegistrations());
#ifdef TYPECOIN_AUDIT
  TC_TRY(analysis::auditMempool(Pool, Chain));
  TC_TRY(analysis::auditState(TcState));
#endif
  return Spoiled;
}

Result<Node::RecoverStats> Node::recover() {
  static obs::Counter &Runs = obs::counter("node.recover.runs");
  static obs::Counter &RegisteredC = obs::counter("node.recover.registered");
  static obs::Counter &RequeuedC = obs::counter("node.recover.requeued");
  static obs::Counter &ReadmittedC =
      obs::counter("node.recover.mempool_readmitted");
  static obs::Histogram &RecoverNs =
      obs::latencyHistogram("node.recover_ns");
  Runs.inc();
  obs::ScopedTimer Timer(RecoverNs);
  obs::Span Trace("node.recover");

  RecoverStats Stats;
  Stats.JournalSize = Journal.size();

  // Volatile state is gone: the mempool, the pending queue, and every
  // in-memory Typecoin index. The chain (block store) and the pair
  // journal are the durable inputs; rebuild everything from them.
  Stats.MempoolDropped = Pool.clear();
  Pending.clear();
  Registered.clear();
  TcState = State();
  LastScannedHeight = 0;
  LastScannedHash = bitcoin::BlockHash{};

  TC_UNWRAP(R, replayChain(Chain, Journal, RegistrationDepth));
  TcState = std::move(R.TcState);
  Registered = std::move(R.Registered);
  int End = Chain.height() - RegistrationDepth + 1;
  if (End >= 1) {
    if (auto H = Chain.blockHashAt(End)) {
      LastScannedHeight = End;
      LastScannedHash = *H;
    }
  }
  Stats.Registered = Registered.size();

  // Unconfirmed journal entries go back into the mempool (best effort —
  // their inputs may have been spent while we were down) and the
  // resubmission queue.
  for (const auto &[Payload, P] : Journal) {
    if (Registered.count(Payload))
      continue;
    if (Pool.acceptTransaction(P.Btc, Chain))
      ++Stats.MempoolReadmitted;
    PendingCarrier PC;
    PC.P = P;
    PC.Attempts = 0;
    PC.NextRetryTime = 0;
    Pending[Payload] = std::move(PC);
    ++Stats.Requeued;
  }
  RegisteredC.inc(Stats.Registered);
  RequeuedC.inc(Stats.Requeued);
  ReadmittedC.inc(Stats.MempoolReadmitted);
#ifdef TYPECOIN_AUDIT
  TC_TRY(analysis::auditMempool(Pool, Chain));
  TC_TRY(analysis::auditState(TcState));
#endif
  return Stats;
}

size_t Node::tick(double Now) {
  size_t Resubmitted = 0;
  for (auto &[Payload, PC] : Pending) {
    if (PC.Attempts >= Retry.MaxAttempts)
      continue; // Gave up; the pair stays journaled but is not retried.
    if (Now < PC.NextRetryTime)
      continue;
    // Re-admission can fail transiently (e.g. inputs held by a
    // conflicting pool entry that a reorg will evict); count the
    // attempt either way so backoff still applies.
    (void)Pool.acceptTransaction(PC.P.Btc, Chain);
    if (Relay)
      Relay(PC.P);
    ++PC.Attempts;
    PC.NextRetryTime = Now + backoffDelay(PC.Attempts);
    ++Resubmitted;
  }
  if (Resubmitted) {
    static obs::Counter &Resubmits = obs::counter("node.resubmit.count");
    Resubmits.inc(Resubmitted);
  }
  return Resubmitted;
}

int Node::attemptsOf(const std::string &PayloadHex) const {
  auto It = Pending.find(PayloadHex);
  return It == Pending.end() ? 0 : It->second.Attempts;
}

const Registration *
Node::registrationOf(const std::string &PayloadHex) const {
  auto It = Registered.find(PayloadHex);
  return It == Registered.end() ? nullptr : &It->second;
}

int Node::confirmations(const std::string &TxidHex) const {
  auto Id = txidFromHex(TxidHex);
  if (!Id)
    return 0;
  return Chain.confirmations(*Id);
}

} // namespace tc
} // namespace typecoin
