//===- typecoin/opentx.cpp - Open transactions ---------------------------------===//

#include "typecoin/opentx.h"

namespace typecoin {
namespace tc {

crypto::Digest32 OpenTransaction::templateDigest() const {
  // Erase the holes, then hash the canonical serialization.
  Transaction Erased = Template;
  if (OpenInput) {
    if (*OpenInput < Erased.Inputs.size()) {
      Erased.Inputs[*OpenInput].SourceTxid.clear();
      Erased.Inputs[*OpenInput].SourceIndex = 0;
    }
  }
  if (OpenOutput && *OpenOutput < Erased.Outputs.size())
    Erased.Outputs[*OpenOutput].Owner = crypto::PublicKey();

  Writer W;
  W.writeString("typecoin-open-transaction");
  W.writeU8(OpenInput ? 1 : 0);
  W.writeU64(OpenInput ? static_cast<uint64_t>(*OpenInput) : 0);
  W.writeU8(OpenOutput ? 1 : 0);
  W.writeU64(OpenOutput ? static_cast<uint64_t>(*OpenOutput) : 0);
  // Serialize fields manually: the owner hole may be an invalid key, so
  // reuse the pieces rather than Transaction::serialize.
  Erased.LocalBasis.serialize(W);
  logic::writeProp(W, Erased.Grant);
  W.writeCompactSize(Erased.Inputs.size());
  for (const Input &In : Erased.Inputs) {
    W.writeString(In.SourceTxid);
    W.writeU32(In.SourceIndex);
    logic::writeProp(W, In.Type);
    W.writeU64(static_cast<uint64_t>(In.Amount));
  }
  W.writeCompactSize(Erased.Outputs.size());
  for (size_t I = 0; I < Erased.Outputs.size(); ++I) {
    const Output &Out = Erased.Outputs[I];
    logic::writeProp(W, Out.Type);
    W.writeU64(static_cast<uint64_t>(Out.Amount));
    bool IsHole = OpenOutput && *OpenOutput == I;
    W.writeVarBytes(IsHole ? Bytes() : Out.Owner.serialize());
  }
  return crypto::sha256d(W.buffer());
}

void OpenTransaction::sign(const crypto::PrivateKey &Issuer) {
  IssuerBlob = makeAffirmationBlob(Issuer, templateDigest());
}

Status OpenTransaction::verifyIssuer(const crypto::KeyId &Issuer) const {
  return verifyAffirmationBlob(Issuer.toHex(), templateDigest(),
                               IssuerBlob);
}

Result<Transaction>
OpenTransaction::fill(const std::string &SourceTxid, uint32_t SourceIndex,
                      const crypto::PublicKey &Receiver) const {
  Transaction Filled = Template;
  if (OpenInput) {
    if (*OpenInput >= Filled.Inputs.size())
      return makeError("opentx: open-input index out of range");
    Filled.Inputs[*OpenInput].SourceTxid = SourceTxid;
    Filled.Inputs[*OpenInput].SourceIndex = SourceIndex;
  }
  if (OpenOutput) {
    if (*OpenOutput >= Filled.Outputs.size())
      return makeError("opentx: open-output index out of range");
    if (!Receiver.isValid())
      return makeError("opentx: receiver key is invalid");
    Filled.Outputs[*OpenOutput].Owner = Receiver;
  }
  return Filled;
}

} // namespace tc
} // namespace typecoin
