//===- typecoin/builder.cpp - High-level transaction construction -------------===//

#include "typecoin/builder.h"

namespace typecoin {
namespace tc {

Result<Pair> buildPair(const Transaction &Tc, Wallet &W,
                       const bitcoin::Blockchain &Chain,
                       const BuildOptions &Options) {
  // Amount accounting: typecoin inputs bring In.Amount each; outputs
  // consume Out.Amount; the fee must be covered on top.
  bitcoin::Amount Have = 0;
  for (const Input &In : Tc.Inputs)
    Have += In.Amount;
  bitcoin::Amount Need = Options.Fee;
  for (const Output &Out : Tc.Outputs)
    Need += Out.Amount;
  if (Options.Scheme == EmbedScheme::BogusOutput)
    Need += bitcoin::DustThreshold;

  // Select trivial inputs for the shortfall, avoiding the typecoin
  // inputs themselves.
  std::set<std::string> UsedSources;
  for (const Input &In : Tc.Inputs)
    UsedSources.insert(In.SourceTxid + ":" + std::to_string(In.SourceIndex));
  std::vector<bitcoin::OutPoint> Extra;
  bitcoin::Amount Selected = 0;
  if (Have < Need) {
    for (const Wallet::Spendable &S : W.findSpendable(Chain)) {
      std::string Key =
          S.Point.Tx.toHex() + ":" + std::to_string(S.Point.Index);
      if (UsedSources.count(Key))
        continue;
      if (Options.AvoidTypedOutputsOf) {
        logic::PropPtr Type = Options.AvoidTypedOutputsOf->outputType(
            S.Point.Tx.toHex(), S.Point.Index);
        if (Type->Kind != logic::Prop::Tag::One)
          continue;
      }
      Extra.push_back(S.Point);
      Selected += S.Value;
      if (Have + Selected >= Need)
        break;
    }
    if (Have + Selected < Need)
      return makeError("builder: insufficient funds: need " +
                       std::to_string(Need - Have) + " more satoshi");
  }

  // Change back to a wallet key when above dust.
  std::vector<bitcoin::TxOut> ExtraOuts;
  bitcoin::Amount Change = Have + Selected - Need;
  if (Change >= bitcoin::DustThreshold) {
    bitcoin::TxOut ChangeOut;
    ChangeOut.Value = Change;
    ChangeOut.ScriptPubKey = bitcoin::makeP2PKH(W.newKey().id());
    ExtraOuts.push_back(std::move(ChangeOut));
  }

  TC_UNWRAP(Btc, embedTransaction(Tc, Options.Scheme, Extra, ExtraOuts));
  TC_TRY(W.signTransaction(Btc, Chain));
  return Pair{Tc, Btc};
}

Result<logic::ProofPtr> makeRoutingProof(const Transaction &T) {
  if (T.Inputs.size() != T.Outputs.size())
    return makeError("routing: input and output counts differ");
  size_t N = T.Inputs.size();
  if (N == 0)
    return makeError("routing: transaction has no inputs");

  // Match each output to a distinct input of equal type (greedy works
  // because equality is an equivalence: any bijection exists iff the
  // type multisets agree).
  std::vector<size_t> SourceOf(N); // Output I takes input SourceOf[I].
  std::vector<bool> Used(N, false);
  for (size_t O = 0; O < N; ++O) {
    bool Found = false;
    for (size_t I = 0; I < N; ++I) {
      if (Used[I] || !logic::propEqual(T.Outputs[O].Type, T.Inputs[I].Type))
        continue;
      SourceOf[O] = I;
      Used[I] = true;
      Found = true;
      break;
    }
    if (!Found)
      return makeError("routing: no unmatched input carries output " +
                       std::to_string(O) + "'s type " +
                       logic::printProp(T.Outputs[O].Type));
  }

  // \x : C (x) (A (x) R).
  //   let (c, ar) = x in let (a, r) = ar in
  //   let (a1, rest1) = a in ... — rebuild the outputs' tensor from the
  //   matched inputs. The grant c and receipts r drop by weakening.
  using namespace logic;
  auto Var = [](const std::string &S) { return mVar(S); };
  auto InName = [](size_t I) { return "a" + std::to_string(I + 1); };

  ProofPtr Body;
  {
    std::vector<ProofPtr> Components;
    for (size_t O = 0; O < N; ++O)
      Components.push_back(Var(InName(SourceOf[O])));
    ProofPtr Tensor = Components.back();
    for (size_t I = Components.size() - 1; I-- > 0;)
      Tensor = mTensorPair(Components[I], Tensor);
    Body = Tensor;
  }
  if (N > 1) {
    // Destructure a into a1 .. aN, outward-in.
    for (size_t I = N - 1; I-- > 0;) {
      std::string Src = I == 0 ? "a" : "rest" + std::to_string(I);
      std::string Left = InName(I);
      std::string Right =
          (I + 2 == N) ? InName(N - 1) : "rest" + std::to_string(I + 1);
      Body = mTensorLet(Left, Right, Var(Src), Body);
    }
  }

  PropPtr CAR = pTensor(T.Grant, pTensor(T.inputTensor(), T.receiptTensor()));
  ProofPtr Inner = mTensorLet(N == 1 ? InName(0) : "a", "r", Var("ar"), Body);
  ProofPtr Outer = mTensorLet("c", "ar", Var("x"), Inner);
  return mLam("x", CAR, Outer);
}

Result<bitcoin::Transaction>
crackOutputs(const std::vector<bitcoin::OutPoint> &Points, Wallet &W,
             const bitcoin::Blockchain &Chain, const crypto::KeyId &PayTo,
             bitcoin::Amount Fee) {
  bitcoin::Transaction Btc;
  bitcoin::Amount Total = 0;
  for (const bitcoin::OutPoint &Point : Points) {
    const bitcoin::Coin *C = Chain.utxo().find(Point);
    if (!C)
      return makeError("crack: txout " + Point.toString() +
                       " is not unspent");
    Total += C->Out.Value;
    Btc.Inputs.push_back(bitcoin::TxIn{Point, bitcoin::Script(), 0xffffffff});
  }
  if (Total <= Fee)
    return makeError("crack: outputs do not cover the fee");
  bitcoin::TxOut Out;
  Out.Value = Total - Fee;
  Out.ScriptPubKey = bitcoin::makeP2PKH(PayTo);
  Btc.Outputs.push_back(std::move(Out));
  TC_TRY(W.signTransaction(Btc, Chain));
  return Btc;
}

} // namespace tc
} // namespace typecoin
