//===- typecoin/newcoin.cpp - The Section 6 "newcoins" currency ---------------===//

#include "typecoin/newcoin.h"

#include <cassert>

namespace typecoin {
namespace newcoin {

using namespace logic;
using lf::ConstName;

Vocab Vocab::resolved(const std::string &Txid) const {
  Vocab Out;
  Out.Coin = Coin.resolved(Txid);
  Out.Merge = Merge.resolved(Txid);
  Out.Split = Split.resolved(Txid);
  Out.Appoint = Appoint.resolved(Txid);
  Out.IsBanker = IsBanker.resolved(Txid);
  Out.Confirm = Confirm.resolved(Txid);
  Out.Print = Print.resolved(Txid);
  Out.Issue = Issue.resolved(Txid);
  return Out;
}

logic::PropPtr coin(const Vocab &V, lf::TermPtr N) {
  return pAtom(lf::tApp(lf::tConst(V.Coin), std::move(N)));
}

logic::PropPtr coin(const Vocab &V, uint64_t N) {
  return coin(V, lf::nat(N));
}

logic::PropPtr print(const Vocab &V, uint64_t N) {
  return pAtom(lf::tApp(lf::tConst(V.Print), lf::nat(N)));
}

logic::PropPtr appoint(const Vocab &V, const crypto::KeyId &K, uint64_t T) {
  return pAtom(lf::tApps(lf::tConst(V.Appoint),
                         {lf::principal(K.toHex()), lf::nat(T)}));
}

logic::PropPtr isBanker(const Vocab &V, const crypto::KeyId &K,
                        uint64_t T) {
  return pAtom(lf::tApps(lf::tConst(V.IsBanker),
                         {lf::principal(K.toHex()), lf::nat(T)}));
}

logic::PropPtr plusWitnessProp(uint64_t N, uint64_t M, uint64_t P) {
  return pExists(lf::plusType(lf::nat(N), lf::nat(M), lf::nat(P)), pOne());
}

logic::ProofPtr plusWitnessProof(uint64_t N, uint64_t M) {
  return mPack(plusWitnessProp(N, M, N + M), lf::plusProof(N, M), mOne());
}

Vocab makeBasis(logic::Basis &Out, const crypto::KeyId &President) {
  Vocab V;
  V.Coin = ConstName::local("coin");
  V.Merge = ConstName::local("merge");
  V.Split = ConstName::local("split");
  V.Appoint = ConstName::local("appoint");
  V.IsBanker = ConstName::local("is_banker");
  V.Confirm = ConstName::local("confirm");
  V.Print = ConstName::local("print");
  V.Issue = ConstName::local("issue");

  auto Check = [](Status S) {
    assert(S.hasValue() && "newcoin basis construction must succeed");
    (void)S;
  };

  // coin : nat -> prop (and print, with the same kind).
  Check(Out.declareFamily(V.Coin, lf::kPi(lf::natType(), lf::kProp())));

  // Under forall N. forall M. forall P: N = #2, M = #1, P = #0.
  auto CoinAt = [&](unsigned Index) {
    return pAtom(lf::tApp(lf::tConst(V.Coin), lf::var(Index)));
  };
  PropPtr PlusWitness = pExists(
      lf::plusType(lf::var(2), lf::var(1), lf::var(0)), pOne());

  // merge : forall N,M,P. (exists x: plus N M P. 1) -o
  //           coin N (x) coin M -o coin P.
  PropPtr MergeRule = pForall(
      lf::natType(),
      pForall(lf::natType(),
              pForall(lf::natType(),
                      pLolli(PlusWitness,
                             pLolli(pTensor(CoinAt(2), CoinAt(1)),
                                    CoinAt(0))))));
  Check(Out.declareProp(V.Merge, MergeRule));

  // split : forall N,M,P. (exists x: plus N M P. 1) -o
  //           coin P -o coin N (x) coin M.
  PropPtr SplitRule = pForall(
      lf::natType(),
      pForall(lf::natType(),
              pForall(lf::natType(),
                      pLolli(PlusWitness,
                             pLolli(CoinAt(0),
                                    pTensor(CoinAt(2), CoinAt(1)))))));
  Check(Out.declareProp(V.Split, SplitRule));

  // appoint, is_banker : principal -> time -> prop.
  lf::KindPtr PrincipalTime =
      lf::kPi(lf::principalType(), lf::kPi(lf::timeType(), lf::kProp()));
  Check(Out.declareFamily(V.Appoint, PrincipalTime));
  Check(Out.declareFamily(V.IsBanker, PrincipalTime));

  // confirm : forall K, t. <President>(appoint K t) -o is_banker K t.
  auto AppliedAt = [&](const ConstName &Head) {
    return pAtom(lf::tApps(lf::tConst(Head), {lf::var(1), lf::var(0)}));
  };
  PropPtr ConfirmRule = pForall(
      lf::principalType(),
      pForall(lf::timeType(),
              pLolli(pSays(lf::principal(President.toHex()),
                           AppliedAt(V.Appoint)),
                     AppliedAt(V.IsBanker))));
  Check(Out.declareProp(V.Confirm, ConfirmRule));

  // print : nat -> prop.
  Check(Out.declareFamily(V.Print, lf::kPi(lf::natType(), lf::kProp())));

  // issue : forall K, t, N. is_banker K t -o <K>(print N) -o
  //           if(before(t), coin N).
  // Under K = #2, t = #1, N = #0.
  PropPtr IssueRule = pForall(
      lf::principalType(),
      pForall(
          lf::timeType(),
          pForall(
              lf::natType(),
              pLolli(pAtom(lf::tApps(lf::tConst(V.IsBanker),
                                     {lf::var(2), lf::var(1)})),
                     pLolli(pSays(lf::var(2),
                                  pAtom(lf::tApp(lf::tConst(V.Print),
                                                 lf::var(0)))),
                            pIf(cBefore(lf::var(1)),
                                pAtom(lf::tApp(lf::tConst(V.Coin),
                                               lf::var(0)))))))));
  Check(Out.declareProp(V.Issue, IssueRule));
  return V;
}

logic::ProofPtr mergeProof(const Vocab &V, uint64_t N, uint64_t M,
                           logic::ProofPtr CN, logic::ProofPtr CM) {
  ProofPtr Rule = mAllApps(mConst(V.Merge),
                           {lf::nat(N), lf::nat(M), lf::nat(N + M)});
  return mApp(mApp(Rule, plusWitnessProof(N, M)),
              mTensorPair(std::move(CN), std::move(CM)));
}

logic::ProofPtr splitProof(const Vocab &V, uint64_t N, uint64_t M,
                           logic::ProofPtr CP) {
  ProofPtr Rule = mAllApps(mConst(V.Split),
                           {lf::nat(N), lf::nat(M), lf::nat(N + M)});
  return mApp(mApp(Rule, plusWitnessProof(N, M)), std::move(CP));
}

logic::PropPtr purchaseOrder(const Vocab &V, bitcoin::Amount NBtc,
                             const crypto::KeyId &Deposit,
                             const std::string &RTxid, uint32_t RIndex,
                             uint64_t NNc) {
  return pLolli(pReceipt(pOne(), static_cast<uint64_t>(NBtc),
                         lf::principal(Deposit.toHex())),
                pIf(cUnspent(RTxid, RIndex), print(V, NNc)));
}

logic::ProofPtr figure3Proof(const Vocab &V, const crypto::KeyId &Banker,
                             uint64_t Term, uint64_t NNc,
                             const std::string &RTxid, uint32_t RIndex,
                             logic::ProofPtr P, logic::ProofPtr R,
                             logic::ProofPtr B) {
  lf::TermPtr BankerK = lf::principal(Banker.toHex());
  CondPtr Unspent = cUnspent(RTxid, RIndex);
  CondPtr Merged = cAnd(Unspent, cBefore(Term));

  // saybind f <- p in sayreturn_Banker(f r).
  ProofPtr X = mSayBind("f", std::move(P),
                        mSayReturn(BankerK, mApp(mVar("f"), std::move(R))));
  // let x <- X in let y <- if/say(x) in ... — `let` is the derived form
  // built from lambda and application (paper, Figure 3 caption).
  // issue Banker T NNc b z.
  ProofPtr IssueApp = mApp(
      mApp(mAllApps(mConst(V.Issue),
                    {BankerK, lf::nat(Term), lf::nat(NNc)}),
           std::move(B)),
      mVar("z"));
  ProofPtr Body = mIfBind("z", mIfWeaken(Merged, mVar("y")),
                          mIfWeaken(Merged, IssueApp));
  ProofPtr LetY =
      mApp(mLam("y", pIf(Unspent, pSays(BankerK, print(V, NNc))), Body),
           mIfSay(mVar("x")));
  return mApp(mLam("x", pSays(BankerK, pIf(Unspent, print(V, NNc))), LetY),
              X);
}

} // namespace newcoin
} // namespace typecoin
