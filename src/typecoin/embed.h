//===- typecoin/embed.h - Embedding into Bitcoin transactions ----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overlaying Typecoin transactions atop Bitcoin transactions
/// (Section 3.3, "Metadata in Bitcoin"). The transaction hash must ride
/// inside a standard script; the paper's chosen scheme is the 1-of-2
/// m-of-n multisig, where "one of the public keys is the actual public
/// key, the other 'public key' is the desired metadata. Since the output
/// can be unlocked by satisfying just one of the two keys (the real
/// one), the output can be spent, and its entry in the unspent-txout
/// table can be garbage-collected."
///
/// The rejected bogus-output strategy and a modern OP_RETURN carrier are
/// also implemented, for the UTXO-deadweight experiment (T3).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_EMBED_H
#define TYPECOIN_TYPECOIN_EMBED_H

#include "bitcoin/standard.h"
#include "typecoin/transaction.h"

namespace typecoin {
namespace tc {

/// How the Typecoin hash is carried in the Bitcoin transaction.
enum class EmbedScheme {
  /// The paper's scheme: the first output is a 1-of-2 bare multisig of
  /// [owner key, metadata-as-key]; spendable, so GC-able.
  Multisig1of2,
  /// The rejected strategy: an extra unspendable P2PK output whose
  /// "public key" is the metadata. Permanent UTXO deadweight.
  BogusOutput,
  /// Post-2014 alternative: a zero-value OP_RETURN data carrier.
  NullData,
};

/// Format a 32-byte hash as a 33-byte compressed-pubkey-shaped blob
/// (0x02 prefix), acceptable to the multisig template matcher.
Bytes metadataAsKey(const crypto::Digest32 &Hash);
/// Recover the hash from a metadata key blob.
Result<crypto::Digest32> metadataFromKey(const Bytes &Key);

/// Construct the (unsigned) Bitcoin transaction corresponding to \p Tc:
/// its inputs are the Typecoin inputs' outpoints followed by
/// \p ExtraInputs (trivial type-1 inputs that balance amounts or pay the
/// fee, Section 3.1); its outputs realize the Typecoin outputs' amounts
/// and owners plus \p ExtraOutputs (e.g. bitcoin change), with the hash
/// embedded per \p Scheme. Requires at least one Typecoin output for
/// Multisig1of2.
Result<bitcoin::Transaction>
embedTransaction(const Transaction &Tc, EmbedScheme Scheme,
                 const std::vector<bitcoin::OutPoint> &ExtraInputs = {},
                 const std::vector<bitcoin::TxOut> &ExtraOutputs = {});

/// Extract the embedded Typecoin hash from a Bitcoin transaction
/// (trying all schemes).
Result<crypto::Digest32> extractMetadata(const bitcoin::Transaction &Btc);

/// Verify the correspondence required by Section 3: the Bitcoin
/// transaction's input prefix matches the Typecoin inputs, its output
/// prefix realizes the Typecoin outputs (amount and owner), and the
/// embedded hash equals `Tc.hash()` — and likewise for every fallback,
/// which must "map onto the same Bitcoin transaction" (Section 5).
Status checkCorrespondence(const Transaction &Tc,
                           const bitcoin::Transaction &Btc);

/// Are two Typecoin transactions compatible as primary/fallback — same
/// input txouts, same output principals, same input and output bitcoin
/// amounts (Section 5)?
Status checkFallbackCompatible(const Transaction &Primary,
                               const Transaction &Fallback);

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_EMBED_H
