//===- typecoin/newcoin.h - The Section 6 "newcoins" currency ----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's concrete demonstration (Section 6): a currency defined in
/// a basis —
///
///   coin  : nat -> prop
///   merge : forall N,M,P:nat. (exists x: plus N M P. 1) -o
///             coin N (x) coin M -o coin P
///   split : forall N,M,P:nat. (exists x: plus N M P. 1) -o
///             coin P -o coin N (x) coin M
///
/// — extended (Section 6.1) with a term-limited central banker:
///
///   appoint   : principal -> time -> prop
///   is_banker : principal -> time -> prop
///   confirm   : forall K, t. <President>(appoint K t) -o is_banker K t
///   print     : nat -> prop
///   issue     : forall K, t, N. is_banker K t -o <K>(print N) -o
///                 if(before(t), coin N)
///
/// plus the banker's revocable purchase offer and the exact proof term
/// of Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_NEWCOIN_H
#define TYPECOIN_TYPECOIN_NEWCOIN_H

#include "typecoin/transaction.h"

namespace typecoin {
namespace newcoin {

/// Names of the newcoin constants (local until the defining transaction
/// confirms).
struct Vocab {
  lf::ConstName Coin, Merge, Split;
  lf::ConstName Appoint, IsBanker, Confirm, Print, Issue;

  Vocab resolved(const std::string &Txid) const;
};

/// Declare the full newcoin basis (coin/merge/split and the banker
/// extension, with \p President naming the appointing principal).
Vocab makeBasis(logic::Basis &Out, const crypto::KeyId &President);

/// Atoms.
logic::PropPtr coin(const Vocab &V, uint64_t N);
logic::PropPtr coin(const Vocab &V, lf::TermPtr N);
logic::PropPtr print(const Vocab &V, uint64_t N);
logic::PropPtr appoint(const Vocab &V, const crypto::KeyId &K, uint64_t T);
logic::PropPtr isBanker(const Vocab &V, const crypto::KeyId &K, uint64_t T);

/// The inhabitation idiom `exists x: plus N M P. 1` with its proof
/// (requires N + M = P, enforced by the builtin `plus/pf`).
logic::PropPtr plusWitnessProp(uint64_t N, uint64_t M, uint64_t P);
logic::ProofPtr plusWitnessProof(uint64_t N, uint64_t M);

/// `merge [N][M][P] wit cn cm : coin P` from cn : coin N, cm : coin M.
logic::ProofPtr mergeProof(const Vocab &V, uint64_t N, uint64_t M,
                           logic::ProofPtr CN, logic::ProofPtr CM);
/// `split [N][M][P] wit cp : coin N (x) coin M` from cp : coin (N+M).
logic::ProofPtr splitProof(const Vocab &V, uint64_t N, uint64_t M,
                           logic::ProofPtr CP);

/// The banker's revocable purchase offer (Section 6.1): a proposition
/// the banker signs persistently —
///
///   receipt(1/NBtc ->> D) -o if(~spent(R), print NNc)
///
/// (the paper's pure-bitcoin receipt form `receipt(n ->> K)` is encoded
/// as the combined form with trivial type 1; see DESIGN.md).
logic::PropPtr purchaseOrder(const Vocab &V, bitcoin::Amount NBtc,
                             const crypto::KeyId &Deposit,
                             const std::string &RTxid, uint32_t RIndex,
                             uint64_t NNc);

/// The exact proof term of Figure 3: given
///   P : a proof of <Banker>(purchase order)  (the banker's assert!),
///   R : the variable naming the deposit receipt,
///   B : the variable naming the is_banker resource,
/// produces a proof of if(~spent(R) /\ before(T), coin NNc):
///
///   let x <- (saybind f <- p in sayreturn_Banker(f r)) in
///   let y <- if/say(x) in
///   ifbind z <- ifweaken(y) in ifweaken(issue Banker T NNc b z)
logic::ProofPtr figure3Proof(const Vocab &V, const crypto::KeyId &Banker,
                             uint64_t Term, uint64_t NNc,
                             const std::string &RTxid, uint32_t RIndex,
                             logic::ProofPtr P, logic::ProofPtr R,
                             logic::ProofPtr B);

} // namespace newcoin
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_NEWCOIN_H
