//===- typecoin/wallet.cpp - Key management and signing -----------------------===//

#include "typecoin/wallet.h"

namespace typecoin {
namespace tc {

crypto::PrivateKey Wallet::newKey() {
  Keys.push_back(crypto::PrivateKey::generate(Rand));
  return Keys.back();
}

const crypto::PrivateKey *Wallet::keyFor(const crypto::KeyId &Id) const {
  for (const auto &Key : Keys)
    if (Key.id() == Id)
      return &Key;
  return nullptr;
}

bool Wallet::canSolve(const bitcoin::Script &ScriptPubKey) const {
  bitcoin::SolvedScript Solved = bitcoin::solveScript(ScriptPubKey);
  switch (Solved.Kind) {
  case bitcoin::TxOutKind::PubKeyHash: {
    crypto::KeyId Id;
    std::copy(Solved.Data[0].begin(), Solved.Data[0].end(),
              Id.Hash.begin());
    return keyFor(Id) != nullptr;
  }
  case bitcoin::TxOutKind::PubKey:
  case bitcoin::TxOutKind::MultiSig: {
    int Held = 0;
    for (const Bytes &KeyBytes : Solved.Data)
      for (const auto &Key : Keys)
        if (Key.publicKey().serialize() == KeyBytes)
          ++Held;
    int Needed = Solved.Kind == bitcoin::TxOutKind::PubKey
                     ? 1
                     : Solved.Required;
    return Held >= Needed;
  }
  default:
    return false;
  }
}

std::vector<Wallet::Spendable>
Wallet::findSpendable(const bitcoin::Blockchain &Chain) const {
  std::vector<Spendable> Out;
  int NextHeight = Chain.height() + 1;
  for (const auto &[Point, Coin] : Chain.utxo().entries()) {
    if (Coin.IsCoinbase &&
        NextHeight - Coin.Height < Chain.params().CoinbaseMaturity)
      continue;
    if (!canSolve(Coin.Out.ScriptPubKey))
      continue;
    Out.push_back(Spendable{Point, Coin.Out.Value, Coin.Out.ScriptPubKey});
  }
  return Out;
}

Status Wallet::signTransaction(bitcoin::Transaction &Btc,
                               const bitcoin::Blockchain &Chain) const {
  for (size_t I = 0; I < Btc.Inputs.size(); ++I) {
    const bitcoin::Coin *C = Chain.utxo().find(Btc.Inputs[I].Prevout);
    if (!C)
      return makeError("wallet: input " + std::to_string(I) +
                       " not found in the UTXO set");
    TC_UNWRAP(Sig,
              bitcoin::signInput(Btc, I, C->Out.ScriptPubKey, Keys));
    Btc.Inputs[I].ScriptSig = Sig;
  }
  return Status::success();
}

} // namespace tc
} // namespace typecoin
