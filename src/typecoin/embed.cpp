//===- typecoin/embed.cpp - Embedding into Bitcoin transactions ---------------===//

#include "typecoin/embed.h"

namespace typecoin {
namespace tc {

using bitcoin::Script;
using bitcoin::TxIn;
using bitcoin::TxOut;

Bytes metadataAsKey(const crypto::Digest32 &Hash) {
  Bytes Out;
  Out.reserve(33);
  Out.push_back(0x02);
  Out.insert(Out.end(), Hash.begin(), Hash.end());
  return Out;
}

Result<crypto::Digest32> metadataFromKey(const Bytes &Key) {
  if (Key.size() != 33 || Key[0] != 0x02)
    return makeError("embed: metadata key must be 33 bytes with 0x02 "
                     "prefix");
  crypto::Digest32 Out;
  std::copy(Key.begin() + 1, Key.end(), Out.begin());
  return Out;
}

static Result<bitcoin::OutPoint> outpointOf(const Input &In) {
  bitcoin::OutPoint Point;
  TC_UNWRAP(Raw, fromHexFixed<32>(In.SourceTxid));
  // Display hex is byte-reversed relative to the internal order.
  std::reverse(Raw.begin(), Raw.end());
  Point.Tx.Hash = Raw;
  Point.Index = In.SourceIndex;
  return Point;
}

Result<bitcoin::Transaction>
embedTransaction(const tc::Transaction &Tc, EmbedScheme Scheme,
                 const std::vector<bitcoin::OutPoint> &ExtraInputs,
                 const std::vector<TxOut> &ExtraOutputs) {
  if (Scheme == EmbedScheme::Multisig1of2 && Tc.Outputs.empty())
    return makeError("embed: 1-of-2 scheme needs at least one output");

  crypto::Digest32 Hash = Tc.hash();
  bitcoin::Transaction Btc;
  for (const Input &In : Tc.Inputs) {
    TC_UNWRAP(Point, outpointOf(In));
    Btc.Inputs.push_back(TxIn{Point, Script(), 0xffffffff});
  }
  for (const bitcoin::OutPoint &Point : ExtraInputs)
    Btc.Inputs.push_back(TxIn{Point, Script(), 0xffffffff});

  for (size_t I = 0; I < Tc.Outputs.size(); ++I) {
    const Output &Out = Tc.Outputs[I];
    TxOut BOut;
    BOut.Value = Out.Amount;
    if (I == 0 && Scheme == EmbedScheme::Multisig1of2)
      BOut.ScriptPubKey = bitcoin::makeMultiSig(
          1, {Out.Owner.serialize(), metadataAsKey(Hash)});
    else
      BOut.ScriptPubKey = bitcoin::makeP2PKH(Out.ownerId());
    Btc.Outputs.push_back(std::move(BOut));
  }

  if (Scheme == EmbedScheme::BogusOutput) {
    TxOut Bogus;
    Bogus.Value = bitcoin::DustThreshold; // Burned forever.
    Script S;
    S.push(metadataAsKey(Hash));
    S.op(bitcoin::OP_CHECKSIG);
    Bogus.ScriptPubKey = std::move(S);
    Btc.Outputs.push_back(std::move(Bogus));
  } else if (Scheme == EmbedScheme::NullData) {
    TxOut Data;
    Data.Value = 0;
    Data.ScriptPubKey =
        bitcoin::makeNullData(Bytes(Hash.begin(), Hash.end()));
    Btc.Outputs.push_back(std::move(Data));
  }

  for (const TxOut &Out : ExtraOutputs)
    Btc.Outputs.push_back(Out);
  return Btc;
}

Result<crypto::Digest32> extractMetadata(const bitcoin::Transaction &Btc) {
  for (const TxOut &Out : Btc.Outputs) {
    bitcoin::SolvedScript Solved = bitcoin::solveScript(Out.ScriptPubKey);
    switch (Solved.Kind) {
    case bitcoin::TxOutKind::MultiSig:
      if (Solved.Required == 1 && Solved.Data.size() == 2) {
        if (auto Hash = metadataFromKey(Solved.Data[1]))
          return *Hash;
      }
      break;
    case bitcoin::TxOutKind::PubKey:
      if (auto Hash = metadataFromKey(Solved.Data[0])) {
        // Only treat it as metadata when it cannot be parsed as a real
        // curve point is impossible to know; the bogus scheme relies on
        // position, so accept it.
        return *Hash;
      }
      break;
    case bitcoin::TxOutKind::NullData:
      if (Solved.Data.size() == 1 && Solved.Data[0].size() == 32) {
        crypto::Digest32 Hash;
        std::copy(Solved.Data[0].begin(), Solved.Data[0].end(),
                  Hash.begin());
        return Hash;
      }
      break;
    default:
      break;
    }
  }
  return makeError("embed: no Typecoin metadata found");
}

static Status checkOneCorrespondence(const tc::Transaction &Tc,
                                     const bitcoin::Transaction &Btc) {
  if (Btc.Inputs.size() < Tc.Inputs.size())
    return makeError("embed: Bitcoin transaction has fewer inputs than "
                     "the Typecoin transaction");
  for (size_t I = 0; I < Tc.Inputs.size(); ++I) {
    TC_UNWRAP(Point, outpointOf(Tc.Inputs[I]));
    if (!(Btc.Inputs[I].Prevout == Point))
      return makeError("embed: input " + std::to_string(I) +
                       " outpoint mismatch");
  }
  if (Btc.Outputs.size() < Tc.Outputs.size())
    return makeError("embed: Bitcoin transaction has fewer outputs than "
                     "the Typecoin transaction");
  for (size_t I = 0; I < Tc.Outputs.size(); ++I) {
    const Output &Out = Tc.Outputs[I];
    const TxOut &BOut = Btc.Outputs[I];
    if (BOut.Value != Out.Amount)
      return makeError("embed: output " + std::to_string(I) +
                       " amount mismatch");
    bitcoin::SolvedScript Solved = bitcoin::solveScript(BOut.ScriptPubKey);
    bool OwnerMatches = false;
    if (Solved.Kind == bitcoin::TxOutKind::PubKeyHash) {
      auto Id = Out.ownerId();
      OwnerMatches = Solved.Data[0] == Bytes(Id.Hash.begin(), Id.Hash.end());
    } else if (Solved.Kind == bitcoin::TxOutKind::MultiSig) {
      for (const Bytes &Key : Solved.Data)
        if (Key == Out.Owner.serialize())
          OwnerMatches = true;
    }
    if (!OwnerMatches)
      return makeError("embed: output " + std::to_string(I) +
                       " is not locked by the declared owner");
  }
  return Status::success();
}

Status checkCorrespondence(const tc::Transaction &Tc,
                           const bitcoin::Transaction &Btc) {
  TC_UNWRAP(Embedded, extractMetadata(Btc));
  if (Embedded != Tc.hash())
    return makeError("embed: embedded hash does not match the Typecoin "
                     "transaction");
  TC_TRY(checkOneCorrespondence(Tc, Btc));
  for (size_t I = 0; I < Tc.Fallbacks.size(); ++I) {
    if (auto S = checkFallbackCompatible(Tc, Tc.Fallbacks[I]); !S)
      return S.takeError().withContext("fallback " + std::to_string(I));
    if (auto S = checkOneCorrespondence(Tc.Fallbacks[I], Btc); !S)
      return S.takeError().withContext("fallback " + std::to_string(I));
  }
  return Status::success();
}

Status checkFallbackCompatible(const tc::Transaction &Primary,
                               const tc::Transaction &Fallback) {
  if (Primary.Inputs.size() != Fallback.Inputs.size())
    return makeError("fallback: input count differs");
  for (size_t I = 0; I < Primary.Inputs.size(); ++I) {
    const Input &A = Primary.Inputs[I];
    const Input &B = Fallback.Inputs[I];
    if (A.SourceTxid != B.SourceTxid || A.SourceIndex != B.SourceIndex)
      return makeError("fallback: input " + std::to_string(I) +
                       " spends a different txout");
    if (A.Amount != B.Amount)
      return makeError("fallback: input " + std::to_string(I) +
                       " bitcoin amount differs");
  }
  if (Primary.Outputs.size() != Fallback.Outputs.size())
    return makeError("fallback: output count differs");
  for (size_t I = 0; I < Primary.Outputs.size(); ++I) {
    const Output &A = Primary.Outputs[I];
    const Output &B = Fallback.Outputs[I];
    if (!(A.Owner == B.Owner))
      return makeError("fallback: output " + std::to_string(I) +
                       " pays a different principal");
    if (A.Amount != B.Amount)
      return makeError("fallback: output " + std::to_string(I) +
                       " bitcoin amount differs");
  }
  if (!Fallback.Fallbacks.empty())
    return makeError("fallback: fallbacks must not nest");
  return Status::success();
}

} // namespace tc
} // namespace typecoin
