//===- typecoin/persist.h - On-disk encodings for the store -----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of the node's durable state for store/chainstore.h.
/// The store itself moves opaque bytes; these helpers define what those
/// bytes mean: coupled pairs for the registration journal and WAL, and
/// the UTXO set for the epoch snapshot (whose sha256d digest lets an
/// assume-valid replay cross-check its result against the snapshot
/// without re-running script checks).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_PERSIST_H
#define TYPECOIN_TYPECOIN_PERSIST_H

#include "bitcoin/utxo.h"
#include "typecoin/node.h"

namespace typecoin {
namespace tc {

/// Encode a coupled pair (Typecoin transaction + Bitcoin carrier).
Bytes serializePair(const Pair &P);
Result<Pair> deserializePair(const Bytes &Data);

/// Deterministic encoding of the UTXO set (entries in OutPoint order).
Bytes serializeUtxo(const bitcoin::UtxoSet &Utxo);
Result<bitcoin::UtxoSet> deserializeUtxo(const Bytes &Data);

/// Hex sha256d of \ref serializeUtxo — the epoch snapshot's
/// cross-check digest.
std::string utxoDigestHex(const bitcoin::UtxoSet &Utxo);

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_PERSIST_H
