//===- typecoin/persist.cpp - On-disk encodings for the store -------------===//

#include "typecoin/persist.h"

#include "crypto/sha256.h"
#include "support/serialize.h"

namespace typecoin {
namespace tc {

Bytes serializePair(const Pair &P) {
  Writer W;
  W.writeVarBytes(P.Tc.serialize());
  W.writeVarBytes(P.Btc.serialize());
  return W.takeBuffer();
}

Result<Pair> deserializePair(const Bytes &Data) {
  Reader R(Data);
  TC_UNWRAP(TcBytes, R.readVarBytes());
  TC_UNWRAP(BtcBytes, R.readVarBytes());
  TC_TRY(R.expectEnd());
  TC_UNWRAP(Tc, Transaction::deserialize(TcBytes));
  TC_UNWRAP(Btc, bitcoin::Transaction::deserialize(BtcBytes));
  Pair P;
  P.Tc = std::move(Tc);
  P.Btc = std::move(Btc);
  return P;
}

Bytes serializeUtxo(const bitcoin::UtxoSet &Utxo) {
  Writer W;
  W.writeCompactSize(Utxo.size());
  // entries() is an ordered map: the encoding is deterministic, so two
  // nodes with equal sets produce equal digests.
  for (const auto &[Point, Coin] : Utxo.entries()) {
    W.writeBytes(Point.Tx.Hash.data(), Point.Tx.Hash.size());
    W.writeU32(Point.Index);
    W.writeU64(static_cast<uint64_t>(Coin.Out.Value));
    W.writeVarBytes(Coin.Out.ScriptPubKey.bytes());
    W.writeU32(static_cast<uint32_t>(Coin.Height));
    W.writeU8(Coin.IsCoinbase ? 1 : 0);
  }
  return W.takeBuffer();
}

Result<bitcoin::UtxoSet> deserializeUtxo(const Bytes &Data) {
  Reader R(Data);
  bitcoin::UtxoSet Utxo;
  TC_UNWRAP(Count, R.readCompactSize());
  for (uint64_t I = 0; I < Count; ++I) {
    bitcoin::OutPoint Point;
    TC_UNWRAP(Hash, R.readBytes(Point.Tx.Hash.size()));
    std::copy(Hash.begin(), Hash.end(), Point.Tx.Hash.begin());
    TC_UNWRAP(Index, R.readU32());
    Point.Index = Index;
    bitcoin::Coin C;
    TC_UNWRAP(Value, R.readU64());
    C.Out.Value = static_cast<bitcoin::Amount>(Value);
    TC_UNWRAP(Script, R.readVarBytes());
    C.Out.ScriptPubKey = bitcoin::Script(Script);
    TC_UNWRAP(Height, R.readU32());
    C.Height = static_cast<int>(Height);
    TC_UNWRAP(Coinbase, R.readU8());
    C.IsCoinbase = Coinbase != 0;
    Utxo.add(Point, std::move(C));
  }
  TC_TRY(R.expectEnd());
  return Utxo;
}

std::string utxoDigestHex(const bitcoin::UtxoSet &Utxo) {
  return toHex(crypto::sha256d(serializeUtxo(Utxo)));
}

} // namespace tc
} // namespace typecoin
