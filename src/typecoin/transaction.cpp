//===- typecoin/transaction.cpp - Typecoin transactions ----------------------===//

#include "typecoin/transaction.h"

namespace typecoin {
namespace tc {

Transaction::Transaction() : Grant(logic::pOne()), Proof(logic::mOne()) {}

/// Serialize everything except fallbacks and the proof.
static void writeCore(Writer &W, const Transaction &T) {
  T.LocalBasis.serialize(W);
  logic::writeProp(W, T.Grant);
  W.writeCompactSize(T.Inputs.size());
  for (const Input &In : T.Inputs) {
    W.writeString(In.SourceTxid);
    W.writeU32(In.SourceIndex);
    logic::writeProp(W, In.Type);
    W.writeU64(static_cast<uint64_t>(In.Amount));
  }
  W.writeCompactSize(T.Outputs.size());
  for (const Output &Out : T.Outputs) {
    logic::writeProp(W, Out.Type);
    W.writeU64(static_cast<uint64_t>(Out.Amount));
    W.writeVarBytes(Out.Owner.serialize());
  }
}

static void writeWhole(Writer &W, const Transaction &T) {
  writeCore(W, T);
  logic::writeProof(W, T.Proof);
  W.writeCompactSize(T.Fallbacks.size());
  for (const Transaction &F : T.Fallbacks)
    writeWhole(W, F);
}

Bytes Transaction::serialize() const {
  Writer W;
  writeWhole(W, *this);
  return W.takeBuffer();
}

static Result<Transaction> readWhole(Reader &R, int Depth) {
  if (Depth > 4)
    return makeError("typecoin: fallback nesting too deep");
  Transaction T;
  TC_UNWRAP(Basis, logic::Basis::deserialize(R));
  T.LocalBasis = std::move(Basis);
  TC_UNWRAP(Grant, logic::readProp(R));
  T.Grant = Grant;
  TC_UNWRAP(NIn, R.readCompactSize());
  if (NIn > 10000)
    return makeError("typecoin: implausible input count");
  for (uint64_t I = 0; I < NIn; ++I) {
    Input In;
    TC_UNWRAP(Txid, R.readString());
    In.SourceTxid = Txid;
    TC_UNWRAP(Index, R.readU32());
    In.SourceIndex = Index;
    TC_UNWRAP(Type, logic::readProp(R));
    In.Type = Type;
    TC_UNWRAP(Amount, R.readU64());
    In.Amount = static_cast<bitcoin::Amount>(Amount);
    T.Inputs.push_back(std::move(In));
  }
  TC_UNWRAP(NOut, R.readCompactSize());
  if (NOut > 10000)
    return makeError("typecoin: implausible output count");
  for (uint64_t I = 0; I < NOut; ++I) {
    Output Out;
    TC_UNWRAP(Type, logic::readProp(R));
    Out.Type = Type;
    TC_UNWRAP(Amount, R.readU64());
    Out.Amount = static_cast<bitcoin::Amount>(Amount);
    TC_UNWRAP(KeyBytes, R.readVarBytes());
    TC_UNWRAP(Key, crypto::PublicKey::parse(KeyBytes));
    Out.Owner = Key;
    T.Outputs.push_back(std::move(Out));
  }
  TC_UNWRAP(Proof, logic::readProof(R));
  T.Proof = Proof;
  TC_UNWRAP(NFallback, R.readCompactSize());
  if (NFallback > 16)
    return makeError("typecoin: implausible fallback count");
  for (uint64_t I = 0; I < NFallback; ++I) {
    TC_UNWRAP(F, readWhole(R, Depth + 1));
    T.Fallbacks.push_back(std::move(F));
  }
  return T;
}

Result<Transaction> Transaction::deserialize(const Bytes &Data) {
  Reader R(Data);
  TC_UNWRAP(T, readWhole(R, 0));
  TC_TRY(R.expectEnd());
  return T;
}

crypto::Digest32 Transaction::hash() const {
  return crypto::sha256d(serialize());
}

logic::PropPtr Transaction::inputTensor() const {
  std::vector<logic::PropPtr> Types;
  Types.reserve(Inputs.size());
  for (const Input &In : Inputs)
    Types.push_back(In.Type);
  return logic::pTensorAll(Types);
}

logic::PropPtr Transaction::outputTensor() const {
  std::vector<logic::PropPtr> Types;
  Types.reserve(Outputs.size());
  for (const Output &Out : Outputs)
    Types.push_back(Out.Type);
  return logic::pTensorAll(Types);
}

logic::PropPtr Transaction::receiptTensor() const {
  std::vector<logic::PropPtr> Receipts;
  Receipts.reserve(Outputs.size());
  for (const Output &Out : Outputs)
    Receipts.push_back(logic::pReceipt(
        Out.Type, static_cast<uint64_t>(Out.Amount), Out.ownerTerm()));
  return logic::pTensorAll(Receipts);
}

logic::PropPtr Transaction::obligation(const logic::CondPtr &Phi) const {
  logic::PropPtr CAR = logic::pTensor(
      Grant, logic::pTensor(inputTensor(), receiptTensor()));
  return logic::pLolli(CAR, logic::pIf(Phi, outputTensor()));
}

crypto::Digest32 affineAssertDigest(const Transaction &T,
                                    const logic::PropPtr &A) {
  Writer W;
  W.writeString("typecoin-assert-affine");
  logic::writeProp(W, A);
  writeCore(W, T);
  return crypto::sha256d(W.buffer());
}

crypto::Digest32 persistentAssertDigest(const logic::PropPtr &A) {
  Writer W;
  W.writeString("typecoin-assert-persistent");
  logic::writeProp(W, A);
  return crypto::sha256d(W.buffer());
}

Bytes makeAffirmationBlob(const crypto::PrivateKey &Key,
                          const crypto::Digest32 &Digest) {
  Writer W;
  W.writeVarBytes(Key.publicKey().serialize());
  W.writeVarBytes(Key.sign(Digest).toDER());
  return W.takeBuffer();
}

Status verifyAffirmationBlob(const std::string &KHash,
                             const crypto::Digest32 &Digest,
                             const Bytes &Blob) {
  Reader R(Blob);
  TC_UNWRAP(PubKeyBytes, R.readVarBytes());
  TC_UNWRAP(SigBytes, R.readVarBytes());
  TC_TRY(R.expectEnd());
  TC_UNWRAP(PubKey, crypto::PublicKey::parse(PubKeyBytes));
  if (PubKey.id().toHex() != KHash)
    return makeError("affirmation: public key does not hash to the "
                     "claimed principal " +
                     KHash.substr(0, 8));
  TC_UNWRAP(Sig, crypto::Signature::fromDER(SigBytes));
  if (!PubKey.verify(Digest, Sig))
    return makeError("affirmation: invalid signature for principal " +
                     KHash.substr(0, 8));
  return Status::success();
}

logic::ProofPtr makeAssert(const crypto::PrivateKey &Key,
                           const Transaction &T, const logic::PropPtr &A) {
  return logic::mAssert(Key.id().toHex(), A,
                        makeAffirmationBlob(Key, affineAssertDigest(T, A)));
}

logic::ProofPtr makeAssertBang(const crypto::PrivateKey &Key,
                               const logic::PropPtr &A) {
  return logic::mAssertBang(
      Key.id().toHex(), A,
      makeAffirmationBlob(Key, persistentAssertDigest(A)));
}

} // namespace tc
} // namespace typecoin
