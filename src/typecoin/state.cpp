//===- typecoin/state.cpp - Typecoin chain state and T-ok checking -----------===//

#include "typecoin/state.h"

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace typecoin {
namespace tc {

using logic::PropPtr;

/// Per-rule obs probes for the `T ok` pipeline: one counter for checks,
/// one for failures, one latency histogram per numbered rule of
/// checkBody plus the end-to-end total. Looked up once per process.
namespace {
struct CheckerMetrics {
  obs::Counter &Checks = obs::counter("checker.checks");
  obs::Counter &Failures = obs::counter("checker.failures");
  obs::Histogram &TotalNs = obs::latencyHistogram("checker.check_ns");
  obs::Histogram &BasisNs = obs::latencyHistogram("checker.rule.basis_ns");
  obs::Histogram &GrantNs = obs::latencyHistogram("checker.rule.grant_ns");
  obs::Histogram &InputsNs = obs::latencyHistogram("checker.rule.inputs_ns");
  obs::Histogram &OutputsNs =
      obs::latencyHistogram("checker.rule.outputs_ns");
  obs::Histogram &ProofNs = obs::latencyHistogram("checker.rule.proof_ns");
  obs::Histogram &ConditionNs =
      obs::latencyHistogram("checker.rule.condition_ns");

  static CheckerMetrics &get() {
    static CheckerMetrics M;
    return M;
  }
};
} // namespace

Status State::checkBody(const Transaction &T,
                        const logic::CondOracle &Oracle,
                        logic::CondPtr &PhiOut) const {
  CheckerMetrics &M = CheckerMetrics::get();
  M.Checks.inc();
  obs::ScopedTimer Total(M.TotalNs);
  obs::Span Trace("checker.check");
  // Count the failure on every early exit; rules below return through
  // TC_TRY, so a scope guard is the only reliable funnel.
  struct FailureGuard {
    obs::Counter &Failures;
    bool Disarmed = false;
    ~FailureGuard() {
      if (!Disarmed)
        Failures.inc();
    }
  } Guard{M.Failures};

  // 1. Local basis: well-formed against the global basis, and fresh.
  {
    obs::Span S("checker.basis");
    obs::ScopedTimer Rule(M.BasisNs);
    TC_TRY(T.LocalBasis.checkFormedAgainst(Global));
    TC_TRY(T.LocalBasis.checkFresh());
  }

  // Sigma_global, Sigma.
  logic::Basis Combined = Global;
  TC_TRY(Combined.append(T.LocalBasis));

  // 2. Affine grant: well-formed and fresh.
  {
    obs::Span S("checker.grant");
    obs::ScopedTimer Rule(M.GrantNs);
    TC_TRY(logic::checkProp(Combined.lfSig(), {}, T.Grant));
    if (auto S2 = logic::checkPropFresh(T.Grant); !S2)
      return S2.takeError().withContext("grant");
  }

  // 3. Every transaction must have at least one input (Section 2:
  // replayed transactions are invalid because "every transaction has at
  // least one input").
  if (T.Inputs.empty())
    return makeError("typecoin: transaction has no inputs");

  // 4. Inputs: claimed types are well-formed and agree with the types of
  // the outputs they spend; no duplicates.
  {
    obs::Span S("checker.inputs");
    obs::ScopedTimer Rule(M.InputsNs);
    std::set<std::pair<std::string, uint32_t>> Seen;
    for (size_t I = 0; I < T.Inputs.size(); ++I) {
      const Input &In = T.Inputs[I];
      if (!Seen.insert({In.SourceTxid, In.SourceIndex}).second)
        return makeError("typecoin: duplicate input " + In.SourceTxid +
                         ":" + std::to_string(In.SourceIndex));
      if (Consumed.count({In.SourceTxid, In.SourceIndex}))
        return makeError("typecoin: input " + In.SourceTxid + ":" +
                         std::to_string(In.SourceIndex) +
                         " is already consumed");
      TC_TRY(logic::checkProp(Combined.lfSig(), {}, In.Type));
      PropPtr Expected = outputType(In.SourceTxid, In.SourceIndex);
      if (!logic::propEqual(In.Type, Expected))
        return makeError("typecoin: input " + std::to_string(I) +
                         " claims type " + logic::printProp(In.Type) +
                         " but the spent output has type " +
                         logic::printProp(Expected));
      auto KnownAmount = outputAmount(In.SourceTxid, In.SourceIndex);
      if (KnownAmount && *KnownAmount != In.Amount)
        return makeError("typecoin: input " + std::to_string(I) +
                         " amount disagrees with the spent output");
    }
  }

  // 5. Output types are well-formed.
  {
    obs::Span S("checker.outputs");
    obs::ScopedTimer Rule(M.OutputsNs);
    for (size_t I = 0; I < T.Outputs.size(); ++I) {
      const Output &Out = T.Outputs[I];
      if (!Out.Owner.isValid())
        return makeError("typecoin: output " + std::to_string(I) +
                         " has an invalid owner key");
      TC_TRY(logic::checkProp(Combined.lfSig(), {}, Out.Type));
    }
  }

  // 6. The proof obligation.
  logic::CondPtr Phi = logic::cTrue();
  {
    obs::Span S("checker.proof");
    obs::ScopedTimer Rule(M.ProofNs);
    TxAffirmationVerifier Affirm(T);
    logic::ProofChecker Checker(Combined, Affirm);
    TC_UNWRAP(Proved, Checker.infer(T.Proof));
    if (Proved->Kind != logic::Prop::Tag::Lolli)
      return makeError("typecoin: proof term proves " +
                       logic::printProp(Proved) +
                       ", expected a lolli obligation");
    PropPtr CAR = logic::pTensor(
        T.Grant, logic::pTensor(T.inputTensor(), T.receiptTensor()));
    if (!logic::propEqual(Proved->L, CAR))
      return makeError("typecoin: proof consumes " +
                       logic::printProp(Proved->L) + ", expected " +
                       logic::printProp(CAR));

    PropPtr B = T.outputTensor();
    PropPtr Produced = Proved->R;
    if (Produced->Kind == logic::Prop::Tag::If) {
      Phi = Produced->Cond;
      Produced = Produced->Body;
    }
    if (!logic::propEqual(Produced, B))
      return makeError("typecoin: proof produces " +
                       logic::printProp(Produced) + ", expected " +
                       logic::printProp(B));
  }

  // 7. The condition must hold now, with blockchain evidence.
  {
    obs::Span S("checker.condition");
    obs::ScopedTimer Rule(M.ConditionNs);
    TC_UNWRAP(Holds, logic::evalCond(Phi, Oracle));
    if (!Holds)
      return makeError("typecoin: condition " + logic::printCond(Phi) +
                       " does not hold");
  }
  PhiOut = Phi;
  Guard.Disarmed = true;
  return Status::success();
}

Result<CheckReport> State::checkTransaction(
    const Transaction &T, const logic::CondOracle &Oracle) const {
  CheckReport Report;
  Report.Phi = logic::cTrue();
  TC_TRY(checkBody(T, Oracle, Report.Phi));
  return Report;
}

Result<size_t> State::selectValid(const Transaction &T,
                                  const logic::CondOracle &Oracle) const {
  logic::CondPtr Phi;
  if (checkBody(T, Oracle, Phi))
    return static_cast<size_t>(0);
  for (size_t I = 0; I < T.Fallbacks.size(); ++I)
    if (checkBody(T.Fallbacks[I], Oracle, Phi))
      return I + 1;
  return makeError("typecoin: no valid alternative (primary and " +
                   std::to_string(T.Fallbacks.size()) +
                   " fallbacks all invalid)");
}

Result<size_t> State::applyTransaction(const Transaction &T,
                                       const std::string &Txid,
                                       const logic::CondOracle &Oracle) {
  if (Txs.count(Txid))
    return makeError("typecoin: transaction " + Txid.substr(0, 8) +
                     " already registered");

  auto Selected = selectValid(T, Oracle);
  const Transaction *Effective = nullptr;
  size_t Index;
  if (Selected) {
    Index = *Selected;
    Effective = Index == 0 ? &T : &T.Fallbacks[Index - 1];
  } else {
    // Spoiled: inputs are consumed, nothing is produced (Section 5,
    // "an invalid transaction spoils its inputs").
    Index = T.Fallbacks.size() + 1;
  }

  const Transaction &ForInputs = Effective ? *Effective : T;
  // Double-spend rejection at this layer (Bitcoin enforces it too).
  for (const Input &In : ForInputs.Inputs)
    if (Consumed.count({In.SourceTxid, In.SourceIndex}))
      return makeError("typecoin: input " + In.SourceTxid + ":" +
                       std::to_string(In.SourceIndex) +
                       " is already consumed");

  static obs::Counter &RegisteredC = obs::counter("checker.registered");
  static obs::Counter &SpoiledC = obs::counter("checker.spoiled");
  (Effective ? RegisteredC : SpoiledC).inc();

  Entry E;
  E.T = ForInputs;
  E.Spoiled = Effective == nullptr;
  if (Effective) {
    for (const Output &Out : Effective->Outputs)
      E.ResolvedOutputTypes.push_back(logic::resolveProp(Out.Type, Txid));
    TC_TRY(Global.append(Effective->LocalBasis.resolved(Txid)));
  } else {
    for (size_t I = 0; I < T.Outputs.size(); ++I)
      E.ResolvedOutputTypes.push_back(logic::pOne());
  }
  for (const Input &In : ForInputs.Inputs)
    Consumed.insert({In.SourceTxid, In.SourceIndex});
  Txs[Txid] = std::move(E);
  return Index;
}

PropPtr State::outputType(const std::string &Txid, uint32_t Index) const {
  auto It = Txs.find(Txid);
  if (It == Txs.end())
    return logic::pOne(); // Trivial type for non-Typecoin txouts.
  if (Index >= It->second.ResolvedOutputTypes.size())
    return logic::pOne();
  return It->second.ResolvedOutputTypes[Index];
}

std::optional<bitcoin::Amount>
State::outputAmount(const std::string &Txid, uint32_t Index) const {
  auto It = Txs.find(Txid);
  if (It == Txs.end() || It->second.Spoiled ||
      Index >= It->second.T.Outputs.size())
    return std::nullopt;
  return It->second.T.Outputs[Index].Amount;
}

bool State::isConsumed(const std::string &Txid, uint32_t Index) const {
  return Consumed.count({Txid, Index}) != 0;
}

const Transaction *State::find(const std::string &Txid) const {
  auto It = Txs.find(Txid);
  return It == Txs.end() ? nullptr : &It->second.T;
}

std::vector<std::string> State::registeredTxids() const {
  std::vector<std::string> Out;
  Out.reserve(Txs.size());
  for (const auto &[Txid, E] : Txs)
    Out.push_back(Txid);
  return Out;
}

bool State::isSpoiled(const std::string &Txid) const {
  auto It = Txs.find(Txid);
  return It != Txs.end() && It->second.Spoiled;
}

std::string State::fingerprint() const {
  crypto::Sha256 Hasher;
  auto Feed = [&Hasher](const std::string &S) {
    // Length-prefix every field so concatenations cannot collide.
    uint64_t Len = S.size();
    Hasher.update(reinterpret_cast<const uint8_t *>(&Len), sizeof(Len));
    Hasher.update(reinterpret_cast<const uint8_t *>(S.data()), S.size());
  };
  for (const auto &[Txid, E] : Txs) {
    Feed(Txid);
    Feed(E.Spoiled ? "spoiled" : "valid");
    Feed(std::to_string(E.ResolvedOutputTypes.size()));
    for (const logic::PropPtr &P : E.ResolvedOutputTypes) {
      // Feed the memoized content digest instead of re-printing the
      // proposition: fingerprints are only ever compared against other
      // in-process fingerprints, so any injective encoding works.
      crypto::Digest32 D = logic::propDigest(P);
      Hasher.update(D.data(), D.size());
    }
  }
  Feed("|consumed|");
  for (const auto &[Txid, Index] : Consumed) {
    Feed(Txid);
    Feed(std::to_string(Index));
  }
  return toHex(Hasher.finalize());
}

Result<logic::PropPtr> verifyClaimedOutput(
    const std::vector<std::pair<std::string, Transaction>> &OrderedUpstream,
    const std::string &Txid, uint32_t Index, const logic::PropPtr &Claimed,
    const logic::CondOracle &Oracle) {
  State Fresh;
  for (const auto &[UpTxid, UpTx] : OrderedUpstream) {
    auto Applied = Fresh.applyTransaction(UpTx, UpTxid, Oracle);
    if (!Applied)
      return Applied.takeError().withContext("upstream " +
                                             UpTxid.substr(0, 8));
  }
  logic::PropPtr Actual = Fresh.outputType(Txid, Index);
  if (!logic::propEqual(Actual, Claimed))
    return makeError("verify: output has type " + logic::printProp(Actual) +
                     ", not the claimed " + logic::printProp(Claimed));
  return Actual;
}

} // namespace tc
} // namespace typecoin
