//===- typecoin/state.h - Typecoin chain state and T-ok checking -*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chain-formation judgement of Appendix A: a set of confirmed
/// Typecoin transactions accumulates a global basis (with `this`
/// replaced by each transaction's id) and a table of typed
/// transaction-outputs. `checkTransaction` implements the `T ok` rule:
///
///   * the local basis is well-formed and fresh,
///   * the affine grant is well-formed and fresh,
///   * each input's claimed type matches the (resolved) type of the
///     output it spends — "txouts that do not arise from valid Typecoin
///     transactions are taken to have the trivial type 1" (Section 3),
///   * the proof term proves (C (x) A (x) R) -o if(phi, B) in empty
///     contexts, and
///   * the condition phi holds (with evidence from the blockchain).
///
/// Invalid primaries fall back to the first valid fallback transaction;
/// if none is valid the inputs are spoiled (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_STATE_H
#define TYPECOIN_TYPECOIN_STATE_H

#include "typecoin/transaction.h"

#include <map>
#include <set>

namespace typecoin {
namespace tc {

/// Result of checking one transaction body against the state.
struct CheckReport {
  /// The condition the proof discharged (true when the obligation had no
  /// top-level conditional).
  logic::CondPtr Phi;
};

/// The accumulated Typecoin chain state.
class State {
public:
  /// Check `T ok` against the current state (no mutation). \p Oracle
  /// supplies condition evidence at the evaluation time.
  Result<CheckReport> checkTransaction(const Transaction &T,
                                       const logic::CondOracle &Oracle) const;

  /// Which of {primary, fallbacks...} is the effective transaction?
  /// Returns the index (0 = primary) or an error when none is valid.
  Result<size_t> selectValid(const Transaction &T,
                             const logic::CondOracle &Oracle) const;

  /// Register transaction \p T, confirmed under Bitcoin id \p Txid.
  /// Applies the first valid of {T, fallbacks}; when none is valid the
  /// inputs are spoiled (consumed with no typed outputs created).
  /// Returns the selected index, or the number of alternatives if the
  /// transaction spoiled.
  Result<size_t> applyTransaction(const Transaction &T,
                                  const std::string &Txid,
                                  const logic::CondOracle &Oracle);

  /// The global basis Sigma_global.
  const logic::Basis &globalBasis() const { return Global; }

  /// Resolved type of a txout; trivial type 1 for outputs that did not
  /// arise from registered Typecoin transactions (Section 3.1).
  logic::PropPtr outputType(const std::string &Txid, uint32_t Index) const;

  /// The registered amount of a Typecoin output (nullopt for trivial).
  std::optional<bitcoin::Amount> outputAmount(const std::string &Txid,
                                              uint32_t Index) const;

  /// Has the given txout been consumed by a registered transaction?
  bool isConsumed(const std::string &Txid, uint32_t Index) const;

  /// Number of registered transactions.
  size_t size() const { return Txs.size(); }

  /// The registered transaction body (post-selection), if any.
  const Transaction *find(const std::string &Txid) const;

  /// All registered Bitcoin txids, in map order (for the invariant
  /// auditor, analysis/audit.h).
  std::vector<std::string> registeredTxids() const;

  /// Did the named transaction spoil (no valid alternative at
  /// registration)?
  bool isSpoiled(const std::string &Txid) const;

  /// A deterministic digest of the full registered state — registered
  /// txids, spoiled flags, resolved output types, and the consumed
  /// set. Two nodes (or one node before a crash and after recovery)
  /// agree on Typecoin state iff their fingerprints are equal; the
  /// chaos suite compares these entry-for-entry summaries instead of
  /// trusting convergence of the underlying Bitcoin tips alone.
  std::string fingerprint() const;

private:
  Status checkBody(const Transaction &T, const logic::CondOracle &Oracle,
                   logic::CondPtr &PhiOut) const;

  logic::Basis Global;
  struct Entry {
    Transaction T;
    std::vector<logic::PropPtr> ResolvedOutputTypes;
    bool Spoiled = false;
  };
  std::map<std::string, Entry> Txs;
  std::set<std::pair<std::string, uint32_t>> Consumed;
};

/// Stand-alone verification of a claimed txout (Section 3): given the
/// transaction that produced it and "the set of all Typecoin
/// transactions upstream", re-check everything from an empty state and
/// confirm output \p Index of \p Txid has type \p Claimed. \p Upstream
/// maps Bitcoin txids to transactions and must be closed under
/// dependencies; \p OrderedTxids gives the confirmation order.
Result<logic::PropPtr>
verifyClaimedOutput(const std::vector<std::pair<std::string, Transaction>>
                        &OrderedUpstream,
                    const std::string &Txid, uint32_t Index,
                    const logic::PropPtr &Claimed,
                    const logic::CondOracle &Oracle);

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_STATE_H
