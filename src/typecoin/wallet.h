//===- typecoin/wallet.h - Key management and signing ------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal wallet: deterministic key generation, lookup by principal,
/// coin discovery over the UTXO set, and signing of Bitcoin transactions
/// that spend P2PKH / P2PK / 1-of-2-embedded outputs. "The Typecoin
/// client itself can be viewed as a very small batch-mode server,
/// trusted by only one person" (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_WALLET_H
#define TYPECOIN_TYPECOIN_WALLET_H

#include "bitcoin/chain.h"
#include "bitcoin/standard.h"
#include "support/rng.h"

namespace typecoin {
namespace tc {

/// A deterministic key store.
class Wallet {
public:
  explicit Wallet(uint64_t Seed) : Rand(Seed) {}

  /// Generate and remember a fresh key. Returned by value: the wallet's
  /// internal storage grows, so references into it would dangle.
  crypto::PrivateKey newKey();

  const std::vector<crypto::PrivateKey> &keys() const { return Keys; }

  /// The key owning \p Id, if we hold it.
  const crypto::PrivateKey *keyFor(const crypto::KeyId &Id) const;

  /// Adopt an externally created key.
  void import(const crypto::PrivateKey &Key) { Keys.push_back(Key); }

  /// A spendable output we can sign for.
  struct Spendable {
    bitcoin::OutPoint Point;
    bitcoin::Amount Value = 0;
    bitcoin::Script ScriptPubKey;
  };

  /// Scan the chain's UTXO set for outputs this wallet can spend
  /// (subject to coinbase maturity at the next block height).
  std::vector<Spendable> findSpendable(const bitcoin::Blockchain &Chain) const;

  /// Sign every input of \p Btc against the chain's UTXO set.
  Status signTransaction(bitcoin::Transaction &Btc,
                         const bitcoin::Blockchain &Chain) const;

private:
  bool canSolve(const bitcoin::Script &ScriptPubKey) const;

  Rng Rand;
  std::vector<crypto::PrivateKey> Keys;
};

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_WALLET_H
