//===- typecoin/opentx.h - Open transactions ----------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open transactions (Section 7): "a transaction with holes that anyone
/// can fill in." The issuer leaves blank the txout of one input (who
/// provides the solution/asset) and the public key of one output (who
/// receives the prize), signs the template, and publishes it. A claimant
/// fills both holes; a type-checking escrow agent holding the prize
/// txout signs any instance that typechecks.
///
/// "Our open transactions are inspired by and generalize Bitcoin's
/// SIGHASH rules, which erase parts of a transaction before checking its
/// signatures" (Section 8) — the template digest here likewise erases
/// the holes.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_TYPECOIN_OPENTX_H
#define TYPECOIN_TYPECOIN_OPENTX_H

#include "typecoin/transaction.h"

#include <optional>

namespace typecoin {
namespace tc {

/// An open transaction: a template with at most one open input (its
/// source txout blank) and at most one open output (its owner blank).
struct OpenTransaction {
  Transaction Template;
  /// Index of the input whose source txout the claimant supplies; that
  /// input's type is still fixed by the template.
  std::optional<size_t> OpenInput;
  /// Index of the output whose receiving key the claimant supplies.
  std::optional<size_t> OpenOutput;
  /// The issuer's signature over the template digest (erasing the
  /// holes), so participants know the offer is genuine.
  Bytes IssuerBlob;

  /// The digest the issuer signs: the template serialized with the open
  /// input's source and the open output's owner erased.
  crypto::Digest32 templateDigest() const;

  /// Sign the template as \p Issuer.
  void sign(const crypto::PrivateKey &Issuer);

  /// Verify the issuer's signature against a claimed principal.
  Status verifyIssuer(const crypto::KeyId &Issuer) const;

  /// Fill the holes: the claimant's source txout for the open input and
  /// receiving key for the open output. Other fields are untouched; the
  /// caller then rebuilds the proof term if it mentions the new
  /// principal (routing proofs do not).
  Result<Transaction> fill(const std::string &SourceTxid,
                           uint32_t SourceIndex,
                           const crypto::PublicKey &Receiver) const;
};

} // namespace tc
} // namespace typecoin

#endif // TYPECOIN_TYPECOIN_OPENTX_H
