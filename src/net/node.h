//===- net/node.h - The concurrent P2P runtime ------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NetNode: a full Typecoin node (\ref tc::Node) driven by a real
/// message-passing runtime over an injectable \ref Transport.
///
/// Protocol surface (net/wire.h): Version/Verack handshake with
/// self-connection detection, Ping/Pong liveness, Inv/GetData gossip
/// with per-peer known-inventory dedup, headers-first initial block
/// sync (GetHeaders/Headers with block locators, then batched body
/// fetch), and BIP 152-style compact-block relay (CmpctBlock short ids
/// reconstructed from the mempool, GetBlockTxn/BlockTxn fallback for
/// the misses, full-block re-request on reconstruction mismatch).
///
/// Two execution modes share every message handler:
///
///  * **Threaded** (\ref start / \ref stop): an acceptor/timer thread
///    plus one thread per peer, each blocking in
///    Connection::waitReadable and draining frames into the handlers
///    under the node's state lock. Liveness timers (handshake timeout,
///    ping schedule) run on the acceptor thread's cadence.
///  * **Pumped** (\ref pump): single-threaded and deterministic — one
///    call accepts pending inbound connections, drains every peer in
///    id order, and runs the timers once against the injected \ref
///    Clock. The cluster harness (net/cluster.h) drives this mode with
///    a VirtualClock for reproducible chaos runs.
///
/// Misbehaviour scoring matches the discrete-event simulator: an
/// invalid block or a poisoned frame stream costs 100 points and the
/// ban threshold is 100, so one provably-bad relay disconnects and
/// bans the sender (by address, refusing future dials).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_NET_NODE_H
#define TYPECOIN_NET_NODE_H

#include "net/peer.h"
#include "net/transport.h"
#include "typecoin/node.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace typecoin {
namespace net {

/// `$TYPECOIN_NET_THREADS`: cap on peer service threads in threaded
/// mode (0 / unset = one thread per peer, uncapped).
size_t netThreadsFromEnv();
/// `$TYPECOIN_COMPACT_RELAY`: "0" / "off" / "false" disables
/// compact-block relay (full Inv/GetData/Block relay only); anything
/// else — including unset — leaves it on.
bool compactRelayFromEnv();
/// `$TYPECOIN_NET_LISTEN`: transport address this process listens on
/// (default "node0"). Consumed by tools/tcnet; library code takes the
/// address explicitly.
std::string netListenFromEnv();
/// `$TYPECOIN_NET_CONNECT`: comma-separated transport addresses to
/// dial at startup (default empty). Consumed by tools/tcnet.
std::vector<std::string> netConnectFromEnv();

/// Tuning for one NetNode.
struct NetConfig {
  uint64_t Services = ServiceCompactRelay;
  /// Announce blocks as compact blocks to peers that negotiated
  /// ServiceCompactRelay (sender side; receivers always understand
  /// CmpctBlock). Defaults from $TYPECOIN_COMPACT_RELAY.
  bool CompactRelay = true;
  int BanThreshold = 100;
  size_t OrphanLimit = 64;
  /// Outstanding body requests per peer during headers-first sync.
  size_t MaxBlocksInFlight = 16;
  /// Cap on bodies queued (accepted headers awaiting a GetData slot)
  /// per peer; headers beyond it are re-fetched on the next GetHeaders
  /// round instead of growing the queue without bound.
  size_t MaxBodiesQueued = 1024;
  PeerTimers Timers;
  /// Seeds the node's nonce generator (handshake nonces, compact-block
  /// announcement nonces) — deterministic runs stay deterministic.
  uint64_t Seed = 0;
  std::string UserAgent = "/typecoin-net:0.1/";
  int RegistrationDepth = 1;
};

/// A Typecoin full node on the wire.
class NetNode {
public:
  /// \p Trans is this node's listening transport (already bound);
  /// \p Clk outlives the node and is shared with the transport's fault
  /// wrappers so jitter and timers agree on "now".
  NetNode(bitcoin::ChainParams Params, NetConfig Cfg,
          std::unique_ptr<Transport> Trans, std::shared_ptr<Clock> Clk);
  ~NetNode();

  NetNode(const NetNode &) = delete;
  NetNode &operator=(const NetNode &) = delete;

  std::string address() const { return Trans->listenAddress(); }

  /// The embedded full node. External mutation bypasses announcement —
  /// use the submit/mine entry points below for anything that should
  /// relay.
  tc::Node &typecoin() { return *Tc; }
  const tc::Node &typecoin() const { return *Tc; }
  const bitcoin::Blockchain &chain() const { return Tc->chain(); }
  const bitcoin::Mempool &mempool() const { return Tc->mempool(); }

  /// Locked snapshots of the chain tip for polling while service
  /// threads are running — the bare chain() reference is only safe
  /// when no threads mutate the node (pumped mode, or after stop()).
  int chainHeight() const;
  bitcoin::BlockHash chainTip() const;

  // --- Connections ------------------------------------------------------

  /// Dial \p Addr and start the handshake. Returns the peer id.
  Result<uint64_t> connectTo(const std::string &Addr);

  size_t peerCount() const;
  /// Peers that completed the Version/Verack handshake.
  size_t readyPeerCount() const;
  /// Is there a live (non-disconnected) connection to \p Addr?
  bool connectedTo(const std::string &Addr) const;

  int banScore(const std::string &Addr) const;
  bool isBanned(const std::string &Addr) const;

  // --- Local traffic (validates, then announces) ------------------------

  /// Admit a plain Bitcoin transaction to the mempool and announce it.
  Status submitTransaction(const bitcoin::Transaction &Tx);
  /// Submit a Typecoin pair (journal + mempool) and announce its
  /// carrier. Resubmissions from tc::Node::tick re-announce through the
  /// relay hook automatically.
  Status submitPair(const tc::Pair &P);
  /// Mine one block on the current tip and announce it (compact where
  /// negotiated).
  Result<bitcoin::Block> mine(const crypto::KeyId &Payout, uint32_t Time);

  // --- Execution --------------------------------------------------------

  /// Deterministic single-threaded step: accept pending inbound
  /// connections, drain every peer's frames through the handlers in
  /// peer-id order, run liveness timers at Clk->now(). Returns the
  /// number of frames processed (0 = quiescent).
  size_t pump();

  /// Start threaded mode: an acceptor/timer thread plus per-peer
  /// service threads (capped by \p MaxThreads; 0 = uncapped, one per
  /// peer — peers beyond the cap are served round-robin by the
  /// acceptor thread). Idempotent.
  void start(size_t MaxThreads = 0);
  /// Stop threads and join them. Connections stay open (stop is not
  /// disconnect), so pump() keeps working afterwards.
  void stop();
  bool running() const { return Running.load(); }

  /// Drive resubmission backoff (tc::Node::tick) and announce whatever
  /// it resubmits. Threaded mode calls this from the timer thread;
  /// pumped mode from pump().
  size_t tick(double Now);

  // --- Crash / restart --------------------------------------------------

  /// Crash: drop every connection and all volatile state (mempool,
  /// pending queue, orphans). The chain and the pair journal survive,
  /// exactly like the simulator's persisted store.
  void crash();
  bool isCrashed() const { return Crashed; }
  /// Recover volatile state from the surviving chain + journal
  /// (tc::Node::recover) and come back up. The caller re-dials peers;
  /// the handshake's GetHeaders catches the node up on missed blocks.
  Status restart();

  /// Re-announce our tip and re-request headers on every ready peer —
  /// the recovery nudge after a partition heals or fault plans clear,
  /// mirroring LocalNetwork::heal's cross-announcement.
  void resync();

  /// Number of orphan blocks parked waiting for parents.
  size_t orphanCount() const;

private:
  struct OrphanEntry {
    bitcoin::Block Blk;
    uint64_t Seq = 0;
  };

  // Locking: NodeMu guards everything below it plus the embedded
  // tc::Node. Handlers never call back into locked entry points;
  // *Locked helpers assume the lock is held.

  std::shared_ptr<Peer> addPeerLocked(std::shared_ptr<Connection> C,
                                      bool Inbound);
  void sendLocked(Peer &P, const Message &M);
  void disconnectLocked(Peer &P, const char *Why);
  void penalizeLocked(Peer &P, int Points, const char *Why);
  void reapLocked();

  /// Drain every decodable frame from \p P through the handlers.
  /// Returns frames processed.
  size_t drainPeerLocked(const std::shared_ptr<Peer> &P);
  size_t acceptPendingLocked();
  void timersLocked(double Now);

  void handleLocked(Peer &P, Message M);
  void handleVersion(Peer &P, const VersionMsg &M);
  void handleInv(Peer &P, const InvMsg &M);
  void handleGetData(Peer &P, const GetDataMsg &M);
  void handleGetHeaders(Peer &P, const GetHeadersMsg &M);
  void handleHeaders(Peer &P, const HeadersMsg &M);
  void handleTx(Peer &P, const TxMsg &M);
  void handleBlock(Peer &P, const BlockMsg &M);
  void handleCmpctBlock(Peer &P, const CmpctBlockMsg &M);
  void handleGetBlockTxn(Peer &P, const GetBlockTxnMsg &M);
  void handleBlockTxn(Peer &P, BlockTxnMsg M);

  void onHandshakeComplete(Peer &P);
  std::vector<bitcoin::BlockHash> locatorLocked() const;
  void sendGetHeadersLocked(Peer &P);
  void requestBodiesLocked(Peer &P);

  /// A block arrived (full, reconstructed, or orphan-released). Accepts
  /// it into the chain, frees dependent orphans, announces the new tip.
  /// \p FromCompact suppresses the misbehaviour penalty on failure (a
  /// short-id collision corrupts reconstruction through no fault of the
  /// sender) and falls back to a full-block GetData instead.
  void acceptBlockLocked(Peer *From, const bitcoin::Block &B,
                         bool FromCompact);
  void addOrphanLocked(Peer &From, const bitcoin::Block &B);
  void announceTxLocked(const bitcoin::Transaction &Tx, Peer *Skip);
  void announceBlockLocked(const bitcoin::Block &B, Peer *Skip);
  CmpctBlockMsg buildCompactLocked(const bitcoin::Block &B);

  void acceptorLoop();
  void peerLoop(std::shared_ptr<Peer> P);
  /// Join and drop the handles of peer threads that have exited, so a
  /// churning peer set does not pin thread slots until stop().
  void reapThreadsLocked();

  NetConfig Cfg;
  std::unique_ptr<Transport> Trans;
  std::shared_ptr<Clock> Clk;
  std::unique_ptr<tc::Node> Tc;

  mutable std::mutex NodeMu;
  std::map<uint64_t, std::shared_ptr<Peer>> Peers;
  uint64_t NextPeerId = 1;
  Rng Nonces;
  uint64_t SelfNonce = 0; ///< Detects dialing ourselves.
  std::map<std::string, int> BanScores;
  std::multimap<bitcoin::BlockHash, OrphanEntry> Orphans;
  uint64_t NextOrphanSeq = 0;
  /// Blocks requested from any peer (suppresses duplicate GetData).
  std::set<bitcoin::BlockHash> BlocksInFlight;
  double LastTick = 0;
  bool Crashed = false;

  std::atomic<bool> Running{false};
  std::vector<std::thread> Threads;
  /// Ids of peer threads that finished their loop and are ready to
  /// join (the exiting thread cannot join itself).
  std::vector<std::thread::id> ExitedThreads;
  size_t MaxThreads = 0;
  size_t PeerThreads = 0; ///< Dedicated peer threads currently live.
};

} // namespace net
} // namespace typecoin

#endif // TYPECOIN_NET_NODE_H
