//===- net/fault.cpp - Chaos plans as a transport wrapper -----------------===//

#include "net/fault.h"

#include "net/wire.h"
#include "obs/metrics.h"
#include "support/rng.h"

#include <queue>

namespace typecoin {
namespace net {

// --- ChaosState ---------------------------------------------------------

void ChaosState::setDefaultFault(const bitcoin::FaultPlan &Plan) {
  std::lock_guard<std::mutex> Lock(Mu);
  Default = Plan;
}

void ChaosState::setLinkFault(const std::string &From, const std::string &To,
                              const bitcoin::FaultPlan &Plan) {
  std::lock_guard<std::mutex> Lock(Mu);
  Links[{From, To}] = Plan;
}

void ChaosState::clearFaults() {
  std::lock_guard<std::mutex> Lock(Mu);
  Default = bitcoin::FaultPlan();
  Links.clear();
}

void ChaosState::setByzantine(const std::string &Addr,
                              const bitcoin::ByzantinePlan &Plan) {
  std::lock_guard<std::mutex> Lock(Mu);
  Byzantine[Addr] = Plan;
}

void ChaosState::partition(std::set<std::string> GroupA) {
  std::lock_guard<std::mutex> Lock(Mu);
  PartitionA = std::move(GroupA);
}

void ChaosState::heal() {
  std::lock_guard<std::mutex> Lock(Mu);
  PartitionA.reset();
}

bitcoin::FaultPlan ChaosState::planFor(const std::string &From,
                                       const std::string &To) const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (PartitionA &&
      (PartitionA->count(From) != 0) != (PartitionA->count(To) != 0)) {
    bitcoin::FaultPlan Cut;
    Cut.Drop = 1.0;
    return Cut;
  }
  auto It = Links.find({From, To});
  return It == Links.end() ? Default : It->second;
}

std::optional<bitcoin::ByzantinePlan> ChaosState::byzantineFor(
    const std::string &Addr) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Byzantine.find(Addr);
  if (It == Byzantine.end())
    return std::nullopt;
  return It->second;
}

namespace {
/// FNV-1a: stable across platforms (std::hash is not), so a chaos seed
/// replays identically everywhere.
uint64_t fnv64(const std::string &S, uint64_t H) {
  for (char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ull;
  }
  return H;
}
} // namespace

uint64_t ChaosState::linkSeed(const std::string &From,
                              const std::string &To) const {
  uint64_t H = fnv64(From, 1469598103934665603ull);
  H = fnv64("->", H);
  H = fnv64(To, H);
  return H ^ Seed;
}

void ChaosState::addPendingRelease(double T) {
  std::lock_guard<std::mutex> Lock(Mu);
  Pending.insert(T);
}

void ChaosState::removePendingRelease(double T) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Pending.find(T);
  if (It != Pending.end())
    Pending.erase(It);
}

std::optional<double> ChaosState::nextRelease() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Pending.empty())
    return std::nullopt;
  return *Pending.begin();
}

// --- ChaosConnection ----------------------------------------------------

namespace {

struct ChaosMetrics {
  obs::Counter &Dropped = obs::counter("net.fault.dropped");
  obs::Counter &Duplicated = obs::counter("net.fault.duplicated");
  obs::Counter &Jittered = obs::counter("net.fault.jittered");
  obs::Counter &InvalidBlock = obs::counter("net.byzantine.invalid_block");
  obs::Counter &Malleated = obs::counter("net.byzantine.malleated");

  static ChaosMetrics &get() {
    static ChaosMetrics M;
    return M;
  }
};

/// A frame held back by jitter.
struct DelayedFrame {
  double Release = 0;
  uint64_t Seq = 0;
  Bytes Frame;

  bool operator>(const DelayedFrame &O) const {
    if (Release != O.Release)
      return Release > O.Release;
    return Seq > O.Seq;
  }
};

class ChaosConnection : public Connection {
public:
  ChaosConnection(std::shared_ptr<Connection> Inner,
                  std::shared_ptr<ChaosState> Chaos, const Clock &Clk,
                  std::string SelfAddr)
      : Inner(std::move(Inner)), Chaos(std::move(Chaos)), Clk(Clk),
        Self(std::move(SelfAddr)),
        RecvRng(this->Chaos->linkSeed(this->Inner->peerAddress(), Self)),
        SendRng(this->Chaos->linkSeed(Self, this->Inner->peerAddress()) ^
                0x5a5a5a5a5a5a5a5aull) {}

  ~ChaosConnection() override {
    std::lock_guard<std::mutex> Lock(Mu);
    unschedule();
  }

  Status send(const Bytes &Frame) override {
    auto Byz = Chaos->byzantineFor(Self);
    if (!Byz)
      return Inner->send(Frame);
    std::lock_guard<std::mutex> Lock(Mu);
    return Inner->send(mangle(*Byz, Frame));
  }

  std::optional<Bytes> receive() override {
    std::lock_guard<std::mutex> Lock(Mu);
    pullInner();
    if (Held.empty() || Held.top().Release > Clk.now())
      return std::nullopt;
    Bytes F = Held.top().Frame;
    if (Held.top().Release > 0)
      Chaos->removePendingRelease(Held.top().Release);
    Held.pop();
    return F;
  }

  bool waitReadable(double TimeoutSec) override {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      pullInner();
      if (!Held.empty() && Held.top().Release <= Clk.now())
        return true;
      if (!Held.empty())
        TimeoutSec = std::min(TimeoutSec, Held.top().Release - Clk.now());
    }
    Inner->waitReadable(TimeoutSec);
    std::lock_guard<std::mutex> Lock(Mu);
    pullInner();
    return !Held.empty() && Held.top().Release <= Clk.now();
  }

  void close() override {
    Inner->close();
    std::lock_guard<std::mutex> Lock(Mu);
    unschedule();
    Held = {};
  }

  bool isOpen() const override { return Inner->isOpen(); }
  std::string peerAddress() const override { return Inner->peerAddress(); }

private:
  /// Drain the inner connection, applying the current directed-link plan
  /// to each frame. Caller holds Mu.
  void pullInner() {
    while (auto F = Inner->receive()) {
      bitcoin::FaultPlan Plan = Chaos->planFor(Inner->peerAddress(), Self);
      ChaosMetrics &M = ChaosMetrics::get();
      if (Plan.Drop > 0 && RecvRng.nextBool(Plan.Drop)) {
        M.Dropped.inc();
        continue;
      }
      int Copies =
          (Plan.Duplicate > 0 && RecvRng.nextBool(Plan.Duplicate)) ? 2 : 1;
      if (Copies > 1)
        M.Duplicated.inc();
      for (int C = 0; C < Copies; ++C) {
        DelayedFrame D;
        D.Seq = NextSeq++;
        D.Frame = *F;
        if (Plan.JitterSeconds > 0) {
          D.Release = Clk.now() + RecvRng.nextDouble() * Plan.JitterSeconds;
          M.Jittered.inc();
          Chaos->addPendingRelease(D.Release);
        }
        Held.push(std::move(D));
      }
    }
  }

  /// Drop this connection's scheduled releases (close/destruction).
  /// Caller holds Mu.
  void unschedule() {
    while (!Held.empty()) {
      if (Held.top().Release > 0)
        Chaos->removePendingRelease(Held.top().Release);
      Held.pop();
    }
  }

  /// Byzantine relay: decode the outbound frame; replace a transaction
  /// with its signature-malleated twin, a block with a Merkle-corrupted
  /// copy, per the plan's probabilities. Anything else passes through.
  /// Caller holds Mu (SendRng).
  Bytes mangle(const bitcoin::ByzantinePlan &Byz, const Bytes &Frame) {
    FrameDecoder D;
    D.feed(Frame);
    auto R = D.next();
    if (!R || !*R)
      return Frame; // Not decodable here; relay untouched.
    Message M = std::move(**R);
    ChaosMetrics &CM = ChaosMetrics::get();
    if (auto *TxM = std::get_if<TxMsg>(&M)) {
      if (Byz.MalleateRelay > 0 && SendRng.nextBool(Byz.MalleateRelay)) {
        if (auto Twisted = bitcoin::malleateTxSignatures(TxM->Tx)) {
          CM.Malleated.inc();
          return encodeMessage(TxMsg{std::move(*Twisted)});
        }
      }
    } else if (auto *BlkM = std::get_if<BlockMsg>(&M)) {
      if (Byz.InvalidBlock > 0 && SendRng.nextBool(Byz.InvalidBlock)) {
        CM.InvalidBlock.inc();
        return encodeMessage(
            BlockMsg{bitcoin::byzantineCorruptBlock(BlkM->B)});
      }
    }
    return Frame;
  }

  std::shared_ptr<Connection> Inner;
  std::shared_ptr<ChaosState> Chaos;
  const Clock &Clk;
  std::string Self;

  mutable std::mutex Mu;
  Rng RecvRng;
  Rng SendRng;
  uint64_t NextSeq = 0;
  std::priority_queue<DelayedFrame, std::vector<DelayedFrame>,
                      std::greater<>>
      Held;
};

} // namespace

// --- ChaosTransport -----------------------------------------------------

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> InnerIn,
                               std::shared_ptr<ChaosState> ChaosIn,
                               const Clock &Clk)
    : Inner(std::move(InnerIn)), Chaos(std::move(ChaosIn)), Clk(Clk) {}

ChaosTransport::~ChaosTransport() = default;

std::string ChaosTransport::listenAddress() const {
  return Inner->listenAddress();
}

std::shared_ptr<Connection> ChaosTransport::wrap(
    std::shared_ptr<Connection> C) {
  if (!C)
    return nullptr;
  return std::make_shared<ChaosConnection>(std::move(C), Chaos, Clk,
                                           Inner->listenAddress());
}

Result<std::shared_ptr<Connection>> ChaosTransport::connect(
    const std::string &Addr) {
  TC_UNWRAP(C, Inner->connect(Addr));
  return wrap(std::move(C));
}

std::shared_ptr<Connection> ChaosTransport::accept() {
  return wrap(Inner->accept());
}

} // namespace net
} // namespace typecoin
