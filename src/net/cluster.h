//===- net/cluster.h - Deterministic multi-node harness ---------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fully-meshed cluster of \ref NetNode instances over an in-process
/// \ref LoopbackHub, every link wrapped in a \ref ChaosTransport and
/// every timer driven by one shared \ref VirtualClock. The surface
/// mirrors \ref bitcoin::LocalNetwork (setDefaultFault / setLinkFault /
/// setByzantine / partitionAt / heal / crash / restart / mineAt /
/// submitTransaction / converged) so the chaos suite's scenarios run
/// unchanged over the real message-passing stack.
///
/// \ref settle replaces LocalNetwork::run: it pumps every node in index
/// order until the whole cluster is quiescent, advancing the virtual
/// clock to the next jitter release whenever a round makes no progress.
/// With a fixed seed the entire run — every drop, duplicate, and
/// delivery order — replays identically.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_NET_CLUSTER_H
#define TYPECOIN_NET_CLUSTER_H

#include "net/fault.h"
#include "net/node.h"

namespace typecoin {
namespace net {

class Cluster {
public:
  /// Build \p NumNodes nodes ("node0", "node1", ...), mesh-connect
  /// them, and settle the handshakes (fault plans start clean, so the
  /// mesh always comes up).
  Cluster(bitcoin::ChainParams Params, size_t NumNodes,
          uint64_t ChaosSeed = 0, NetConfig Base = NetConfig());
  ~Cluster();

  size_t size() const { return Nodes.size(); }
  NetNode &node(size_t I) { return *Nodes[I]; }
  const NetNode &node(size_t I) const { return *Nodes[I]; }
  const bitcoin::Blockchain &chain(size_t I) const {
    return Nodes[I]->chain();
  }
  const bitcoin::Mempool &mempool(size_t I) const {
    return Nodes[I]->mempool();
  }
  static std::string addressOf(size_t I) {
    return "node" + std::to_string(I);
  }

  // --- Chaos surface (LocalNetwork-compatible) --------------------------

  void setDefaultFault(const bitcoin::FaultPlan &Plan);
  void setLinkFault(size_t From, size_t To, const bitcoin::FaultPlan &Plan);
  /// Clear all plans and nudge every node to re-sync (lost
  /// announcements do not retransmit themselves).
  void clearFaults();
  void setByzantine(size_t Node, const bitcoin::ByzantinePlan &Plan);

  /// Sever links crossing {nodes < Boundary} vs the rest.
  void partitionAt(size_t Boundary);
  /// Restore the mesh: lift the partition, re-dial links that timed out
  /// across the cut, and re-sync both sides.
  void heal();

  void crash(size_t Node);
  bool isCrashed(size_t Node) const { return Nodes[Node]->isCrashed(); }
  /// Recover the node and re-dial its mesh links; the handshake's
  /// GetHeaders catches it up on what it missed.
  Status restart(size_t Node);

  // --- Traffic ----------------------------------------------------------

  Status submitTransaction(size_t Node, const bitcoin::Transaction &Tx);
  /// Advance the clock to \p Now, then mine at \p Node and announce.
  Result<bitcoin::Block> mineAt(size_t Node, const crypto::KeyId &Payout,
                                double Now);

  /// Pump all nodes round-robin until quiescent (advancing the virtual
  /// clock to pending jitter releases as needed). Returns rounds used.
  size_t settle(size_t MaxRounds = 100000);

  /// Advance the virtual clock (timers fire on the next settle/pump).
  void advance(double Seconds);
  double now() const { return Clk->now(); }

  bool converged() const;
  bool convergedAmong(const std::vector<size_t> &Among) const;

  ChaosState &chaos() { return *Chaos; }
  VirtualClock &clock() { return *Clk; }

private:
  void resyncAll();
  void reconnectMesh();

  LoopbackHub Hub;
  std::shared_ptr<VirtualClock> Clk;
  std::shared_ptr<ChaosState> Chaos;
  std::vector<std::unique_ptr<NetNode>> Nodes;
};

} // namespace net
} // namespace typecoin

#endif // TYPECOIN_NET_CLUSTER_H
