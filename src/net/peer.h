//===- net/peer.h - Per-peer connection state -------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-peer record of the P2P runtime: handshake progress, liveness
/// timers, the bounded known-inventory filter that deduplicates gossip,
/// in-flight request tracking for headers-first sync, and the partial
/// state of a compact-block reconstruction awaiting a GETBLOCKTXN
/// answer. Owned and mutated exclusively by \ref NetNode under its state
/// lock; the struct itself carries no synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_NET_PEER_H
#define TYPECOIN_NET_PEER_H

#include "net/transport.h"
#include "net/wire.h"

#include <deque>
#include <map>
#include <set>

namespace typecoin {
namespace net {

/// A bounded set of inventory items with FIFO eviction: remembers the
/// last \p Cap items seen on or sent over one link. Gossip dedup only
/// needs recency — an item old enough to be evicted has long since
/// propagated.
class BoundedInvSet {
public:
  explicit BoundedInvSet(size_t Cap = 4096) : Cap(Cap) {}

  bool contains(const InvItem &It) const { return Items.count(It) != 0; }

  /// Insert; returns false when the item was already present.
  bool insert(const InvItem &It) {
    if (!Items.insert(It).second)
      return false;
    Order.push_back(It);
    while (Order.size() > Cap) {
      Items.erase(Order.front());
      Order.pop_front();
    }
    return true;
  }

  size_t size() const { return Items.size(); }

private:
  size_t Cap;
  std::set<InvItem> Items;
  std::deque<InvItem> Order;
};

/// Liveness / handshake tuning.
struct PeerTimers {
  double HandshakeTimeoutSec = 10.0;
  double PingIntervalSec = 60.0;
  double PingTimeoutSec = 20.0;
  /// A ready peer holding a block GetData outstanding longer than this
  /// is disconnected as stalling: disconnect releases its in-flight
  /// marks so the blocks become fetchable from other peers again.
  double StallTimeoutSec = 60.0;
};

/// A compact block being reconstructed: the slots we could not fill from
/// the mempool are requested via GETBLOCKTXN and patched in when the
/// BLOCKTXN answer arrives.
struct CompactPending {
  bitcoin::BlockHeader Header;
  std::vector<bitcoin::Transaction> Txs; ///< Filled slots; misses empty.
  std::vector<bool> Have;
  std::vector<uint64_t> MissingIndexes;
};

/// One connected peer. All fields are guarded by the owning NetNode's
/// state mutex.
struct Peer {
  enum class State {
    Handshaking, ///< Version sent; waiting for Version/Verack.
    Ready,       ///< Verack exchanged; full traffic.
    Disconnected,
  };

  uint64_t Id = 0;
  std::shared_ptr<Connection> Conn;
  FrameDecoder Decoder;
  State St = State::Handshaking;
  bool Inbound = false;
  /// Served by its own thread in threaded mode (else the acceptor
  /// thread drains it round-robin).
  bool Dedicated = false;

  // Negotiated by the Version exchange.
  uint64_t Services = 0;
  int32_t StartHeight = 0;
  bool VersionReceived = false;
  bool VerackReceived = false;

  // Liveness.
  double ConnectedAt = 0;
  double LastRecv = 0;
  double LastPingSent = -1;   ///< -1: none outstanding.
  uint64_t PingNonce = 0;

  /// Items this link already knows about (either direction); suppresses
  /// re-announcement and measures duplicate-INV amplification.
  BoundedInvSet Known;
  /// Outstanding GETDATA requests to this peer, with the time each was
  /// sent (drives the stall timeout).
  std::map<InvItem, double> Requested;

  /// Headers-first sync: block hashes whose headers we accepted from
  /// this peer and whose bodies are not yet requested, oldest first.
  std::deque<bitcoin::BlockHash> BodiesToFetch;
  /// A full 2000-header message means more may follow.
  bool MoreHeadersExpected = false;

  /// Compact reconstructions awaiting this peer's BLOCKTXN.
  std::map<bitcoin::BlockHash, CompactPending> Reconstructing;

  bool compactNegotiated() const {
    return (Services & ServiceCompactRelay) != 0;
  }
  bool ready() const { return St == State::Ready; }
  std::string address() const { return Conn->peerAddress(); }
};

} // namespace net
} // namespace typecoin

#endif // TYPECOIN_NET_PEER_H
