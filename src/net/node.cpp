//===- net/node.cpp - The concurrent P2P runtime --------------------------===//

#include "net/node.h"

#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace typecoin {
namespace net {

size_t netThreadsFromEnv() {
  const char *V = std::getenv("TYPECOIN_NET_THREADS");
  if (!V || !*V)
    return 0;
  long N = std::strtol(V, nullptr, 10);
  return N < 0 ? 0 : static_cast<size_t>(N);
}

bool compactRelayFromEnv() {
  const char *V = std::getenv("TYPECOIN_COMPACT_RELAY");
  if (!V)
    return true;
  std::string S(V);
  return !(S == "0" || S == "off" || S == "false" || S == "no");
}

std::string netListenFromEnv() {
  const char *V = std::getenv("TYPECOIN_NET_LISTEN");
  return V && *V ? std::string(V) : std::string("node0");
}

std::vector<std::string> netConnectFromEnv() {
  std::vector<std::string> Out;
  const char *V = std::getenv("TYPECOIN_NET_CONNECT");
  if (!V)
    return Out;
  std::string S(V);
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

namespace {

struct NetMetrics {
  obs::Counter &BytesIn = obs::counter("net.bytes.in");
  obs::Counter &BytesOut = obs::counter("net.bytes.out");
  obs::Counter &MsgIn = obs::counter("net.msg.in");
  obs::Counter &MsgOut = obs::counter("net.msg.out");
  obs::Counter &InvDup = obs::counter("net.inv.dup");
  obs::Counter &InvDedup = obs::counter("net.inv.dedup");
  obs::Counter &CompactHit = obs::counter("net.compact.hit");
  obs::Counter &CompactMiss = obs::counter("net.compact.miss");
  obs::Counter &CompactFallback = obs::counter("net.compact.fallback");
  obs::Counter &FullBlockIn = obs::counter("net.block.full.recv");
  obs::Counter &HeadersIn = obs::counter("net.headers.accepted");
  obs::Counter &PeerConnected = obs::counter("net.peer.connected");
  obs::Counter &PeerReady = obs::counter("net.peer.ready");
  obs::Counter &PeerDisconnected = obs::counter("net.peer.disconnected");
  obs::Counter &PeerBanned = obs::counter("net.peer.banned");
  obs::Counter &Penalized = obs::counter("net.ban.penalized");
  obs::Counter &OrphanAdded = obs::counter("net.orphan.added");
  obs::Counter &OrphanEvicted = obs::counter("net.orphan.evicted");

  static NetMetrics &get() {
    static NetMetrics M;
    return M;
  }
};

/// FNV-1a over the listen address: distinct nodes sharing one NetConfig
/// seed still get distinct nonce streams.
uint64_t addrSalt(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ull;
  }
  return H;
}

bitcoin::BlockHash asBlockHash(const InvItem &It) {
  bitcoin::BlockHash H;
  H.Hash = It.Hash;
  return H;
}

bitcoin::TxId asTxId(const InvItem &It) {
  bitcoin::TxId T;
  T.Hash = It.Hash;
  return T;
}

} // namespace

NetNode::NetNode(bitcoin::ChainParams Params, NetConfig CfgIn,
                 std::unique_ptr<Transport> TransIn,
                 std::shared_ptr<Clock> ClkIn)
    : Cfg(CfgIn), Trans(std::move(TransIn)), Clk(std::move(ClkIn)),
      Tc(std::make_unique<tc::Node>(Params, CfgIn.RegistrationDepth)),
      Nonces(CfgIn.Seed ^ addrSalt(Trans->listenAddress())) {
  SelfNonce = Nonces.next();
  if (!Cfg.CompactRelay)
    Cfg.Services &= ~ServiceCompactRelay;
  // Resubmissions from the backoff queue re-enter the gossip layer.
  // tc::Node::tick only runs under NodeMu (see tick/pump), so the
  // locked announcement is sound here.
  Tc->setRelay([this](const tc::Pair &P) { announceTxLocked(P.Btc, nullptr); });
}

NetNode::~NetNode() { stop(); }

// --- Connections --------------------------------------------------------

Result<uint64_t> NetNode::connectTo(const std::string &Addr) {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Crashed)
    return makeError("net: node is crashed");
  if (BanScores.count(Addr) && BanScores.at(Addr) >= Cfg.BanThreshold)
    return makeError("net: peer is banned: " + Addr);
  TC_UNWRAP(C, Trans->connect(Addr));
  return addPeerLocked(std::move(C), /*Inbound=*/false)->Id;
}

size_t NetNode::peerCount() const {
  std::lock_guard<std::mutex> Lock(NodeMu);
  size_t N = 0;
  for (const auto &E : Peers)
    if (E.second->St != Peer::State::Disconnected)
      ++N;
  return N;
}

size_t NetNode::readyPeerCount() const {
  std::lock_guard<std::mutex> Lock(NodeMu);
  size_t N = 0;
  for (const auto &E : Peers)
    if (E.second->ready())
      ++N;
  return N;
}

bool NetNode::connectedTo(const std::string &Addr) const {
  std::lock_guard<std::mutex> Lock(NodeMu);
  for (const auto &E : Peers)
    if (E.second->St != Peer::State::Disconnected &&
        E.second->address() == Addr)
      return true;
  return false;
}

int NetNode::banScore(const std::string &Addr) const {
  std::lock_guard<std::mutex> Lock(NodeMu);
  auto It = BanScores.find(Addr);
  return It == BanScores.end() ? 0 : It->second;
}

bool NetNode::isBanned(const std::string &Addr) const {
  return banScore(Addr) >= Cfg.BanThreshold;
}

int NetNode::chainHeight() const {
  std::lock_guard<std::mutex> Lock(NodeMu);
  return Tc->chain().height();
}

bitcoin::BlockHash NetNode::chainTip() const {
  std::lock_guard<std::mutex> Lock(NodeMu);
  return Tc->chain().tipHash();
}

size_t NetNode::orphanCount() const {
  std::lock_guard<std::mutex> Lock(NodeMu);
  return Orphans.size();
}

std::shared_ptr<Peer> NetNode::addPeerLocked(std::shared_ptr<Connection> C,
                                             bool Inbound) {
  auto P = std::make_shared<Peer>();
  P->Id = NextPeerId++;
  P->Conn = std::move(C);
  P->Inbound = Inbound;
  P->ConnectedAt = Clk->now();
  P->LastRecv = P->ConnectedAt;
  Peers[P->Id] = P;
  NetMetrics::get().PeerConnected.inc();

  VersionMsg V;
  V.Services = Cfg.Services;
  V.Nonce = SelfNonce;
  V.StartHeight = Tc->chain().height();
  V.UserAgent = Cfg.UserAgent;
  sendLocked(*P, V);

  if (Running.load()) {
    reapThreadsLocked(); // Free slots held by exited peer threads.
    if (MaxThreads == 0 || PeerThreads < MaxThreads) {
      P->Dedicated = true;
      ++PeerThreads;
      Threads.emplace_back(&NetNode::peerLoop, this, P);
    }
  }
  return P;
}

void NetNode::sendLocked(Peer &P, const Message &M) {
  if (!P.Conn->isOpen() || P.St == Peer::State::Disconnected)
    return;
  Bytes F = encodeMessage(M);
  NetMetrics::get().BytesOut.inc(F.size());
  NetMetrics::get().MsgOut.inc();
  (void)P.Conn->send(F); // A closed pipe is detected on the next drain.
}

void NetNode::disconnectLocked(Peer &P, const char *Why) {
  (void)Why;
  if (P.St == Peer::State::Disconnected)
    return;
  P.St = Peer::State::Disconnected;
  // Release every in-flight mark this peer holds — both bodies already
  // requested and bodies still queued for a GetData slot — or no other
  // peer would ever be asked for them.
  for (const auto &R : P.Requested)
    if (R.first.Kind == InvKind::Block)
      BlocksInFlight.erase(asBlockHash(R.first));
  for (const bitcoin::BlockHash &H : P.BodiesToFetch)
    BlocksInFlight.erase(H);
  P.Requested.clear();
  P.Reconstructing.clear();
  P.BodiesToFetch.clear();
  P.Conn->close();
  NetMetrics::get().PeerDisconnected.inc();
}

void NetNode::penalizeLocked(Peer &P, int Points, const char *Why) {
  NetMetrics::get().Penalized.inc();
  int &S = BanScores[P.address()];
  S += Points;
  if (S >= Cfg.BanThreshold) {
    NetMetrics::get().PeerBanned.inc();
    disconnectLocked(P, Why);
  }
}

void NetNode::reapLocked() {
  for (auto It = Peers.begin(); It != Peers.end();) {
    if (It->second->St == Peer::State::Disconnected)
      It = Peers.erase(It);
    else
      ++It;
  }
}

// --- Local traffic ------------------------------------------------------

Status NetNode::submitTransaction(const bitcoin::Transaction &Tx) {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Crashed)
    return makeError("net: node is crashed");
  TC_TRY(Tc->submitPlain(Tx));
  announceTxLocked(Tx, nullptr);
  return Status::success();
}

Status NetNode::submitPair(const tc::Pair &P) {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Crashed)
    return makeError("net: node is crashed");
  TC_TRY(Tc->submitPair(P));
  announceTxLocked(P.Btc, nullptr);
  return Status::success();
}

Result<bitcoin::Block> NetNode::mine(const crypto::KeyId &Payout,
                                     uint32_t Time) {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Crashed)
    return makeError("net: node is crashed");
  TC_TRY(Tc->mineBlock(Payout, Time));
  const bitcoin::Block *B = Tc->chain().blockByHash(Tc->chain().tipHash());
  announceBlockLocked(*B, nullptr);
  return *B;
}

// --- Execution ----------------------------------------------------------

size_t NetNode::pump() {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Crashed)
    return 0;
  size_t N = acceptPendingLocked();
  // Snapshot: handlers never add peers, but reap-safety is cheap.
  std::vector<std::shared_ptr<Peer>> Ps;
  Ps.reserve(Peers.size());
  for (const auto &E : Peers)
    Ps.push_back(E.second);
  for (const auto &P : Ps)
    N += drainPeerLocked(P);
  timersLocked(Clk->now());
  N += Tc->tick(Clk->now());
  reapLocked();
  return N;
}

size_t NetNode::acceptPendingLocked() {
  size_t N = 0;
  while (auto C = Trans->accept()) {
    auto It = BanScores.find(C->peerAddress());
    if (It != BanScores.end() && It->second >= Cfg.BanThreshold) {
      C->close();
      continue;
    }
    addPeerLocked(std::move(C), /*Inbound=*/true);
    ++N;
  }
  return N;
}

size_t NetNode::drainPeerLocked(const std::shared_ptr<Peer> &P) {
  if (P->St == Peer::State::Disconnected)
    return 0;
  size_t N = 0;
  NetMetrics &M = NetMetrics::get();
  while (auto F = P->Conn->receive()) {
    M.BytesIn.inc(F->size());
    P->LastRecv = Clk->now();
    P->Decoder.feed(*F);
    for (;;) {
      auto R = P->Decoder.next();
      if (!R) {
        // Poisoned stream: one corrupt frame costs the full penalty —
        // resynchronizing on attacker-controlled bytes is worse.
        penalizeLocked(*P, Cfg.BanThreshold, "corrupt frame stream");
        if (P->St != Peer::State::Disconnected)
          disconnectLocked(*P, "corrupt frame stream");
        return N;
      }
      if (!*R)
        break;
      ++N;
      M.MsgIn.inc();
      handleLocked(*P, std::move(**R));
      if (P->St == Peer::State::Disconnected)
        return N;
    }
  }
  if (!P->Conn->isOpen())
    disconnectLocked(*P, "connection closed");
  return N;
}

void NetNode::timersLocked(double Now) {
  bool BlocksReleased = false;
  for (const auto &E : Peers) {
    Peer &P = *E.second;
    if (P.St == Peer::State::Handshaking &&
        Now - P.ConnectedAt > Cfg.Timers.HandshakeTimeoutSec) {
      disconnectLocked(P, "handshake timeout");
      continue;
    }
    if (!P.ready())
      continue;
    // Stalled download: a peer that answers pings but never delivers a
    // requested block would keep the hash in BlocksInFlight forever,
    // locking every other peer out of fetching it. Cut the peer loose
    // (releasing its marks) and nudge the survivors below.
    bool Stalled = false;
    for (auto It = P.Requested.begin(); It != P.Requested.end();) {
      if (Now - It->second <= Cfg.Timers.StallTimeoutSec) {
        ++It;
      } else if (It->first.Kind == InvKind::Block) {
        Stalled = true;
        break;
      } else {
        It = P.Requested.erase(It); // Tx: a future Inv may re-request.
      }
    }
    if (Stalled) {
      disconnectLocked(P, "stalling block download");
      BlocksReleased = true;
      continue;
    }
    if (P.LastPingSent >= 0 &&
        Now - P.LastPingSent > Cfg.Timers.PingTimeoutSec) {
      disconnectLocked(P, "ping timeout");
      continue;
    }
    if (P.LastPingSent < 0 && Now - P.LastRecv >= Cfg.Timers.PingIntervalSec) {
      P.PingNonce = Nonces.next();
      P.LastPingSent = Now;
      sendLocked(P, PingMsg{P.PingNonce});
    }
  }
  if (BlocksReleased) {
    // Reassign: ask everyone else for headers; the released blocks are
    // fetchable again, so the answers re-schedule their bodies.
    for (const auto &E : Peers)
      if (E.second->ready())
        sendGetHeadersLocked(*E.second);
  }
}

size_t NetNode::tick(double Now) {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Crashed)
    return 0;
  timersLocked(Now);
  return Tc->tick(Now);
}

void NetNode::start(size_t MaxThreadsIn) {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Running.load())
    return;
  MaxThreads = MaxThreadsIn;
  Running.store(true);
  Threads.emplace_back(&NetNode::acceptorLoop, this);
  for (const auto &E : Peers) {
    if (E.second->St == Peer::State::Disconnected)
      continue;
    if (MaxThreads == 0 || PeerThreads < MaxThreads) {
      E.second->Dedicated = true;
      ++PeerThreads;
      Threads.emplace_back(&NetNode::peerLoop, this, E.second);
    }
  }
}

void NetNode::stop() {
  std::vector<std::thread> Joinable;
  {
    std::lock_guard<std::mutex> Lock(NodeMu);
    if (!Running.load())
      return;
    Running.store(false);
    Joinable.swap(Threads);
    PeerThreads = 0;
    for (const auto &E : Peers)
      E.second->Dedicated = false;
  }
  for (std::thread &T : Joinable)
    T.join();
  std::lock_guard<std::mutex> Lock(NodeMu);
  ExitedThreads.clear(); // All of them are joined now.
}

void NetNode::reapThreadsLocked() {
  // Exiting peer threads park their id here as their last locked
  // action; by the time anyone else holds NodeMu and reads it, the
  // corresponding join can only block momentarily.
  for (std::thread::id Id : ExitedThreads) {
    for (auto It = Threads.begin(); It != Threads.end(); ++It) {
      if (It->get_id() == Id) {
        It->join();
        Threads.erase(It);
        break;
      }
    }
  }
  ExitedThreads.clear();
}

void NetNode::acceptorLoop() {
  while (Running.load()) {
    {
      std::lock_guard<std::mutex> Lock(NodeMu);
      reapThreadsLocked();
      if (!Crashed) {
        acceptPendingLocked();
        // Serve peers without a dedicated thread, round-robin.
        std::vector<std::shared_ptr<Peer>> Ps;
        for (const auto &E : Peers)
          if (!E.second->Dedicated)
            Ps.push_back(E.second);
        for (const auto &P : Ps)
          drainPeerLocked(P);
        timersLocked(Clk->now());
        Tc->tick(Clk->now());
        reapLocked();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void NetNode::peerLoop(std::shared_ptr<Peer> P) {
  // Peer state (St, Dedicated) is only ever read or written under
  // NodeMu; the Connection itself is internally synchronized, so the
  // waitReadable block happens lock-free.
  bool Gone = false;
  while (Running.load() && !Gone) {
    {
      std::lock_guard<std::mutex> Lock(NodeMu);
      if (P->St != Peer::State::Disconnected)
        drainPeerLocked(P); // Disconnects on a closed pipe itself.
      Gone = P->St == Peer::State::Disconnected;
    }
    if (!Gone)
      P->Conn->waitReadable(0.05);
  }
  // Hand the thread slot back so churned peers do not pin capacity;
  // the acceptor (or the next addPeer) joins the exited handle.
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (P->Dedicated) {
    P->Dedicated = false;
    if (PeerThreads > 0)
      --PeerThreads;
  }
  ExitedThreads.push_back(std::this_thread::get_id());
}

// --- Crash / restart ----------------------------------------------------

void NetNode::crash() {
  std::lock_guard<std::mutex> Lock(NodeMu);
  Crashed = true;
  for (const auto &E : Peers)
    disconnectLocked(*E.second, "crash");
  Peers.clear();
  Orphans.clear();
  BlocksInFlight.clear();
  // Volatile state is gone; the chain and the pair journal survive
  // (restart() rebuilds the rest via tc::Node::recover).
  Tc->mempool().clear();
}

Status NetNode::restart() {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (!Crashed)
    return Status::success();
  TC_TRY(Tc->recover());
  Crashed = false;
  return Status::success();
}

void NetNode::resync() {
  std::lock_guard<std::mutex> Lock(NodeMu);
  if (Crashed)
    return;
  const bitcoin::Block *Tip = Tc->chain().blockByHash(Tc->chain().tipHash());
  InvItem TipInv = invBlock(Tip->hash());
  for (const auto &E : Peers) {
    Peer &P = *E.second;
    if (!P.ready())
      continue;
    sendGetHeadersLocked(P);
    // Retransmit outstanding GetData: the original may have been eaten
    // by a fault plan, and nothing else ever re-requests an item that
    // is already marked in flight. Duplicate answers are idempotent.
    if (!P.Requested.empty()) {
      GetDataMsg Again;
      for (const auto &R : P.Requested)
        Again.Items.push_back(R.first);
      sendLocked(P, Again);
    }
    requestBodiesLocked(P);
    // Forced tip re-announcement: a drop may have eaten the original,
    // so bypass the Known filter (the duplicate is counted, not
    // suppressed, on the receiving side).
    P.Known.insert(TipInv);
    sendLocked(P, InvMsg{{TipInv}});
  }
}

// --- Handlers -----------------------------------------------------------

void NetNode::handleLocked(Peer &P, Message M) {
  // Before the handshake completes only handshake + liveness traffic is
  // legal; anything else is ignored (cheap, and chaos reordering must
  // not escalate into penalties).
  if (P.St != Peer::State::Ready) {
    bool Allowed = std::holds_alternative<VersionMsg>(M) ||
                   std::holds_alternative<VerackMsg>(M) ||
                   std::holds_alternative<PingMsg>(M) ||
                   std::holds_alternative<PongMsg>(M);
    if (!Allowed)
      return;
  }
  std::visit(
      [&](auto &Msg) {
        using T = std::decay_t<decltype(Msg)>;
        if constexpr (std::is_same_v<T, VersionMsg>)
          handleVersion(P, Msg);
        else if constexpr (std::is_same_v<T, VerackMsg>) {
          P.VerackReceived = true;
          if (P.VersionReceived && P.St == Peer::State::Handshaking)
            onHandshakeComplete(P);
        } else if constexpr (std::is_same_v<T, PingMsg>)
          sendLocked(P, PongMsg{Msg.Nonce});
        else if constexpr (std::is_same_v<T, PongMsg>) {
          if (Msg.Nonce == P.PingNonce)
            P.LastPingSent = -1;
        } else if constexpr (std::is_same_v<T, InvMsg>)
          handleInv(P, Msg);
        else if constexpr (std::is_same_v<T, GetDataMsg>)
          handleGetData(P, Msg);
        else if constexpr (std::is_same_v<T, GetHeadersMsg>)
          handleGetHeaders(P, Msg);
        else if constexpr (std::is_same_v<T, HeadersMsg>)
          handleHeaders(P, Msg);
        else if constexpr (std::is_same_v<T, BlockMsg>)
          handleBlock(P, Msg);
        else if constexpr (std::is_same_v<T, TxMsg>)
          handleTx(P, Msg);
        else if constexpr (std::is_same_v<T, CmpctBlockMsg>)
          handleCmpctBlock(P, Msg);
        else if constexpr (std::is_same_v<T, GetBlockTxnMsg>)
          handleGetBlockTxn(P, Msg);
        else if constexpr (std::is_same_v<T, BlockTxnMsg>)
          handleBlockTxn(P, std::move(Msg));
      },
      M);
}

void NetNode::handleVersion(Peer &P, const VersionMsg &M) {
  if (P.VersionReceived) {
    penalizeLocked(P, 10, "duplicate version");
    return;
  }
  if (M.Nonce == SelfNonce) {
    disconnectLocked(P, "connected to self");
    return;
  }
  P.VersionReceived = true;
  P.Services = M.Services;
  P.StartHeight = M.StartHeight;
  sendLocked(P, VerackMsg{});
  if (P.VerackReceived && P.St == Peer::State::Handshaking)
    onHandshakeComplete(P);
}

void NetNode::onHandshakeComplete(Peer &P) {
  P.St = Peer::State::Ready;
  NetMetrics::get().PeerReady.inc();
  // Headers-first initial sync: ask for everything after our best
  // chain. Symmetric (both ends ask), so whichever side is behind
  // catches up; an up-to-date peer answers with zero headers.
  sendGetHeadersLocked(P);
}

std::vector<bitcoin::BlockHash> NetNode::locatorLocked() const {
  // Exponentially-spaced sample of the best chain, newest first,
  // always ending at genesis.
  std::vector<bitcoin::BlockHash> L;
  const bitcoin::Blockchain &Chain = Tc->chain();
  int Step = 1;
  for (int H = Chain.height(); H > 0; H -= Step) {
    L.push_back(*Chain.blockHashAt(H));
    if (L.size() >= 10)
      Step *= 2;
  }
  L.push_back(*Chain.blockHashAt(0));
  return L;
}

void NetNode::sendGetHeadersLocked(Peer &P) {
  GetHeadersMsg G;
  G.Locator = locatorLocked();
  sendLocked(P, G);
}

void NetNode::handleGetHeaders(Peer &P, const GetHeadersMsg &M) {
  const bitcoin::Blockchain &Chain = Tc->chain();
  std::set<bitcoin::BlockHash> Loc(M.Locator.begin(), M.Locator.end());
  int Fork = 0;
  for (int H = Chain.height(); H >= 0; --H) {
    if (Loc.count(*Chain.blockHashAt(H))) {
      Fork = H;
      break;
    }
  }
  HeadersMsg R;
  for (int H = Fork + 1;
       H <= Chain.height() && R.Headers.size() < MaxHeadersPerMsg; ++H) {
    const bitcoin::Block *B = Chain.blockByHash(*Chain.blockHashAt(H));
    R.Headers.push_back(B->Header);
    if (!M.Stop.isNull() && B->hash() == M.Stop)
      break;
  }
  sendLocked(P, R);
}

void NetNode::handleHeaders(Peer &P, const HeadersMsg &M) {
  const bitcoin::Blockchain &Chain = Tc->chain();
  std::set<bitcoin::BlockHash> Batch;
  size_t Accepted = 0;
  bool Truncated = false;
  for (const bitcoin::BlockHeader &H : M.Headers) {
    bitcoin::BlockHash HH = H.hash();
    bool Connects = Chain.blockByHash(H.Prev) != nullptr ||
                    Batch.count(H.Prev) != 0 ||
                    BlocksInFlight.count(H.Prev) != 0;
    if (!Connects)
      continue; // Unconnected headers carry no usable ancestry; skip.
    Batch.insert(HH);
    ++Accepted;
    if (Chain.blockByHash(HH) || BlocksInFlight.count(HH))
      continue; // Body already present or scheduled.
    if (P.BodiesToFetch.size() >= Cfg.MaxBodiesQueued) {
      // Bounded schedule: the rest re-arrives on the next GetHeaders
      // round once this queue drains.
      Truncated = true;
      continue;
    }
    BlocksInFlight.insert(HH);
    P.BodiesToFetch.push_back(HH);
  }
  NetMetrics::get().HeadersIn.inc(Accepted);
  P.MoreHeadersExpected = Truncated || M.Headers.size() == MaxHeadersPerMsg;
  requestBodiesLocked(P);
}

void NetNode::requestBodiesLocked(Peer &P) {
  GetDataMsg G;
  while (!P.BodiesToFetch.empty() &&
         P.Requested.size() < Cfg.MaxBlocksInFlight) {
    bitcoin::BlockHash H = P.BodiesToFetch.front();
    P.BodiesToFetch.pop_front();
    if (Tc->chain().blockByHash(H)) {
      BlocksInFlight.erase(H);
      continue;
    }
    InvItem It = invBlock(H);
    P.Requested.emplace(It, Clk->now());
    G.Items.push_back(It);
  }
  if (!G.Items.empty())
    sendLocked(P, G);
}

void NetNode::handleInv(Peer &P, const InvMsg &M) {
  NetMetrics &Met = NetMetrics::get();
  GetDataMsg G;
  for (const InvItem &It : M.Items) {
    if (!P.Known.insert(It))
      Met.InvDup.inc(); // Duplicate announcement on this link.
    if (P.Requested.count(It))
      continue;
    if (It.Kind == InvKind::Block) {
      bitcoin::BlockHash H = asBlockHash(It);
      if (Tc->chain().blockByHash(H) || BlocksInFlight.count(H))
        continue;
      BlocksInFlight.insert(H);
    } else {
      bitcoin::TxId T = asTxId(It);
      if (Tc->mempool().contains(T) || Tc->chain().findTransaction(T))
        continue;
    }
    P.Requested.emplace(It, Clk->now());
    G.Items.push_back(It);
  }
  if (!G.Items.empty())
    sendLocked(P, G);
}

void NetNode::handleGetData(Peer &P, const GetDataMsg &M) {
  for (const InvItem &It : M.Items) {
    if (It.Kind == InvKind::Block) {
      const bitcoin::Block *B = Tc->chain().blockByHash(asBlockHash(It));
      if (!B)
        continue; // NotFound is silent; the requester times out.
      P.Known.insert(It);
      sendLocked(P, BlockMsg{*B});
    } else {
      bitcoin::TxId T = asTxId(It);
      const bitcoin::Transaction *Tx = Tc->mempool().get(T);
      if (!Tx)
        Tx = Tc->chain().findTransaction(T);
      if (!Tx)
        continue;
      P.Known.insert(It);
      sendLocked(P, TxMsg{*Tx});
    }
  }
}

void NetNode::handleTx(Peer &P, const TxMsg &M) {
  bitcoin::TxId Id = M.Tx.txid();
  InvItem It = invTx(Id);
  P.Known.insert(It);
  P.Requested.erase(It);
  if (Tc->mempool().contains(Id) || Tc->chain().findTransaction(Id))
    return;
  // Policy rejection (fee, standardness, double-spend race — e.g. a
  // malleated twin arriving after the original) is not misbehaviour.
  if (!Tc->mempool().acceptTransaction(M.Tx, Tc->chain()))
    return;
  announceTxLocked(M.Tx, &P);
}

void NetNode::handleBlock(Peer &P, const BlockMsg &M) {
  NetMetrics::get().FullBlockIn.inc();
  bitcoin::BlockHash H = M.B.hash();
  InvItem It = invBlock(H);
  P.Known.insert(It);
  P.Requested.erase(It);
  BlocksInFlight.erase(H);
  acceptBlockLocked(&P, M.B, /*FromCompact=*/false);
  if (P.St == Peer::State::Disconnected)
    return;
  requestBodiesLocked(P);
  if (P.BodiesToFetch.empty() && P.Requested.empty() &&
      P.MoreHeadersExpected) {
    P.MoreHeadersExpected = false;
    sendGetHeadersLocked(P);
  }
}

void NetNode::handleCmpctBlock(Peer &P, const CmpctBlockMsg &M) {
  NetMetrics &Met = NetMetrics::get();
  bitcoin::BlockHash H = M.Header.hash();
  P.Known.insert(invBlock(H));
  if (Tc->chain().blockByHash(H))
    return;
  size_t Total = M.ShortIds.size() + M.Prefilled.size();
  if (Total == 0 || Total > MaxVectorItems) {
    penalizeLocked(P, 10, "empty/oversized compact block");
    return;
  }
  CompactPending R;
  R.Header = M.Header;
  R.Txs.resize(Total);
  R.Have.assign(Total, false);
  for (const PrefilledTx &PF : M.Prefilled) {
    if (PF.Index >= Total || R.Have[PF.Index]) {
      penalizeLocked(P, 10, "bad prefilled index");
      return;
    }
    R.Txs[PF.Index] = PF.Tx;
    R.Have[PF.Index] = true;
  }

  // Resolve short ids against the mempool. An id matching two pool
  // entries is ambiguous and treated as missing (BIP 152 semantics).
  auto Snap = Tc->mempool().snapshot();
  std::map<uint64_t, size_t> BySid;
  std::set<uint64_t> Ambiguous;
  for (size_t I = 0; I < Snap.size(); ++I) {
    uint64_t Sid = shortTxId(H, M.Nonce, Snap[I].txid());
    if (!BySid.emplace(Sid, I).second)
      Ambiguous.insert(Sid);
  }
  size_t SidIdx = 0;
  for (size_t Slot = 0; Slot < Total; ++Slot) {
    if (R.Have[Slot])
      continue;
    uint64_t Sid = M.ShortIds[SidIdx++];
    auto F = BySid.find(Sid);
    if (F != BySid.end() && !Ambiguous.count(Sid)) {
      R.Txs[Slot] = Snap[F->second];
      R.Have[Slot] = true;
    } else {
      R.MissingIndexes.push_back(Slot);
    }
  }

  if (R.MissingIndexes.empty()) {
    Met.CompactHit.inc();
    bitcoin::Block B;
    B.Header = M.Header;
    B.Txs = std::move(R.Txs);
    acceptBlockLocked(&P, B, /*FromCompact=*/true);
    return;
  }
  Met.CompactMiss.inc();
  GetBlockTxnMsg G;
  G.Block = H;
  G.Indexes.assign(R.MissingIndexes.begin(), R.MissingIndexes.end());
  P.Reconstructing[H] = std::move(R);
  sendLocked(P, G);
}

void NetNode::handleGetBlockTxn(Peer &P, const GetBlockTxnMsg &M) {
  const bitcoin::Block *B = Tc->chain().blockByHash(M.Block);
  if (!B)
    return;
  BlockTxnMsg R;
  R.Block = M.Block;
  for (uint64_t I : M.Indexes) {
    if (I >= B->Txs.size()) {
      penalizeLocked(P, 10, "getblocktxn index out of range");
      return;
    }
    R.Txs.push_back(B->Txs[I]);
  }
  sendLocked(P, R);
}

void NetNode::handleBlockTxn(Peer &P, BlockTxnMsg M) {
  auto It = P.Reconstructing.find(M.Block);
  if (It == P.Reconstructing.end())
    return;
  CompactPending R = std::move(It->second);
  P.Reconstructing.erase(It);
  if (M.Txs.size() != R.MissingIndexes.size()) {
    penalizeLocked(P, 10, "blocktxn count mismatch");
    return;
  }
  for (size_t I = 0; I < M.Txs.size(); ++I)
    R.Txs[R.MissingIndexes[I]] = std::move(M.Txs[I]);
  bitcoin::Block B;
  B.Header = R.Header;
  B.Txs = std::move(R.Txs);
  acceptBlockLocked(&P, B, /*FromCompact=*/true);
}

// --- Block acceptance and gossip ----------------------------------------

void NetNode::acceptBlockLocked(Peer *From, const bitcoin::Block &B,
                                bool FromCompact) {
  bitcoin::BlockHash H = B.hash();
  if (Tc->chain().blockByHash(H))
    return;
  if (!Tc->chain().blockByHash(B.Header.Prev)) {
    if (From)
      addOrphanLocked(*From, B);
    return;
  }
  if (!Tc->submitBlock(B)) {
    if (!From)
      return;
    if (FromCompact) {
      // A short-id collision can corrupt an honest reconstruction:
      // retry with the full block before blaming the sender.
      NetMetrics::get().CompactFallback.inc();
      InvItem It = invBlock(H);
      From->Requested.emplace(It, Clk->now());
      BlocksInFlight.insert(H);
      sendLocked(*From, GetDataMsg{{It}});
    } else {
      penalizeLocked(*From, 100, "invalid block");
    }
    return;
  }
  announceBlockLocked(B, From);
  // Release orphans parented on the new block (their own children
  // cascade through the recursive call).
  auto Range = Orphans.equal_range(H);
  std::vector<bitcoin::Block> Released;
  for (auto It = Range.first; It != Range.second; ++It)
    Released.push_back(std::move(It->second.Blk));
  Orphans.erase(Range.first, Range.second);
  for (const bitcoin::Block &Child : Released)
    acceptBlockLocked(nullptr, Child, /*FromCompact=*/false);
}

void NetNode::addOrphanLocked(Peer &From, const bitcoin::Block &B) {
  auto Range = Orphans.equal_range(B.Header.Prev);
  bitcoin::BlockHash H = B.hash();
  for (auto It = Range.first; It != Range.second; ++It)
    if (It->second.Blk.hash() == H)
      return; // Duplicate orphan.
  NetMetrics::get().OrphanAdded.inc();
  Orphans.emplace(B.Header.Prev, OrphanEntry{B, NextOrphanSeq++});
  while (Orphans.size() > Cfg.OrphanLimit) {
    auto Oldest = Orphans.begin();
    for (auto It = Orphans.begin(); It != Orphans.end(); ++It)
      if (It->second.Seq < Oldest->second.Seq)
        Oldest = It;
    Orphans.erase(Oldest);
    NetMetrics::get().OrphanEvicted.inc();
  }
  // We are missing ancestry — ask the sender for the headers between
  // our chain and this block.
  sendGetHeadersLocked(From);
}

void NetNode::announceTxLocked(const bitcoin::Transaction &Tx, Peer *Skip) {
  InvItem It = invTx(Tx.txid());
  NetMetrics &Met = NetMetrics::get();
  for (const auto &E : Peers) {
    Peer &Q = *E.second;
    if (&Q == Skip || !Q.ready())
      continue;
    if (!Q.Known.insert(It)) {
      Met.InvDedup.inc(); // Suppressed: this link already knows it.
      continue;
    }
    sendLocked(Q, InvMsg{{It}});
  }
}

void NetNode::announceBlockLocked(const bitcoin::Block &B, Peer *Skip) {
  InvItem It = invBlock(B.hash());
  NetMetrics &Met = NetMetrics::get();
  std::optional<CmpctBlockMsg> Compact; // Built at most once.
  for (const auto &E : Peers) {
    Peer &Q = *E.second;
    if (&Q == Skip || !Q.ready())
      continue;
    if (!Q.Known.insert(It)) {
      Met.InvDedup.inc();
      continue;
    }
    if (Cfg.CompactRelay && Q.compactNegotiated()) {
      if (!Compact)
        Compact = buildCompactLocked(B);
      sendLocked(Q, *Compact);
    } else {
      sendLocked(Q, InvMsg{{It}});
    }
  }
}

CmpctBlockMsg NetNode::buildCompactLocked(const bitcoin::Block &B) {
  CmpctBlockMsg C;
  C.Header = B.Header;
  C.Nonce = Nonces.next();
  C.Prefilled.push_back(PrefilledTx{0, B.Txs[0]}); // Coinbase: never pooled.
  bitcoin::BlockHash H = B.hash();
  for (size_t I = 1; I < B.Txs.size(); ++I)
    C.ShortIds.push_back(shortTxId(H, C.Nonce, B.Txs[I].txid()));
  return C;
}

} // namespace net
} // namespace typecoin
