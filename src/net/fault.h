//===- net/fault.h - Chaos plans as a transport wrapper ---------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event simulator's chaos machinery — per-link \ref
/// bitcoin::FaultPlan (drop / duplicate / jitter) and per-node \ref
/// bitcoin::ByzantinePlan (invalid-block and malleated-transaction
/// relay) — re-expressed as a \ref Transport decorator, so the entire
/// chaos suite runs unchanged over the real P2P runtime.
///
/// One \ref ChaosState is shared by every \ref ChaosTransport of a
/// scenario: it holds the mutable plan table (plans may change mid-run,
/// exactly like LocalNetwork::clearFaults quiescing a chaos run), the
/// partition predicate, and the release schedule of jittered frames so
/// a deterministic driver can advance a VirtualClock straight to the
/// next delivery.
///
/// Fault application is receiver-side (frames are pulled from the inner
/// connection and then dropped / duplicated / delayed under the plan of
/// the directed link), byzantine corruption is sender-side (outbound
/// frames are decoded, mangled, re-encoded). Every draw comes from a
/// per-directed-link PRNG seeded from (scenario seed, from, to), so
/// outcomes are independent of thread interleaving: the same seed
/// produces the same drops on every run, threaded or pumped.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_NET_FAULT_H
#define TYPECOIN_NET_FAULT_H

#include "bitcoin/network.h"
#include "net/transport.h"

#include <set>

namespace typecoin {
namespace net {

/// Shared, mutable chaos configuration for one scenario.
class ChaosState {
public:
  explicit ChaosState(uint64_t Seed) : Seed(Seed) {}

  // --- Plan table (LocalNetwork-compatible surface) --------------------

  void setDefaultFault(const bitcoin::FaultPlan &Plan);
  void setLinkFault(const std::string &From, const std::string &To,
                    const bitcoin::FaultPlan &Plan);
  void clearFaults();

  void setByzantine(const std::string &Addr,
                    const bitcoin::ByzantinePlan &Plan);

  /// Sever every link crossing \p GroupA vs the rest (frames crossing
  /// the cut are dropped at delivery, like LocalNetwork::partitionAt).
  void partition(std::set<std::string> GroupA);
  void heal();

  /// The effective plan for the directed link \p From -> \p To (a
  /// partition cut reports an unconditional drop).
  bitcoin::FaultPlan planFor(const std::string &From,
                             const std::string &To) const;
  std::optional<bitcoin::ByzantinePlan> byzantineFor(
      const std::string &Addr) const;

  /// Deterministic per-directed-link seed.
  uint64_t linkSeed(const std::string &From, const std::string &To) const;

  // --- Jitter release schedule -----------------------------------------

  void addPendingRelease(double T);
  void removePendingRelease(double T);
  /// Earliest scheduled release of a jitter-delayed frame, if any — the
  /// deterministic driver advances its VirtualClock here when pumping
  /// makes no progress.
  std::optional<double> nextRelease() const;

private:
  mutable std::mutex Mu;
  uint64_t Seed;
  bitcoin::FaultPlan Default;
  std::map<std::pair<std::string, std::string>, bitcoin::FaultPlan> Links;
  std::map<std::string, bitcoin::ByzantinePlan> Byzantine;
  std::optional<std::set<std::string>> PartitionA;
  std::multiset<double> Pending;
};

/// Wrap \p Inner so every connection it produces applies \p Chaos:
/// receive-side drop/dup/jitter per the directed link's plan, send-side
/// byzantine mangling when this endpoint has a ByzantinePlan.
class ChaosTransport : public Transport {
public:
  ChaosTransport(std::unique_ptr<Transport> Inner,
                 std::shared_ptr<ChaosState> Chaos, const Clock &Clk);
  ~ChaosTransport() override;

  std::string listenAddress() const override;
  Result<std::shared_ptr<Connection>> connect(
      const std::string &Addr) override;
  std::shared_ptr<Connection> accept() override;

private:
  std::shared_ptr<Connection> wrap(std::shared_ptr<Connection> C);

  std::unique_ptr<Transport> Inner;
  std::shared_ptr<ChaosState> Chaos;
  const Clock &Clk;
};

} // namespace net
} // namespace typecoin

#endif // TYPECOIN_NET_FAULT_H
