//===- net/transport.h - Injectable P2P transport ---------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport seam of the P2P runtime: \ref NetNode speaks to peers
/// through the abstract \ref Transport / \ref Connection pair, so the
/// same message loop runs over
///
///  * \ref LoopbackHub — an in-process, mutex-guarded frame switch that
///    keeps multi-node tests deterministic and fast;
///  * the fault-injecting chaos wrappers (net/fault.h), which re-express
///    the discrete-event simulator's FaultPlan / ByzantinePlan over any
///    inner transport; and
///  * (future) a real socket transport — nothing in the runtime assumes
///    in-process delivery.
///
/// Connections are *frame-oriented with reliable FIFO ordering*: one
/// send() carries exactly one encoded frame (net/wire.h) and frames
/// arrive in send order unless a chaos wrapper reorders them. receive()
/// is a non-blocking poll; waitReadable() lets the thread-per-peer loop
/// park without spinning. Time is injected through \ref Clock so the
/// deterministic pump mode (tests, bench) and the threaded mode (real
/// runtime) share every timer and jitter computation.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_NET_TRANSPORT_H
#define TYPECOIN_NET_TRANSPORT_H

#include "support/bytes.h"
#include "support/result.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

namespace typecoin {
namespace net {

/// Time source for the runtime, in seconds. The threaded mode uses
/// \ref SteadyClock; deterministic tests drive a \ref VirtualClock.
class Clock {
public:
  virtual ~Clock() = default;
  virtual double now() const = 0;
};

/// Monotonic wall clock (seconds since construction).
class SteadyClock : public Clock {
public:
  SteadyClock();
  double now() const override;

private:
  uint64_t StartNs;
};

/// A manually-advanced clock for deterministic runs. advanceTo() never
/// moves backwards.
class VirtualClock : public Clock {
public:
  double now() const override;
  void advanceTo(double T);
  void advanceBy(double Dt) { advanceTo(now() + Dt); }

private:
  mutable std::mutex Mu;
  double T = 0.0;
};

/// One side of an established peer link.
class Connection {
public:
  virtual ~Connection() = default;

  /// Queue one frame for the peer. Fails once the connection is closed.
  virtual Status send(const Bytes &Frame) = 0;

  /// Non-blocking poll: the next frame, or std::nullopt when none is
  /// ready (which includes "closed and drained" — check isOpen()).
  virtual std::optional<Bytes> receive() = 0;

  /// Park until a frame may be ready or \p TimeoutSec elapses. Returns
  /// true when receive() is worth polling. Spurious wakeups allowed.
  virtual bool waitReadable(double TimeoutSec) = 0;

  /// Close both directions; the peer's receive() drains then reports
  /// closed.
  virtual void close() = 0;
  virtual bool isOpen() const = 0;

  /// The remote endpoint's listen address (stable peer identity).
  virtual std::string peerAddress() const = 0;
};

/// A node's endpoint: dials out and accepts in.
class Transport {
public:
  virtual ~Transport() = default;

  virtual std::string listenAddress() const = 0;

  /// Dial a remote listen address.
  virtual Result<std::shared_ptr<Connection>> connect(
      const std::string &Addr) = 0;

  /// Non-blocking accept poll: nullptr when no connection is pending.
  virtual std::shared_ptr<Connection> accept() = 0;
};

/// An in-process frame switch. Every endpoint opened on the same hub can
/// dial every other by address; frames move through bounded FIFO queues
/// under one hub mutex, and all waiters share the hub's condition
/// variable (coarse, but the loopback exists for determinism and test
/// speed, not throughput).
class LoopbackHub {
public:
  LoopbackHub();
  ~LoopbackHub();

  /// Register an endpoint under \p Addr (must be unused).
  std::unique_ptr<Transport> open(const std::string &Addr);

  /// Frames queued across all connections (quiescence check for
  /// deterministic drivers).
  size_t inFlightFrames() const;

  /// Shared hub state; defined in transport.cpp (the connection and
  /// transport implementations live there too and share it).
  struct State;

private:
  std::shared_ptr<State> S;
};

} // namespace net
} // namespace typecoin

#endif // TYPECOIN_NET_TRANSPORT_H
