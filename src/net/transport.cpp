//===- net/transport.cpp - Injectable P2P transport -----------------------===//

#include "net/transport.h"

#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace typecoin {
namespace net {

// --- Clocks -------------------------------------------------------------

SteadyClock::SteadyClock() : StartNs(obs::monotonicNowNs()) {}

double SteadyClock::now() const {
  return static_cast<double>(obs::monotonicNowNs() - StartNs) * 1e-9;
}

double VirtualClock::now() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return T;
}

void VirtualClock::advanceTo(double NewT) {
  std::lock_guard<std::mutex> Lock(Mu);
  T = std::max(T, NewT);
}

// --- Loopback hub -------------------------------------------------------

namespace {
class LoopbackConnection;
} // namespace

/// Hub-wide shared state: one mutex + condvar covers every queue, so a
/// deterministic driver sees a single, totally-ordered world.
struct LoopbackHub::State {
  mutable std::mutex Mu;
  std::condition_variable Cv;
  /// Listen address -> pending inbound connections.
  std::map<std::string, std::deque<std::shared_ptr<Connection>>> AcceptQueues;
  /// Addresses with a live endpoint.
  std::map<std::string, bool> Endpoints;
  size_t InFlight = 0; ///< Frames queued across all connections.
};

namespace {

/// One direction of a loopback link: a FIFO of frames.
struct Pipe {
  std::deque<Bytes> Frames;
  bool Closed = false;
};

/// A connection endpoint: reads from one pipe, writes the other. The two
/// endpoints of a link share the pipes (and the hub state for locking).
class LoopbackConnection : public Connection {
public:
  LoopbackConnection(std::shared_ptr<LoopbackHub::State> Hub,
                     std::shared_ptr<Pipe> In, std::shared_ptr<Pipe> Out,
                     std::string PeerAddr)
      : Hub(std::move(Hub)), In(std::move(In)), Out(std::move(Out)),
        PeerAddr(std::move(PeerAddr)) {}

  ~LoopbackConnection() override { close(); }

  Status send(const Bytes &Frame) override {
    std::lock_guard<std::mutex> Lock(Hub->Mu);
    if (Out->Closed)
      return makeError("loopback: connection closed");
    Out->Frames.push_back(Frame);
    ++Hub->InFlight;
    Hub->Cv.notify_all();
    return Status::success();
  }

  std::optional<Bytes> receive() override {
    std::lock_guard<std::mutex> Lock(Hub->Mu);
    if (In->Frames.empty())
      return std::nullopt;
    Bytes F = std::move(In->Frames.front());
    In->Frames.pop_front();
    --Hub->InFlight;
    return F;
  }

  bool waitReadable(double TimeoutSec) override {
    std::unique_lock<std::mutex> Lock(Hub->Mu);
    if (!In->Frames.empty() || In->Closed)
      return true;
    Hub->Cv.wait_for(Lock, std::chrono::duration<double>(TimeoutSec));
    return !In->Frames.empty() || In->Closed;
  }

  void close() override {
    std::lock_guard<std::mutex> Lock(Hub->Mu);
    if (!In->Closed) {
      // Undelivered inbound frames will never be read.
      Hub->InFlight -= In->Frames.size();
      In->Frames.clear();
    }
    In->Closed = true;
    Out->Closed = true;
    Hub->Cv.notify_all();
  }

  bool isOpen() const override {
    std::lock_guard<std::mutex> Lock(Hub->Mu);
    return !In->Closed;
  }

  std::string peerAddress() const override { return PeerAddr; }

private:
  std::shared_ptr<LoopbackHub::State> Hub;
  std::shared_ptr<Pipe> In;
  std::shared_ptr<Pipe> Out;
  std::string PeerAddr;
};

class LoopbackTransport : public Transport {
public:
  LoopbackTransport(std::shared_ptr<LoopbackHub::State> Hub, std::string Addr)
      : Hub(std::move(Hub)), Addr(std::move(Addr)) {}

  ~LoopbackTransport() override {
    // Pending un-accepted connections must destruct outside the lock:
    // ~LoopbackConnection calls close(), which takes Hub->Mu itself.
    std::deque<std::shared_ptr<Connection>> Pending;
    {
      std::lock_guard<std::mutex> Lock(Hub->Mu);
      Hub->Endpoints.erase(Addr);
      auto It = Hub->AcceptQueues.find(Addr);
      if (It != Hub->AcceptQueues.end()) {
        Pending.swap(It->second);
        Hub->AcceptQueues.erase(It);
      }
    }
  }

  std::string listenAddress() const override { return Addr; }

  Result<std::shared_ptr<Connection>> connect(
      const std::string &Remote) override {
    std::lock_guard<std::mutex> Lock(Hub->Mu);
    if (!Hub->Endpoints.count(Remote))
      return makeError("loopback: no endpoint at " + Remote);
    auto AtoB = std::make_shared<Pipe>();
    auto BtoA = std::make_shared<Pipe>();
    auto Ours =
        std::make_shared<LoopbackConnection>(Hub, BtoA, AtoB, Remote);
    auto Theirs =
        std::make_shared<LoopbackConnection>(Hub, AtoB, BtoA, Addr);
    Hub->AcceptQueues[Remote].push_back(std::move(Theirs));
    Hub->Cv.notify_all();
    return std::shared_ptr<Connection>(std::move(Ours));
  }

  std::shared_ptr<Connection> accept() override {
    std::lock_guard<std::mutex> Lock(Hub->Mu);
    auto &Q = Hub->AcceptQueues[Addr];
    if (Q.empty())
      return nullptr;
    std::shared_ptr<Connection> C = std::move(Q.front());
    Q.pop_front();
    return C;
  }

private:
  std::shared_ptr<LoopbackHub::State> Hub;
  std::string Addr;
};

} // namespace

LoopbackHub::LoopbackHub() : S(std::make_shared<State>()) {}
LoopbackHub::~LoopbackHub() = default;

std::unique_ptr<Transport> LoopbackHub::open(const std::string &Addr) {
  std::lock_guard<std::mutex> Lock(S->Mu);
  S->Endpoints[Addr] = true;
  return std::make_unique<LoopbackTransport>(S, Addr);
}

size_t LoopbackHub::inFlightFrames() const {
  std::lock_guard<std::mutex> Lock(S->Mu);
  return S->InFlight;
}

} // namespace net
} // namespace typecoin
