//===- net/wire.h - Typed P2P wire messages and framing ---------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed wire protocol of the concurrent P2P runtime (net/node.h):
/// a closed set of message structs, their Bitcoin-wire-format payload
/// codecs, and a length/checksum frame around each encoded message.
///
/// Frame layout (all integers little-endian):
///
///   magic    u32   0x5443'4e31 ("TCN1")
///   type     u8    MsgType discriminant
///   length   u32   payload byte count (<= MaxPayloadBytes)
///   checksum u32   first four bytes of double-SHA256(payload)
///   payload  bytes
///
/// \ref FrameDecoder consumes an arbitrary byte stream (frames may be
/// split or concatenated across reads) and yields decoded messages; any
/// framing or payload defect is a hard error, after which the stream is
/// poisoned — the peer loop bans the sender rather than resynchronizing
/// on a corrupt stream. The decoder is the surface the
/// `fuzz_net_message` libFuzzer target drives.
///
/// Compact-block relay (BIP 152 in the small): \ref CmpctBlockMsg
/// announces a block as its header plus 6-byte \ref shortTxId values
/// (keyed by the block hash and a per-announcement nonce so an attacker
/// cannot precompute collisions), with the coinbase prefilled. Receivers
/// reconstruct from their mempool and fall back to \ref GetBlockTxnMsg
/// for the misses.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_NET_WIRE_H
#define TYPECOIN_NET_WIRE_H

#include "bitcoin/block.h"

#include <variant>

namespace typecoin {
namespace net {

/// Frame magic ("TCN1") — rejects cross-protocol and misaligned reads.
constexpr uint32_t FrameMagic = 0x5443'4e31;

/// Hard cap on a single payload; larger frames are a protocol error
/// (bans the sender) before any allocation happens.
constexpr uint32_t MaxPayloadBytes = 8u << 20;

/// Cap on vector counts inside payloads (inv items, headers, txs);
/// prevents a tiny frame from claiming a huge count.
constexpr uint64_t MaxVectorItems = 64 * 1024;

/// Message discriminants, also the frame `type` byte.
enum class MsgType : uint8_t {
  Version = 1,
  Verack = 2,
  Ping = 3,
  Pong = 4,
  Inv = 5,
  GetData = 6,
  GetHeaders = 7,
  Headers = 8,
  Block = 9,
  Tx = 10,
  CmpctBlock = 11,
  GetBlockTxn = 12,
  BlockTxn = 13,
};

/// Printable message-type name (obs counter suffixes, diagnostics).
const char *msgTypeName(MsgType T);

/// Service bits advertised in \ref VersionMsg.
constexpr uint64_t ServiceCompactRelay = 1u << 0;

/// Handshake opener: both sides send one immediately after the
/// connection is established.
struct VersionMsg {
  int32_t Protocol = 1;
  uint64_t Services = 0;
  uint64_t Nonce = 0;    ///< Self-connection detection.
  int32_t StartHeight = 0;
  std::string UserAgent;
};

struct VerackMsg {};

struct PingMsg {
  uint64_t Nonce = 0;
};
struct PongMsg {
  uint64_t Nonce = 0;
};

/// What an inventory item announces.
enum class InvKind : uint8_t { Tx = 1, Block = 2 };

struct InvItem {
  InvKind Kind = InvKind::Tx;
  crypto::Digest32 Hash{};

  bool operator==(const InvItem &O) const {
    return Kind == O.Kind && Hash == O.Hash;
  }
  bool operator<(const InvItem &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    return Hash < O.Hash;
  }
};

inline InvItem invTx(const bitcoin::TxId &Id) {
  return InvItem{InvKind::Tx, Id.Hash};
}
inline InvItem invBlock(const bitcoin::BlockHash &H) {
  return InvItem{InvKind::Block, H.Hash};
}

/// Announcement of known inventory.
struct InvMsg {
  std::vector<InvItem> Items;
};

/// Request for announced inventory.
struct GetDataMsg {
  std::vector<InvItem> Items;
};

/// Headers-first sync request: \p Locator is a sparse
/// exponentially-spaced sample of the sender's best chain, newest
/// first; the responder finds the latest locator entry on its best
/// chain and answers with the headers after it (up to
/// \ref MaxHeadersPerMsg), stopping early at \p Stop when non-null.
struct GetHeadersMsg {
  std::vector<bitcoin::BlockHash> Locator;
  bitcoin::BlockHash Stop;
};

constexpr size_t MaxHeadersPerMsg = 2000;

struct HeadersMsg {
  std::vector<bitcoin::BlockHeader> Headers;
};

struct BlockMsg {
  bitcoin::Block B;
};

struct TxMsg {
  bitcoin::Transaction Tx;
};

/// A transaction sent along with a compact block because the announcer
/// knows the receiver cannot have it (the coinbase, always index 0).
struct PrefilledTx {
  uint64_t Index = 0;
  bitcoin::Transaction Tx;
};

/// Compact block announcement: header + short ids for every
/// non-prefilled transaction, in block order.
struct CmpctBlockMsg {
  bitcoin::BlockHeader Header;
  uint64_t Nonce = 0; ///< Keys the short ids of this announcement.
  std::vector<uint64_t> ShortIds; ///< 48-bit values (see shortTxId).
  std::vector<PrefilledTx> Prefilled;
};

/// Fallback request for the block transactions the receiver could not
/// reconstruct from its mempool, by index into the block.
struct GetBlockTxnMsg {
  bitcoin::BlockHash Block;
  std::vector<uint64_t> Indexes;
};

struct BlockTxnMsg {
  bitcoin::BlockHash Block;
  std::vector<bitcoin::Transaction> Txs;
};

using Message =
    std::variant<VersionMsg, VerackMsg, PingMsg, PongMsg, InvMsg, GetDataMsg,
                 GetHeadersMsg, HeadersMsg, BlockMsg, TxMsg, CmpctBlockMsg,
                 GetBlockTxnMsg, BlockTxnMsg>;

/// The discriminant of a message value.
MsgType messageType(const Message &M);

/// Encode \p M as one frame (header + payload), ready for
/// Connection::send.
Bytes encodeMessage(const Message &M);

/// The 48-bit short transaction id of \p Txid under a compact-block
/// announcement of \p Block with \p Nonce: the low six bytes of
/// SHA256(blockhash || nonce || txid). Keyed per announcement so
/// collisions cannot be precomputed against the mempool.
uint64_t shortTxId(const bitcoin::BlockHash &Block, uint64_t Nonce,
                   const bitcoin::TxId &Txid);

/// Incremental frame decoder over a byte stream. Feed chunks in any
/// split; next() yields one decoded message at a time, std::nullopt when
/// the buffered bytes do not yet complete a frame, and an error on any
/// framing or payload defect (bad magic, oversized length, checksum
/// mismatch, malformed payload, trailing payload bytes). After an error
/// the decoder stays poisoned: every further next() repeats the error.
class FrameDecoder {
public:
  void feed(const uint8_t *Data, size_t Len);
  void feed(const Bytes &Chunk) { feed(Chunk.data(), Chunk.size()); }

  Result<std::optional<Message>> next();

  size_t bufferedBytes() const { return Buffer.size() - Consumed; }

private:
  Bytes Buffer;
  size_t Consumed = 0; ///< Prefix of Buffer already decoded.
  std::optional<std::string> Poisoned;
};

} // namespace net
} // namespace typecoin

#endif // TYPECOIN_NET_WIRE_H
