//===- net/wire.cpp - Typed P2P wire messages and framing -----------------===//

#include "net/wire.h"

#include "support/serialize.h"

namespace typecoin {
namespace net {

const char *msgTypeName(MsgType T) {
  switch (T) {
  case MsgType::Version:
    return "version";
  case MsgType::Verack:
    return "verack";
  case MsgType::Ping:
    return "ping";
  case MsgType::Pong:
    return "pong";
  case MsgType::Inv:
    return "inv";
  case MsgType::GetData:
    return "getdata";
  case MsgType::GetHeaders:
    return "getheaders";
  case MsgType::Headers:
    return "headers";
  case MsgType::Block:
    return "block";
  case MsgType::Tx:
    return "tx";
  case MsgType::CmpctBlock:
    return "cmpctblock";
  case MsgType::GetBlockTxn:
    return "getblocktxn";
  case MsgType::BlockTxn:
    return "blocktxn";
  }
  return "unknown";
}

MsgType messageType(const Message &M) {
  struct Visitor {
    MsgType operator()(const VersionMsg &) { return MsgType::Version; }
    MsgType operator()(const VerackMsg &) { return MsgType::Verack; }
    MsgType operator()(const PingMsg &) { return MsgType::Ping; }
    MsgType operator()(const PongMsg &) { return MsgType::Pong; }
    MsgType operator()(const InvMsg &) { return MsgType::Inv; }
    MsgType operator()(const GetDataMsg &) { return MsgType::GetData; }
    MsgType operator()(const GetHeadersMsg &) { return MsgType::GetHeaders; }
    MsgType operator()(const HeadersMsg &) { return MsgType::Headers; }
    MsgType operator()(const BlockMsg &) { return MsgType::Block; }
    MsgType operator()(const TxMsg &) { return MsgType::Tx; }
    MsgType operator()(const CmpctBlockMsg &) { return MsgType::CmpctBlock; }
    MsgType operator()(const GetBlockTxnMsg &) { return MsgType::GetBlockTxn; }
    MsgType operator()(const BlockTxnMsg &) { return MsgType::BlockTxn; }
  };
  return std::visit(Visitor{}, M);
}

// --- Payload encoders ---------------------------------------------------

namespace {

void writeInvItems(Writer &W, const std::vector<InvItem> &Items) {
  W.writeCompactSize(Items.size());
  for (const InvItem &It : Items) {
    W.writeU8(static_cast<uint8_t>(It.Kind));
    W.writeBytes(It.Hash);
  }
}

Result<std::vector<InvItem>> readInvItems(Reader &R) {
  uint64_t N;
  TC_ASSIGN(N, R.readCompactSize());
  if (N > MaxVectorItems)
    return makeError("wire: inv count exceeds cap");
  std::vector<InvItem> Items;
  Items.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    uint8_t Kind;
    TC_ASSIGN(Kind, R.readU8());
    if (Kind != static_cast<uint8_t>(InvKind::Tx) &&
        Kind != static_cast<uint8_t>(InvKind::Block))
      return makeError("wire: unknown inv kind");
    InvItem It;
    It.Kind = static_cast<InvKind>(Kind);
    TC_ASSIGN(It.Hash, R.readArray<32>());
    Items.push_back(It);
  }
  return Items;
}

void encodePayload(Writer &W, const VersionMsg &M) {
  W.writeU32(static_cast<uint32_t>(M.Protocol));
  W.writeU64(M.Services);
  W.writeU64(M.Nonce);
  W.writeU32(static_cast<uint32_t>(M.StartHeight));
  W.writeString(M.UserAgent);
}
void encodePayload(Writer &, const VerackMsg &) {}
void encodePayload(Writer &W, const PingMsg &M) { W.writeU64(M.Nonce); }
void encodePayload(Writer &W, const PongMsg &M) { W.writeU64(M.Nonce); }
void encodePayload(Writer &W, const InvMsg &M) { writeInvItems(W, M.Items); }
void encodePayload(Writer &W, const GetDataMsg &M) {
  writeInvItems(W, M.Items);
}
void encodePayload(Writer &W, const GetHeadersMsg &M) {
  W.writeCompactSize(M.Locator.size());
  for (const bitcoin::BlockHash &H : M.Locator)
    W.writeBytes(H.Hash);
  W.writeBytes(M.Stop.Hash);
}
void encodePayload(Writer &W, const HeadersMsg &M) {
  W.writeCompactSize(M.Headers.size());
  for (const bitcoin::BlockHeader &H : M.Headers)
    W.writeBytes(H.serialize());
}
void encodePayload(Writer &W, const BlockMsg &M) {
  W.writeBytes(M.B.serialize());
}
void encodePayload(Writer &W, const TxMsg &M) {
  W.writeBytes(M.Tx.serialize());
}
void encodePayload(Writer &W, const CmpctBlockMsg &M) {
  W.writeBytes(M.Header.serialize());
  W.writeU64(M.Nonce);
  W.writeCompactSize(M.ShortIds.size());
  for (uint64_t Id : M.ShortIds) {
    // 48-bit little-endian.
    W.writeU32(static_cast<uint32_t>(Id & 0xffffffffu));
    W.writeU16(static_cast<uint16_t>((Id >> 32) & 0xffffu));
  }
  W.writeCompactSize(M.Prefilled.size());
  for (const PrefilledTx &P : M.Prefilled) {
    W.writeCompactSize(P.Index);
    W.writeBytes(P.Tx.serialize());
  }
}
void encodePayload(Writer &W, const GetBlockTxnMsg &M) {
  W.writeBytes(M.Block.Hash);
  W.writeCompactSize(M.Indexes.size());
  for (uint64_t I : M.Indexes)
    W.writeCompactSize(I);
}
void encodePayload(Writer &W, const BlockTxnMsg &M) {
  W.writeBytes(M.Block.Hash);
  W.writeCompactSize(M.Txs.size());
  for (const bitcoin::Transaction &Tx : M.Txs)
    W.writeBytes(Tx.serialize());
}

// --- Payload decoders ---------------------------------------------------

Result<Message> decodeVersion(Reader &R) {
  VersionMsg M;
  uint32_t Proto, Height;
  TC_ASSIGN(Proto, R.readU32());
  M.Protocol = static_cast<int32_t>(Proto);
  TC_ASSIGN(M.Services, R.readU64());
  TC_ASSIGN(M.Nonce, R.readU64());
  TC_ASSIGN(Height, R.readU32());
  M.StartHeight = static_cast<int32_t>(Height);
  TC_ASSIGN(M.UserAgent, R.readString());
  return Message(std::move(M));
}

Result<Message> decodeGetHeaders(Reader &R) {
  GetHeadersMsg M;
  uint64_t N;
  TC_ASSIGN(N, R.readCompactSize());
  if (N > MaxVectorItems)
    return makeError("wire: locator count exceeds cap");
  M.Locator.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    bitcoin::BlockHash H;
    TC_ASSIGN(H.Hash, R.readArray<32>());
    M.Locator.push_back(H);
  }
  TC_ASSIGN(M.Stop.Hash, R.readArray<32>());
  return Message(std::move(M));
}

Result<Message> decodeHeaders(Reader &R) {
  HeadersMsg M;
  uint64_t N;
  TC_ASSIGN(N, R.readCompactSize());
  if (N > MaxVectorItems)
    return makeError("wire: header count exceeds cap");
  M.Headers.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    Bytes Raw;
    TC_ASSIGN(Raw, R.readBytes(80));
    bitcoin::BlockHeader H;
    TC_ASSIGN(H, bitcoin::BlockHeader::deserialize(Raw));
    M.Headers.push_back(H);
  }
  return Message(std::move(M));
}

/// Decode one transaction starting at the reader's position (the
/// transaction codec knows its own length).
Result<bitcoin::Transaction> readTx(Reader &R) {
  return bitcoin::Transaction::deserializeFrom(R);
}

Result<Message> decodeCmpctBlock(Reader &R) {
  CmpctBlockMsg M;
  Bytes RawHeader;
  TC_ASSIGN(RawHeader, R.readBytes(80));
  TC_ASSIGN(M.Header, bitcoin::BlockHeader::deserialize(RawHeader));
  TC_ASSIGN(M.Nonce, R.readU64());
  uint64_t N;
  TC_ASSIGN(N, R.readCompactSize());
  if (N > MaxVectorItems)
    return makeError("wire: shortid count exceeds cap");
  M.ShortIds.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    uint32_t Lo;
    uint16_t Hi;
    TC_ASSIGN(Lo, R.readU32());
    TC_ASSIGN(Hi, R.readU16());
    M.ShortIds.push_back(static_cast<uint64_t>(Hi) << 32 | Lo);
  }
  TC_ASSIGN(N, R.readCompactSize());
  if (N > MaxVectorItems)
    return makeError("wire: prefilled count exceeds cap");
  M.Prefilled.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    PrefilledTx P;
    TC_ASSIGN(P.Index, R.readCompactSize());
    TC_ASSIGN(P.Tx, readTx(R));
    M.Prefilled.push_back(std::move(P));
  }
  return Message(std::move(M));
}

Result<Message> decodeGetBlockTxn(Reader &R) {
  GetBlockTxnMsg M;
  TC_ASSIGN(M.Block.Hash, R.readArray<32>());
  uint64_t N;
  TC_ASSIGN(N, R.readCompactSize());
  if (N > MaxVectorItems)
    return makeError("wire: index count exceeds cap");
  M.Indexes.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Idx;
    TC_ASSIGN(Idx, R.readCompactSize());
    M.Indexes.push_back(Idx);
  }
  return Message(std::move(M));
}

Result<Message> decodeBlockTxn(Reader &R) {
  BlockTxnMsg M;
  TC_ASSIGN(M.Block.Hash, R.readArray<32>());
  uint64_t N;
  TC_ASSIGN(N, R.readCompactSize());
  if (N > MaxVectorItems)
    return makeError("wire: tx count exceeds cap");
  M.Txs.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    bitcoin::Transaction Tx;
    TC_ASSIGN(Tx, readTx(R));
    M.Txs.push_back(std::move(Tx));
  }
  return Message(std::move(M));
}

Result<Message> decodePayload(MsgType T, const Bytes &Payload) {
  Reader R(Payload);
  Result<Message> Out = makeError("wire: unknown message type");
  switch (T) {
  case MsgType::Version:
    Out = decodeVersion(R);
    break;
  case MsgType::Verack:
    Out = Message(VerackMsg{});
    break;
  case MsgType::Ping: {
    PingMsg M;
    if (auto V = R.readU64())
      M.Nonce = *V;
    else
      return V.takeError();
    Out = Message(M);
    break;
  }
  case MsgType::Pong: {
    PongMsg M;
    if (auto V = R.readU64())
      M.Nonce = *V;
    else
      return V.takeError();
    Out = Message(M);
    break;
  }
  case MsgType::Inv: {
    InvMsg M;
    TC_ASSIGN(M.Items, readInvItems(R));
    Out = Message(std::move(M));
    break;
  }
  case MsgType::GetData: {
    GetDataMsg M;
    TC_ASSIGN(M.Items, readInvItems(R));
    Out = Message(std::move(M));
    break;
  }
  case MsgType::GetHeaders:
    Out = decodeGetHeaders(R);
    break;
  case MsgType::Headers:
    Out = decodeHeaders(R);
    break;
  case MsgType::Block: {
    BlockMsg M;
    Bytes Rest;
    TC_ASSIGN(Rest, R.readBytes(R.remaining()));
    TC_ASSIGN(M.B, bitcoin::Block::deserialize(Rest));
    return Message(std::move(M)); // Block codec checks its own end.
  }
  case MsgType::Tx: {
    TxMsg M;
    TC_ASSIGN(M.Tx, readTx(R));
    Out = Message(std::move(M));
    break;
  }
  case MsgType::CmpctBlock:
    Out = decodeCmpctBlock(R);
    break;
  case MsgType::GetBlockTxn:
    Out = decodeGetBlockTxn(R);
    break;
  case MsgType::BlockTxn:
    Out = decodeBlockTxn(R);
    break;
  }
  if (!Out)
    return Out;
  TC_TRY(R.expectEnd());
  return Out;
}

uint32_t payloadChecksum(const uint8_t *Data, size_t Len) {
  crypto::Digest32 D = crypto::sha256d(Data, Len);
  return static_cast<uint32_t>(D[0]) | static_cast<uint32_t>(D[1]) << 8 |
         static_cast<uint32_t>(D[2]) << 16 |
         static_cast<uint32_t>(D[3]) << 24;
}

constexpr size_t FrameHeaderBytes = 4 + 1 + 4 + 4;

} // namespace

Bytes encodeMessage(const Message &M) {
  Writer Payload;
  std::visit([&Payload](const auto &Msg) { encodePayload(Payload, Msg); },
             M);
  const Bytes &Body = Payload.buffer();

  Writer Frame;
  Frame.reserve(FrameHeaderBytes + Body.size());
  Frame.writeU32(FrameMagic);
  Frame.writeU8(static_cast<uint8_t>(messageType(M)));
  Frame.writeU32(static_cast<uint32_t>(Body.size()));
  Frame.writeU32(payloadChecksum(Body.data(), Body.size()));
  Frame.writeBytes(Body);
  return Frame.takeBuffer();
}

uint64_t shortTxId(const bitcoin::BlockHash &Block, uint64_t Nonce,
                   const bitcoin::TxId &Txid) {
  Writer W;
  W.writeBytes(Block.Hash);
  W.writeU64(Nonce);
  W.writeBytes(Txid.Hash);
  crypto::Digest32 D = crypto::sha256(W.buffer());
  uint64_t Id = 0;
  for (int I = 5; I >= 0; --I)
    Id = Id << 8 | D[I];
  return Id;
}

void FrameDecoder::feed(const uint8_t *Data, size_t Len) {
  // Compact the consumed prefix before growing the buffer.
  if (Consumed > 0) {
    Buffer.erase(Buffer.begin(),
                 Buffer.begin() + static_cast<ptrdiff_t>(Consumed));
    Consumed = 0;
  }
  Buffer.insert(Buffer.end(), Data, Data + Len);
}

Result<std::optional<Message>> FrameDecoder::next() {
  if (Poisoned)
    return makeError(*Poisoned);
  auto Poison = [this](std::string Why) -> Result<std::optional<Message>> {
    Poisoned = Why;
    return makeError(std::move(Why));
  };

  size_t Avail = Buffer.size() - Consumed;
  if (Avail < FrameHeaderBytes)
    return std::optional<Message>();
  Reader Header(Buffer.data() + Consumed, FrameHeaderBytes);
  uint32_t Magic = *Header.readU32();
  uint8_t Type = *Header.readU8();
  uint32_t Length = *Header.readU32();
  uint32_t Checksum = *Header.readU32();

  if (Magic != FrameMagic)
    return Poison("wire: bad frame magic");
  if (Type < static_cast<uint8_t>(MsgType::Version) ||
      Type > static_cast<uint8_t>(MsgType::BlockTxn))
    return Poison("wire: unknown message type " + std::to_string(Type));
  if (Length > MaxPayloadBytes)
    return Poison("wire: oversized frame (" + std::to_string(Length) + ")");
  if (Avail < FrameHeaderBytes + Length)
    return std::optional<Message>(); // Incomplete frame; wait for more.

  const uint8_t *Body = Buffer.data() + Consumed + FrameHeaderBytes;
  if (payloadChecksum(Body, Length) != Checksum)
    return Poison("wire: payload checksum mismatch");

  Bytes Payload(Body, Body + Length);
  auto Decoded = decodePayload(static_cast<MsgType>(Type), Payload);
  if (!Decoded)
    return Poison("wire: " + std::string(msgTypeName(static_cast<MsgType>(
                                 Type))) +
                  " payload: " + Decoded.takeError().message());
  Consumed += FrameHeaderBytes + Length;
  return std::optional<Message>(std::move(*Decoded));
}

} // namespace net
} // namespace typecoin
