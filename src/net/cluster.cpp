//===- net/cluster.cpp - Deterministic multi-node harness -----------------===//

#include "net/cluster.h"

namespace typecoin {
namespace net {

Cluster::Cluster(bitcoin::ChainParams Params, size_t NumNodes,
                 uint64_t ChaosSeed, NetConfig Base)
    : Clk(std::make_shared<VirtualClock>()),
      Chaos(std::make_shared<ChaosState>(ChaosSeed)) {
  Base.Seed ^= ChaosSeed;
  for (size_t I = 0; I < NumNodes; ++I) {
    auto Inner = Hub.open(addressOf(I));
    auto Wrapped =
        std::make_unique<ChaosTransport>(std::move(Inner), Chaos, *Clk);
    Nodes.push_back(std::make_unique<NetNode>(Params, Base,
                                              std::move(Wrapped), Clk));
  }
  for (size_t I = 0; I < NumNodes; ++I)
    for (size_t J = I + 1; J < NumNodes; ++J)
      (void)Nodes[I]->connectTo(addressOf(J));
  settle();
}

Cluster::~Cluster() = default;

// --- Chaos surface ------------------------------------------------------

void Cluster::setDefaultFault(const bitcoin::FaultPlan &Plan) {
  Chaos->setDefaultFault(Plan);
}

void Cluster::setLinkFault(size_t From, size_t To,
                           const bitcoin::FaultPlan &Plan) {
  Chaos->setLinkFault(addressOf(From), addressOf(To), Plan);
}

void Cluster::clearFaults() {
  Chaos->clearFaults();
  resyncAll();
}

void Cluster::setByzantine(size_t Node, const bitcoin::ByzantinePlan &Plan) {
  Chaos->setByzantine(addressOf(Node), Plan);
}

void Cluster::partitionAt(size_t Boundary) {
  std::set<std::string> GroupA;
  for (size_t I = 0; I < Boundary && I < Nodes.size(); ++I)
    GroupA.insert(addressOf(I));
  Chaos->partition(std::move(GroupA));
}

void Cluster::heal() {
  Chaos->heal();
  reconnectMesh();
  resyncAll();
}

void Cluster::crash(size_t Node) { Nodes[Node]->crash(); }

Status Cluster::restart(size_t Node) {
  TC_TRY(Nodes[Node]->restart());
  reconnectMesh();
  resyncAll();
  return Status::success();
}

// --- Traffic ------------------------------------------------------------

Status Cluster::submitTransaction(size_t Node,
                                  const bitcoin::Transaction &Tx) {
  return Nodes[Node]->submitTransaction(Tx);
}

Result<bitcoin::Block> Cluster::mineAt(size_t Node,
                                       const crypto::KeyId &Payout,
                                       double Now) {
  Clk->advanceTo(Now);
  return Nodes[Node]->mine(Payout, static_cast<uint32_t>(Now));
}

size_t Cluster::settle(size_t MaxRounds) {
  size_t Rounds = 0;
  while (Rounds < MaxRounds) {
    ++Rounds;
    size_t Progress = 0;
    for (auto &N : Nodes)
      Progress += N->pump();
    if (Progress > 0)
      continue;
    // Quiescent now — but jittered frames may still be scheduled.
    auto R = Chaos->nextRelease();
    if (!R)
      break;
    Clk->advanceTo(*R);
  }
  return Rounds;
}

void Cluster::advance(double Seconds) { Clk->advanceBy(Seconds); }

bool Cluster::converged() const {
  std::optional<bitcoin::BlockHash> Tip;
  for (const auto &N : Nodes) {
    if (N->isCrashed())
      continue;
    if (!Tip)
      Tip = N->chain().tipHash();
    else if (!(*Tip == N->chain().tipHash()))
      return false;
  }
  return true;
}

bool Cluster::convergedAmong(const std::vector<size_t> &Among) const {
  std::optional<bitcoin::BlockHash> Tip;
  for (size_t I : Among) {
    if (Nodes[I]->isCrashed())
      continue;
    if (!Tip)
      Tip = Nodes[I]->chain().tipHash();
    else if (!(*Tip == Nodes[I]->chain().tipHash()))
      return false;
  }
  return true;
}

// --- Recovery helpers ---------------------------------------------------

void Cluster::resyncAll() {
  for (auto &N : Nodes)
    N->resync();
}

void Cluster::reconnectMesh() {
  for (size_t I = 0; I < Nodes.size(); ++I) {
    if (Nodes[I]->isCrashed())
      continue;
    for (size_t J = I + 1; J < Nodes.size(); ++J) {
      if (Nodes[J]->isCrashed())
        continue;
      if (Nodes[I]->connectedTo(addressOf(J)) ||
          Nodes[J]->connectedTo(addressOf(I)))
        continue;
      (void)Nodes[I]->connectTo(addressOf(J));
    }
  }
}

} // namespace net
} // namespace typecoin
