//===- obs/export.cpp - JSON snapshot export ------------------------------===//

#include "obs/export.h"

#include "store/vfs.h"

#include <cstdlib>
#include <fstream>

namespace typecoin {
namespace obs {

static Json histogramToJson(const HistogramData &H) {
  Json Out = Json::object();
  Json Bounds = Json::array();
  for (uint64_t B : H.UpperBounds)
    Bounds.push(Json(B));
  Json Counts = Json::array();
  for (uint64_t C : H.BucketCounts)
    Counts.push(Json(C));
  Out.set("bounds", std::move(Bounds));
  Out.set("counts", std::move(Counts));
  Out.set("count", Json(H.Count));
  Out.set("sum", Json(H.Sum));
  Out.set("max", Json(H.Max));
  return Out;
}

Json snapshotToJson(const Snapshot &S) {
  Json Out = Json::object();
  Json Counters = Json::object();
  for (const auto &[Name, V] : S.Counters)
    Counters.set(Name, Json(V));
  Json Gauges = Json::object();
  for (const auto &[Name, V] : S.Gauges)
    Gauges.set(Name, Json(V));
  Json Histograms = Json::object();
  for (const auto &[Name, H] : S.Histograms)
    Histograms.set(Name, histogramToJson(H));
  Out.set("counters", std::move(Counters));
  Out.set("gauges", std::move(Gauges));
  Out.set("histograms", std::move(Histograms));
  return Out;
}

Json exportJson(const Snapshot &S, const std::vector<TraceEvent> &Trace,
                uint64_t TraceDropped) {
  Json Out = Json::object();
  Out.set("schema", Json("typecoin-obs/1"));
  Out.set("metrics", snapshotToJson(S));
  if (!Trace.empty() || TraceDropped > 0) {
    Json T = Json::object();
    T.set("dropped", Json(TraceDropped));
    Json Events = Json::array();
    for (const TraceEvent &E : Trace) {
      Json J = Json::object();
      J.set("seq", Json(E.Seq));
      J.set("name", Json(E.Name));
      J.set("depth", Json(static_cast<int64_t>(E.Depth)));
      J.set("start_ns", Json(E.StartNs));
      J.set("dur_ns", Json(E.DurNs));
      Events.push(std::move(J));
    }
    T.set("events", std::move(Events));
    Out.set("trace", std::move(T));
  }
  return Out;
}

Json currentExportJson() {
  return exportJson(Registry::instance().snapshot(),
                    TraceBuffer::instance().events(),
                    TraceBuffer::instance().dropped());
}

Status writeSnapshotFile(const std::string &Path) {
  // Crash-safe replace (temp + fsync + rename + dir sync) through the
  // store Vfs: a crash mid-export leaves the previous complete snapshot
  // in place, never a truncated JSON file.
  std::string Doc = currentExportJson().dump(2) + "\n";
  store::PosixVfs V;
  return store::writeFileAtomic(V, Path, Bytes(Doc.begin(), Doc.end()));
}

Result<Snapshot> readSnapshotJson(const Json &Doc) {
  const Json *Metrics = Doc.get("metrics");
  if (!Metrics)
    Metrics = &Doc; // Bare snapshot.
  if (!Metrics->isObject())
    return makeError("obs: snapshot is not a JSON object");
  Snapshot Out;
  if (const Json *Counters = Metrics->get("counters"))
    for (const auto &[Name, V] : Counters->members())
      Out.Counters[Name] = V.asUint();
  if (const Json *Gauges = Metrics->get("gauges"))
    for (const auto &[Name, V] : Gauges->members())
      Out.Gauges[Name] = V.asInt();
  if (const Json *Histograms = Metrics->get("histograms"))
    for (const auto &[Name, H] : Histograms->members()) {
      HistogramData D;
      if (const Json *Bounds = H.get("bounds"))
        for (const Json &B : Bounds->items())
          D.UpperBounds.push_back(B.asUint());
      if (const Json *Counts = H.get("counts"))
        for (const Json &C : Counts->items())
          D.BucketCounts.push_back(C.asUint());
      if (const Json *Count = H.get("count"))
        D.Count = Count->asUint();
      if (const Json *Sum = H.get("sum"))
        D.Sum = Sum->asUint();
      if (const Json *Max = H.get("max"))
        D.Max = Max->asUint();
      Out.Histograms[Name] = std::move(D);
    }
  return Out;
}

namespace {
std::string &exportPath() {
  static std::string Path;
  return Path;
}

extern "C" void typecoinObsAtExitExport() {
  const std::string &Path = exportPath();
  if (Path.empty())
    return;
  // Exit-path best effort: a failed write cannot be reported upward.
  (void)writeSnapshotFile(Path);
}
} // namespace

void maybeAttachEnvExporter(Registry &R) {
  const char *Env = std::getenv("TYPECOIN_OBS_EXPORT");
  if (!Env || !*Env)
    return;
  exportPath() = Env;
  R.enableTiming(true);
  TraceBuffer::instance().setEnabled(true);
  std::atexit(typecoinObsAtExitExport);
}

} // namespace obs
} // namespace typecoin
