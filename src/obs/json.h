//===- obs/json.h - Minimal JSON reader/writer ------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON value with a recursive-descent parser
/// and a deterministic writer — enough for the observability snapshot
/// format, for benchrunner to ingest `--benchmark_out` files, and for
/// tcstat to dump/diff snapshots. Integers that fit int64/uint64
/// round-trip exactly (Google Benchmark emits large iteration counts);
/// everything else is a double.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_OBS_JSON_H
#define TYPECOIN_OBS_JSON_H

#include "support/result.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace typecoin {
namespace obs {

class Json {
public:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool B) : K(Kind::Bool), BoolV(B) {}
  Json(int64_t I) : K(Kind::Int), IntV(I) {}
  Json(uint64_t U) : K(Kind::Uint), UintV(U) {}
  Json(int I) : K(Kind::Int), IntV(I) {}
  Json(double D) : K(Kind::Double), DoubleV(D) {}
  Json(std::string S) : K(Kind::String), StringV(std::move(S)) {}
  Json(const char *S) : K(Kind::String), StringV(S) {}

  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isNumber() const {
    return K == Kind::Int || K == Kind::Uint || K == Kind::Double;
  }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return BoolV; }
  /// Numeric value as double (lossy for > 2^53 integers).
  double number() const;
  /// Numeric value as uint64 (truncates doubles; 0 for negatives).
  uint64_t asUint() const;
  int64_t asInt() const;
  const std::string &str() const { return StringV; }

  // --- Array access ------------------------------------------------------
  std::vector<Json> &items() { return ArrayV; }
  const std::vector<Json> &items() const { return ArrayV; }
  void push(Json J) { ArrayV.push_back(std::move(J)); }
  size_t size() const {
    return K == Kind::Array ? ArrayV.size() : ObjectV.size();
  }

  // --- Object access -----------------------------------------------------
  /// Insert-or-assign; keeps first-insertion order for the writer.
  Json &set(const std::string &Key, Json Value);
  /// Member lookup; nullptr when missing or not an object.
  const Json *get(const std::string &Key) const;
  const std::vector<std::pair<std::string, Json>> &members() const {
    return ObjectV;
  }

  // --- Serialization -----------------------------------------------------
  /// Compact when Indent < 0, pretty-printed otherwise.
  std::string dump(int Indent = 2) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  static Result<Json> parse(const std::string &Text);

private:
  void dumpTo(std::string &Out, int Indent, int Level) const;

  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  uint64_t UintV = 0;
  double DoubleV = 0;
  std::string StringV;
  std::vector<Json> ArrayV;
  std::vector<std::pair<std::string, Json>> ObjectV;
};

} // namespace obs
} // namespace typecoin

#endif // TYPECOIN_OBS_JSON_H
