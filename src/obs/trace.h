//===- obs/trace.h - Scoped-span tracing into a bounded ring ----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight tracing facility: \ref Span is an RAII scoped timer
/// that, when tracing is enabled, records a \ref TraceEvent into a
/// bounded in-memory ring buffer at scope exit. Events carry a
/// process-wide completion sequence number and the span's nesting depth
/// at open time, so tests (and the replay workflow, per the
/// support/replay convention) can assert a *deterministic event order*
/// — the sequence — independent of wall-clock jitter: within one
/// thread, a child span always completes (and is therefore sequenced)
/// before its parent.
///
/// When tracing is disabled (the default), constructing a Span costs
/// one relaxed atomic load and nothing else — no clock read, no lock,
/// no allocation — so instrumented hot paths are unchanged for the
/// tier-1 suite and the chaos soak.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_OBS_TRACE_H
#define TYPECOIN_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace typecoin {
namespace obs {

/// One completed span.
struct TraceEvent {
  uint64_t Seq = 0;     ///< Completion order, process-wide, gap-free.
  std::string Name;     ///< The span's label (e.g. "checker.proof").
  int Depth = 0;        ///< Nesting depth at open time (0 = top level).
  uint64_t StartNs = 0; ///< Monotonic open time.
  uint64_t DurNs = 0;   ///< Wall time between open and close.
};

/// The process-wide bounded ring of completed spans. Oldest events are
/// evicted first once \ref capacity is exceeded; \ref dropped counts
/// the evictions so an exporter can tell a quiet run from a saturated
/// one.
class TraceBuffer {
public:
  static TraceBuffer &instance();

  /// Tracing master switch; off by default.
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  size_t capacity() const;
  /// Resize the ring (evicting oldest events if shrinking).
  void setCapacity(size_t N);

  void record(std::string Name, int Depth, uint64_t StartNs,
              uint64_t DurNs);

  /// Events currently buffered, oldest first (ascending Seq).
  std::vector<TraceEvent> events() const;
  size_t size() const;
  uint64_t dropped() const;

  /// Forget everything and restart the sequence from 0 — the
  /// replay-friendly reset a test performs before a scenario.
  void clear();

private:
  TraceBuffer() = default;

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  std::deque<TraceEvent> Ring;
  size_t Capacity = 4096;
  uint64_t NextSeq = 0;
  uint64_t Dropped = 0;
};

/// RAII scoped span. Opening and closing is a no-op unless
/// TraceBuffer::instance().enabled().
class Span {
public:
  explicit Span(const char *Name);
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span();

private:
  const char *Name;
  bool Active;
  int Depth = 0;
  uint64_t StartNs = 0;
};

} // namespace obs
} // namespace typecoin

#endif // TYPECOIN_OBS_TRACE_H
