//===- obs/metrics.cpp - Process-wide metrics registry --------------------===//

#include "obs/metrics.h"

#include "obs/export.h"

#include <chrono>
#include <cstdlib>

namespace typecoin {
namespace obs {

Histogram::Histogram(const std::vector<uint64_t> &UpperBounds) {
  NumBounds = std::min(UpperBounds.size(), MaxBuckets);
  for (size_t I = 0; I < NumBounds; ++I)
    Bounds[I] = UpperBounds[I];
}

void Histogram::observe(uint64_t Sample) {
  size_t I = 0;
  while (I < NumBounds && Sample > Bounds[I])
    ++I;
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = Max.load(std::memory_order_relaxed);
  while (Cur < Sample &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
}

void Histogram::reset() {
  for (size_t I = 0; I <= NumBounds; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

const std::vector<uint64_t> &defaultLatencyBucketsNs() {
  // 1us .. ~8.6s, doubling: 1us, 2us, 4us, ... (14 bounds), then
  // 32ms, 128ms, 512ms, 2s, 8.6s coarse tail.
  static const std::vector<uint64_t> Buckets = [] {
    std::vector<uint64_t> B;
    for (uint64_t V = 1000; V <= 16 * 1000 * 1000; V *= 2) // 1us..16ms
      B.push_back(V);
    B.push_back(32u * 1000 * 1000);
    B.push_back(128u * 1000 * 1000);
    B.push_back(512u * 1000 * 1000);
    B.push_back(2000u * 1000 * 1000);
    B.push_back(8600ull * 1000 * 1000);
    return B;
  }();
  return Buckets;
}

const std::vector<uint64_t> &defaultSizeBuckets() {
  static const std::vector<uint64_t> Buckets = [] {
    std::vector<uint64_t> B;
    for (uint64_t V = 1; V <= 1024; V *= 2)
      B.push_back(V);
    return B;
  }();
  return Buckets;
}

uint64_t Snapshot::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

int64_t Snapshot::gauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0 : It->second;
}

const HistogramData *Snapshot::histogram(const std::string &Name) const {
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : &It->second;
}

Registry::Registry() {
  // The environment-attached exporter: when TYPECOIN_OBS_EXPORT names a
  // file, enable timing + tracing for the whole process and write a
  // JSON snapshot at exit (this is how benchrunner collects per-bench
  // obs data without any IPC). Registered from the registry constructor
  // so any binary that touches a single metric gets it; binaries that
  // never touch obs write nothing.
  maybeAttachEnvExporter(*this);
}

Registry &Registry::instance() {
  // Intentionally leaked: the env-attached exporter (export.h) runs as
  // an atexit handler registered during this object's construction,
  // which the language sequences *after* the object's destructor. A
  // never-destroyed registry keeps that handler — and metric handles
  // held by other static-duration objects — valid for the whole
  // process. Still reachable through this pointer, so LeakSanitizer
  // does not flag it.
  static Registry *R = new Registry();
  return *R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters[Name];
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  return Gauges[Name];
}

Histogram &Registry::histogram(const std::string &Name,
                               const std::vector<uint64_t> &UpperBounds) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.try_emplace(Name, UpperBounds).first;
  return It->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Snapshot Out;
  for (const auto &[Name, C] : Counters)
    Out.Counters[Name] = C.value();
  for (const auto &[Name, G] : Gauges)
    Out.Gauges[Name] = G.value();
  for (const auto &[Name, H] : Histograms) {
    HistogramData D;
    for (size_t I = 0; I + 1 < H.bucketCount(); ++I)
      D.UpperBounds.push_back(H.upperBound(I));
    for (size_t I = 0; I < H.bucketCount(); ++I)
      D.BucketCounts.push_back(H.bucketValue(I));
    D.Count = H.count();
    D.Sum = H.sum();
    D.Max = H.max();
    Out.Histograms[Name] = std::move(D);
  }
  return Out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C.reset();
  for (auto &[Name, G] : Gauges)
    G.reset();
  for (auto &[Name, H] : Histograms)
    H.reset();
}

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace obs
} // namespace typecoin
