//===- obs/export.h - JSON snapshot export ----------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turning the metrics registry and the trace ring into a JSON document
/// (the `obs` snapshot format, schema `typecoin-obs/1`), plus the
/// environment-attached exporter: when `TYPECOIN_OBS_EXPORT=<path>` is
/// set, any binary linking obs enables timing + tracing and writes a
/// snapshot to `<path>` at process exit. This is how tools/benchrunner
/// harvests per-benchmark observability data without IPC, and how a
/// node run can be inspected with tools/tcstat after the fact.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_OBS_EXPORT_H
#define TYPECOIN_OBS_EXPORT_H

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace typecoin {
namespace obs {

/// Serialize one metrics snapshot (no trace events).
Json snapshotToJson(const Snapshot &S);

/// The full export document: schema tag, metrics, and (when any were
/// recorded) the trace ring.
Json exportJson(const Snapshot &S, const std::vector<TraceEvent> &Trace,
                uint64_t TraceDropped);

/// Snapshot the live registry + trace buffer and serialize.
Json currentExportJson();

/// Write \ref currentExportJson to \p Path (pretty-printed).
Status writeSnapshotFile(const std::string &Path);

/// Parse a snapshot file's metrics back into a \ref Snapshot (the
/// inverse of \ref snapshotToJson; trace events are not restored).
/// Accepts either a bare snapshot or a full export document.
Result<Snapshot> readSnapshotJson(const Json &Doc);

/// If `TYPECOIN_OBS_EXPORT` names a file: enable timing and tracing on
/// \p R and register an atexit hook writing the snapshot there. Called
/// once from the registry constructor.
void maybeAttachEnvExporter(Registry &R);

} // namespace obs
} // namespace typecoin

#endif // TYPECOIN_OBS_EXPORT_H
