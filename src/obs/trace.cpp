//===- obs/trace.cpp - Scoped-span tracing into a bounded ring ------------===//

#include "obs/trace.h"

#include "obs/metrics.h"

namespace typecoin {
namespace obs {

TraceBuffer &TraceBuffer::instance() {
  // Intentionally leaked, for the same exit-ordering reason as
  // Registry::instance(): the atexit exporter must be able to drain the
  // ring after every other static is gone.
  static TraceBuffer *B = new TraceBuffer();
  return *B;
}

size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Capacity;
}

void TraceBuffer::setCapacity(size_t N) {
  std::lock_guard<std::mutex> Lock(Mu);
  Capacity = N == 0 ? 1 : N;
  while (Ring.size() > Capacity) {
    Ring.pop_front();
    ++Dropped;
  }
}

void TraceBuffer::record(std::string Name, int Depth, uint64_t StartNs,
                         uint64_t DurNs) {
  std::lock_guard<std::mutex> Lock(Mu);
  TraceEvent E;
  E.Seq = NextSeq++;
  E.Name = std::move(Name);
  E.Depth = Depth;
  E.StartNs = StartNs;
  E.DurNs = DurNs;
  Ring.push_back(std::move(E));
  while (Ring.size() > Capacity) {
    Ring.pop_front();
    ++Dropped;
  }
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return std::vector<TraceEvent>(Ring.begin(), Ring.end());
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Ring.size();
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  NextSeq = 0;
  Dropped = 0;
}

namespace {
/// Per-thread nesting depth of open spans.
thread_local int OpenDepth = 0;
} // namespace

Span::Span(const char *Name)
    : Name(Name), Active(TraceBuffer::instance().enabled()) {
  if (!Active)
    return;
  Depth = OpenDepth++;
  StartNs = monotonicNowNs();
}

Span::~Span() {
  if (!Active)
    return;
  --OpenDepth;
  TraceBuffer::instance().record(Name, Depth, StartNs,
                                 monotonicNowNs() - StartNs);
}

} // namespace obs
} // namespace typecoin
