//===- obs/json.cpp - Minimal JSON reader/writer --------------------------===//

#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace typecoin {
namespace obs {

double Json::number() const {
  switch (K) {
  case Kind::Int:
    return static_cast<double>(IntV);
  case Kind::Uint:
    return static_cast<double>(UintV);
  case Kind::Double:
    return DoubleV;
  default:
    return 0;
  }
}

uint64_t Json::asUint() const {
  switch (K) {
  case Kind::Int:
    return IntV < 0 ? 0 : static_cast<uint64_t>(IntV);
  case Kind::Uint:
    return UintV;
  case Kind::Double:
    return DoubleV < 0 ? 0 : static_cast<uint64_t>(DoubleV);
  default:
    return 0;
  }
}

int64_t Json::asInt() const {
  switch (K) {
  case Kind::Int:
    return IntV;
  case Kind::Uint:
    return static_cast<int64_t>(UintV);
  case Kind::Double:
    return static_cast<int64_t>(DoubleV);
  default:
    return 0;
  }
}

Json &Json::set(const std::string &Key, Json Value) {
  K = Kind::Object;
  for (auto &[Name, V] : ObjectV)
    if (Name == Key) {
      V = std::move(Value);
      return V;
    }
  ObjectV.emplace_back(Key, std::move(Value));
  return ObjectV.back().second;
}

const Json *Json::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : ObjectV)
    if (Name == Key)
      return &V;
  return nullptr;
}

static void escapeString(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void Json::dumpTo(std::string &Out, int Indent, int Level) const {
  auto Newline = [&](int L) {
    if (Indent < 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * L, ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntV);
    break;
  case Kind::Uint:
    Out += std::to_string(UintV);
    break;
  case Kind::Double: {
    if (std::isfinite(DoubleV)) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleV);
      Out += Buf;
    } else {
      Out += "0"; // JSON has no Inf/NaN; clamp rather than emit garbage.
    }
    break;
  }
  case Kind::String:
    escapeString(StringV, Out);
    break;
  case Kind::Array: {
    if (ArrayV.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I < ArrayV.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Level + 1);
      ArrayV[I].dumpTo(Out, Indent, Level + 1);
    }
    Newline(Level);
    Out += ']';
    break;
  }
  case Kind::Object: {
    if (ObjectV.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    bool First = true;
    for (const auto &[Name, V] : ObjectV) {
      if (!First)
        Out += ',';
      First = false;
      Newline(Level + 1);
      escapeString(Name, Out);
      Out += Indent < 0 ? ":" : ": ";
      V.dumpTo(Out, Indent, Level + 1);
    }
    Newline(Level);
    Out += '}';
    break;
  }
  }
}

std::string Json::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

namespace {

/// Recursive-descent JSON parser over a string.
class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  Result<Json> parseDocument() {
    TC_UNWRAP(V, parseValue());
    skipWs();
    if (Pos != S.size())
      return fail("trailing characters after JSON value");
    return V;
  }

private:
  Error fail(const std::string &Why) const {
    return makeError("json: " + Why + " at offset " + std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\t' || S[Pos] == '\n' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Result<Json> parseValue() {
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      TC_UNWRAP(Str, parseString());
      return Json(std::move(Str));
    }
    if (C == 't' || C == 'f')
      return parseKeyword();
    if (C == 'n') {
      if (S.compare(Pos, 4, "null") == 0) {
        Pos += 4;
        return Json();
      }
      return fail("invalid keyword");
    }
    return parseNumber();
  }

  Result<Json> parseKeyword() {
    if (S.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      return Json(true);
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      return Json(false);
    }
    return fail("invalid keyword");
  }

  Result<std::string> parseString() {
    if (!consume('"'))
      return fail("expected '\"'");
    std::string Out;
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        break;
      char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code += static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code += static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are passed
        // through as two separate 3-byte sequences; good enough for
        // metric names and benchmark labels).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  Result<Json> parseNumber() {
    size_t Start = Pos;
    (void)consume('-');
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    bool Integral = true;
    if (Pos < S.size() && (S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E')) {
      Integral = false;
      while (Pos < S.size() &&
             (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
              S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
              S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
    }
    if (Pos == Start || (Pos == Start + 1 && S[Start] == '-'))
      return fail("invalid number");
    std::string Text = S.substr(Start, Pos - Start);
    if (Integral) {
      errno = 0;
      if (Text[0] == '-') {
        long long V = std::strtoll(Text.c_str(), nullptr, 10);
        if (errno != ERANGE)
          return Json(static_cast<int64_t>(V));
      } else {
        unsigned long long V = std::strtoull(Text.c_str(), nullptr, 10);
        if (errno != ERANGE)
          return Json(static_cast<uint64_t>(V));
      }
    }
    return Json(std::strtod(Text.c_str(), nullptr));
  }

  Result<Json> parseArray() {
    consume('[');
    Json Out = Json::array();
    skipWs();
    if (consume(']'))
      return Out;
    while (true) {
      TC_UNWRAP(V, parseValue());
      Out.push(std::move(V));
      skipWs();
      if (consume(']'))
        return Out;
      if (!consume(','))
        return fail("expected ',' or ']'");
    }
  }

  Result<Json> parseObject() {
    consume('{');
    Json Out = Json::object();
    skipWs();
    if (consume('}'))
      return Out;
    while (true) {
      skipWs();
      TC_UNWRAP(Key, parseString());
      skipWs();
      if (!consume(':'))
        return fail("expected ':'");
      TC_UNWRAP(V, parseValue());
      Out.set(Key, std::move(V));
      skipWs();
      if (consume('}'))
        return Out;
      if (!consume(','))
        return fail("expected ',' or '}'");
    }
  }

  const std::string &S;
  size_t Pos = 0;
};

} // namespace

Result<Json> Json::parse(const std::string &Text) {
  return Parser(Text).parseDocument();
}

} // namespace obs
} // namespace typecoin
