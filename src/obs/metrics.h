//===- obs/metrics.h - Process-wide metrics registry ------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of cheap, always-compiled-in metrics:
///
///  * \ref Counter — monotonically increasing, relaxed-atomic adds;
///  * \ref Gauge — last-value / running-sum / running-max, atomic;
///  * \ref Histogram — fixed upper-bound buckets with atomic counts,
///    plus sum/count/max for mean and tail estimates.
///
/// Instrumentation sites pay one registry lookup *ever* via the
/// function-local-static idiom:
///
///   static obs::Counter &Accepted = obs::counter("mempool.accept.ok");
///   Accepted.inc();
///
/// after which an increment is a single relaxed atomic add — safe under
/// the threaded sanitizer builds and cheap enough for the hottest
/// paths. Wall-clock timing (\ref ScopedTimer, obs/trace.h spans) is
/// additionally gated on \ref timingEnabled so that, with no exporter
/// attached, instrumented code never reads a clock.
///
/// Metric naming scheme (see DESIGN.md "Observability"):
/// dot-separated `<subsystem>.<event>[.<detail>]`, histograms named for
/// their unit suffix (`_ns` for nanosecond latencies, `depth` / plain
/// for dimensionless sizes).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_OBS_METRICS_H
#define TYPECOIN_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace typecoin {
namespace obs {

/// A monotonically increasing event count.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A point-in-time signed value (sizes, depths, high-water marks).
class Gauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  void add(int64_t X) { V.fetch_add(X, std::memory_order_relaxed); }
  /// Raise the gauge to \p X if it is below it (high-water mark).
  void recordMax(int64_t X) {
    int64_t Cur = V.load(std::memory_order_relaxed);
    while (Cur < X &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed))
      ;
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// A fixed-bucket histogram: samples land in the first bucket whose
/// upper bound is >= the sample; an implicit overflow bucket catches
/// the rest. Bounds are fixed at registration, so observation is one
/// linear scan over at most \ref MaxBuckets bounds plus three relaxed
/// atomic adds — no allocation, no locking.
class Histogram {
public:
  static constexpr size_t MaxBuckets = 24; ///< excluding overflow

  /// \p UpperBounds must be sorted ascending; at most MaxBuckets entries
  /// (extras are dropped).
  explicit Histogram(const std::vector<uint64_t> &UpperBounds);

  void observe(uint64_t Sample);

  size_t bucketCount() const { return NumBounds + 1; } ///< incl. overflow
  uint64_t upperBound(size_t I) const { return Bounds[I]; } ///< I < NumBounds
  uint64_t bucketValue(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  void reset();

private:
  size_t NumBounds = 0;
  std::array<uint64_t, MaxBuckets> Bounds{};
  std::array<std::atomic<uint64_t>, MaxBuckets + 1> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// Exponential nanosecond buckets, 1us .. ~8.6s — the default for every
/// `*_ns` latency histogram (documented in DESIGN.md).
const std::vector<uint64_t> &defaultLatencyBucketsNs();

/// Small power-of-two buckets, 1 .. 1024 — for counts, sizes and depths.
const std::vector<uint64_t> &defaultSizeBuckets();

/// Point-in-time copy of one histogram, for snapshots.
struct HistogramData {
  std::vector<uint64_t> UpperBounds; ///< excludes the overflow bucket
  std::vector<uint64_t> BucketCounts; ///< one longer than UpperBounds
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
};

/// An isolated point-in-time copy of every registered metric: later
/// updates to the registry never alter a snapshot already taken.
struct Snapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, int64_t> Gauges;
  std::map<std::string, HistogramData> Histograms;

  /// Convenience lookups returning 0 / empty for unknown names.
  uint64_t counter(const std::string &Name) const;
  int64_t gauge(const std::string &Name) const;
  const HistogramData *histogram(const std::string &Name) const;
};

/// The process-wide registry. Metric objects live as long as the
/// process once created; references handed out are never invalidated
/// (node-based storage), which is what makes the function-local-static
/// caching idiom sound.
class Registry {
public:
  static Registry &instance();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// Registers under the given bounds on first use; later calls return
  /// the existing histogram regardless of \p UpperBounds.
  Histogram &histogram(const std::string &Name,
                       const std::vector<uint64_t> &UpperBounds);

  Snapshot snapshot() const;

  /// Zero every registered metric (handles stay valid). Test/tool use.
  void reset();

  /// Is wall-clock timing (ScopedTimer, trace spans) live? Off by
  /// default; attaching an exporter — or a test — turns it on.
  bool timingEnabled() const {
    return Timing.load(std::memory_order_relaxed);
  }
  void enableTiming(bool On) {
    Timing.store(On, std::memory_order_relaxed);
  }

private:
  Registry();

  mutable std::mutex Mu;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::atomic<bool> Timing{false};
};

// --- Free-function sugar for instrumentation sites ----------------------

inline Counter &counter(const std::string &Name) {
  return Registry::instance().counter(Name);
}
inline Gauge &gauge(const std::string &Name) {
  return Registry::instance().gauge(Name);
}
inline Histogram &
latencyHistogram(const std::string &Name) {
  return Registry::instance().histogram(Name, defaultLatencyBucketsNs());
}
inline Histogram &sizeHistogram(const std::string &Name) {
  return Registry::instance().histogram(Name, defaultSizeBuckets());
}
inline bool timingEnabled() {
  return Registry::instance().timingEnabled();
}

/// Monotonic nanoseconds (steady clock).
uint64_t monotonicNowNs();

/// RAII latency probe: observes the elapsed nanoseconds into \p H at
/// scope exit. A no-op (no clock read) unless timing is enabled.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram &H)
      : H(H), Active(timingEnabled()), StartNs(Active ? monotonicNowNs() : 0) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() {
    if (Active)
      H.observe(monotonicNowNs() - StartNs);
  }

private:
  Histogram &H;
  bool Active;
  uint64_t StartNs;
};

} // namespace obs
} // namespace typecoin

#endif // TYPECOIN_OBS_METRICS_H
