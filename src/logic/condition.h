//===- logic/condition.h - Conditions and entailment ------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The condition language of Figure 2:
///
///   phi ::= true | phi /\ phi | ~phi | before(t) | spent(txid.n)
///
/// "The essential property of all conditions is that there be
/// unambiguous evidence of the truth or falsity of phi for any
/// particular transaction in the blockchain" (Section 5). `before(t)`
/// expresses expiration against block timestamps; `spent(txid.n)` in
/// negated form expresses revocation.
///
/// Entailment (`Phi => Phi'`) is the classical sequent calculus of
/// Appendix A, including the axiom before(t) |- before(t') for t <= t'.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LOGIC_CONDITION_H
#define TYPECOIN_LOGIC_CONDITION_H

#include "lf/syntax.h"
#include "support/serialize.h"

#include <memory>
#include <string>
#include <vector>

namespace typecoin {
namespace logic {

struct Cond;
using CondPtr = std::shared_ptr<const Cond>;

/// A condition.
struct Cond {
  enum class Tag { True, And, Not, Before, Spent };

  Tag Kind;
  CondPtr L, R;      ///< And (L, R); Not (L).
  lf::TermPtr Time;  ///< Before: an index term of type nat.
  std::string Txid;  ///< Spent: transaction id (display hex).
  uint32_t Index = 0;///< Spent: output index.

  explicit Cond(Tag Kind) : Kind(Kind) {}
};

CondPtr cTrue();
CondPtr cAnd(CondPtr L, CondPtr R);
CondPtr cNot(CondPtr C);
CondPtr cBefore(lf::TermPtr Time);
CondPtr cBefore(uint64_t Time);
CondPtr cSpent(std::string Txid, uint32_t Index);
/// `~spent(...)` — the revocation idiom.
CondPtr cUnspent(std::string Txid, uint32_t Index);

/// Syntactic equality (after normalizing `before` time terms).
bool condEqual(const CondPtr &A, const CondPtr &B);

/// Substitute index terms (conditions may mention quantified times).
CondPtr shiftCond(const CondPtr &C, int Delta, unsigned Cutoff = 0);
CondPtr substCond(const CondPtr &C, unsigned Index, const lf::TermPtr &Value);
bool condHasFreeVar(const CondPtr &C, unsigned Index);

std::string printCond(const CondPtr &C);

void writeCond(Writer &W, const CondPtr &C);
Result<CondPtr> readCond(Reader &R);

/// Classical sequent entailment `Phi => Phi'` over condition multisets
/// (Appendix A). Decidable; used by `ifweaken`.
bool condEntails(const std::vector<CondPtr> &Left,
                 const std::vector<CondPtr> &Right);

/// Convenience: phi |- phi'.
bool condEntails(const CondPtr &Phi, const CondPtr &PhiPrime);

/// The evidence oracle: answers the primitive conditions against
/// blockchain state. Implemented by the typecoin layer over a
/// `bitcoin::Blockchain`; tests may use fixed tables.
class CondOracle {
public:
  virtual ~CondOracle() = default;
  /// The evaluation time (the block timestamp of the transaction under
  /// check, per Section 5).
  virtual uint64_t evaluationTime() const = 0;
  /// Whether output \p Index of \p Txid is spent; error when there is no
  /// evidence (unknown transaction).
  virtual Result<bool> isSpent(const std::string &Txid,
                               uint32_t Index) const = 0;
};

/// Evaluate a closed condition against the oracle. `before(t)` requires
/// a literal time after normalization.
Result<bool> evalCond(const CondPtr &C, const CondOracle &Oracle);

} // namespace logic
} // namespace typecoin

#endif // TYPECOIN_LOGIC_CONDITION_H
