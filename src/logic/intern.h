//===- logic/intern.h - Hash-consing arena for propositions -----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proposition instance of the lf/intern.h hash-consing arena. The
/// constructors in logic/proposition.cpp funnel through \ref internProp,
/// so with `TYPECOIN_INTERN=1` structurally equal propositions built
/// bottom-up are pointer-equal: `propEqual`'s `A.get() == B.get()` fast
/// path fires and the per-node digest cache behind `propDigest` is
/// computed once per structure process-wide. Same soundness contract as
/// lf/intern.h: positive-only, bounded, eviction-safe.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LOGIC_INTERN_H
#define TYPECOIN_LOGIC_INTERN_H

#include "logic/proposition.h"

namespace typecoin {
namespace logic {

/// Canonicalize through the process-wide Prop arena; no-op (returning
/// \p P unchanged) when interning is disabled.
PropPtr internProp(PropPtr P);

/// Current entry count (tests/diagnostics).
size_t propArenaSize();
/// Drop all canonical claims — Prop, Term, and LFType arenas (tests).
/// Outstanding nodes stay valid; they are just no longer canonical.
void internClearAll();

} // namespace logic
} // namespace typecoin

#endif // TYPECOIN_LOGIC_INTERN_H
