//===- logic/condition.cpp - Conditions and entailment ----------------------===//

#include "logic/condition.h"

#include "lf/serialize.h"

#include <cassert>
#include <optional>

namespace typecoin {
namespace logic {

CondPtr cTrue() {
  static const CondPtr C = std::make_shared<Cond>(Cond::Tag::True);
  return C;
}

CondPtr cAnd(CondPtr L, CondPtr R) {
  auto C = std::make_shared<Cond>(Cond::Tag::And);
  C->L = std::move(L);
  C->R = std::move(R);
  return C;
}

CondPtr cNot(CondPtr Inner) {
  auto C = std::make_shared<Cond>(Cond::Tag::Not);
  C->L = std::move(Inner);
  return C;
}

CondPtr cBefore(lf::TermPtr Time) {
  auto C = std::make_shared<Cond>(Cond::Tag::Before);
  C->Time = std::move(Time);
  return C;
}

CondPtr cBefore(uint64_t Time) { return cBefore(lf::nat(Time)); }

CondPtr cSpent(std::string Txid, uint32_t Index) {
  auto C = std::make_shared<Cond>(Cond::Tag::Spent);
  C->Txid = std::move(Txid);
  C->Index = Index;
  return C;
}

CondPtr cUnspent(std::string Txid, uint32_t Index) {
  return cNot(cSpent(std::move(Txid), Index));
}

bool condEqual(const CondPtr &A, const CondPtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case Cond::Tag::True:
    return true;
  case Cond::Tag::And:
    return condEqual(A->L, B->L) && condEqual(A->R, B->R);
  case Cond::Tag::Not:
    return condEqual(A->L, B->L);
  case Cond::Tag::Before:
    return lf::termEqual(A->Time, B->Time);
  case Cond::Tag::Spent:
    return A->Txid == B->Txid && A->Index == B->Index;
  }
  return false;
}

CondPtr shiftCond(const CondPtr &C, int Delta, unsigned Cutoff) {
  switch (C->Kind) {
  case Cond::Tag::True:
  case Cond::Tag::Spent:
    return C;
  case Cond::Tag::And:
    return cAnd(shiftCond(C->L, Delta, Cutoff),
                shiftCond(C->R, Delta, Cutoff));
  case Cond::Tag::Not:
    return cNot(shiftCond(C->L, Delta, Cutoff));
  case Cond::Tag::Before:
    return cBefore(lf::shiftTerm(C->Time, Delta, Cutoff));
  }
  return C;
}

CondPtr substCond(const CondPtr &C, unsigned Index,
                  const lf::TermPtr &Value) {
  switch (C->Kind) {
  case Cond::Tag::True:
  case Cond::Tag::Spent:
    return C;
  case Cond::Tag::And:
    return cAnd(substCond(C->L, Index, Value),
                substCond(C->R, Index, Value));
  case Cond::Tag::Not:
    return cNot(substCond(C->L, Index, Value));
  case Cond::Tag::Before:
    return cBefore(lf::substTerm(C->Time, Index, Value));
  }
  return C;
}

static bool termHasFreeVar(const lf::TermPtr &T, unsigned Index) {
  using lf::Term;
  switch (T->Kind) {
  case Term::Tag::Var:
    return T->VarIndex == Index;
  case Term::Tag::Const:
  case Term::Tag::Principal:
  case Term::Tag::Nat:
    return false;
  case Term::Tag::Lam:
    return termHasFreeVar(T->Body, Index + 1);
  case Term::Tag::App:
    return termHasFreeVar(T->Fn, Index) || termHasFreeVar(T->Arg, Index);
  }
  return false;
}

bool condHasFreeVar(const CondPtr &C, unsigned Index) {
  switch (C->Kind) {
  case Cond::Tag::True:
  case Cond::Tag::Spent:
    return false;
  case Cond::Tag::And:
    return condHasFreeVar(C->L, Index) || condHasFreeVar(C->R, Index);
  case Cond::Tag::Not:
    return condHasFreeVar(C->L, Index);
  case Cond::Tag::Before:
    return termHasFreeVar(C->Time, Index);
  }
  return false;
}

std::string printCond(const CondPtr &C) {
  switch (C->Kind) {
  case Cond::Tag::True:
    return "true";
  case Cond::Tag::And:
    return "(" + printCond(C->L) + " /\\ " + printCond(C->R) + ")";
  case Cond::Tag::Not:
    return "~" + printCond(C->L);
  case Cond::Tag::Before:
    return "before(" + lf::printTerm(C->Time) + ")";
  case Cond::Tag::Spent:
    return "spent(" + C->Txid.substr(0, 8) + "." +
           std::to_string(C->Index) + ")";
  }
  return "?";
}

void writeCond(Writer &W, const CondPtr &C) {
  W.writeU8(static_cast<uint8_t>(C->Kind));
  switch (C->Kind) {
  case Cond::Tag::True:
    break;
  case Cond::Tag::And:
    writeCond(W, C->L);
    writeCond(W, C->R);
    break;
  case Cond::Tag::Not:
    writeCond(W, C->L);
    break;
  case Cond::Tag::Before:
    lf::writeTerm(W, C->Time);
    break;
  case Cond::Tag::Spent:
    W.writeString(C->Txid);
    W.writeU32(C->Index);
    break;
  }
}

Result<CondPtr> readCond(Reader &R) {
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<Cond::Tag>(Tag)) {
  case Cond::Tag::True:
    return cTrue();
  case Cond::Tag::And: {
    TC_UNWRAP(L, readCond(R));
    TC_UNWRAP(Right, readCond(R));
    return cAnd(L, Right);
  }
  case Cond::Tag::Not: {
    TC_UNWRAP(L, readCond(R));
    return cNot(L);
  }
  case Cond::Tag::Before: {
    TC_UNWRAP(Time, lf::readTerm(R));
    return cBefore(Time);
  }
  case Cond::Tag::Spent: {
    TC_UNWRAP(Txid, R.readString());
    TC_UNWRAP(Index, R.readU32());
    return cSpent(Txid, Index);
  }
  }
  return makeError("logic: bad condition tag");
}

// Entailment -----------------------------------------------------------------

namespace {

/// One decomposition pass: returns true if a rule applied (sequent(s)
/// pushed onto Work replaced the current one).
[[maybe_unused]] bool atomic(const CondPtr &C) {
  return C->Kind == Cond::Tag::Before || C->Kind == Cond::Tag::Spent;
}

std::optional<uint64_t> literalTime(const CondPtr &C) {
  assert(C->Kind == Cond::Tag::Before);
  auto Norm = lf::normalizeTerm(C->Time);
  if (!Norm || (*Norm)->Kind != lf::Term::Tag::Nat)
    return std::nullopt;
  return (*Norm)->NatValue;
}

bool prove(std::vector<CondPtr> Left, std::vector<CondPtr> Right,
           unsigned Depth) {
  if (Depth > 10000)
    return false; // Defensive; rule applications strictly shrink size.

  // Decompose the left side.
  for (size_t I = 0; I < Left.size(); ++I) {
    const CondPtr C = Left[I];
    switch (C->Kind) {
    case Cond::Tag::True:
      Left.erase(Left.begin() + static_cast<ptrdiff_t>(I));
      return prove(std::move(Left), std::move(Right), Depth + 1);
    case Cond::Tag::And: {
      Left[I] = C->L;
      Left.push_back(C->R);
      return prove(std::move(Left), std::move(Right), Depth + 1);
    }
    case Cond::Tag::Not: {
      Left.erase(Left.begin() + static_cast<ptrdiff_t>(I));
      Right.push_back(C->L);
      return prove(std::move(Left), std::move(Right), Depth + 1);
    }
    default:
      break;
    }
  }
  // Decompose the right side.
  for (size_t I = 0; I < Right.size(); ++I) {
    const CondPtr C = Right[I];
    switch (C->Kind) {
    case Cond::Tag::True:
      return true; // true-R axiom.
    case Cond::Tag::And: {
      // Prove both branches.
      std::vector<CondPtr> R1 = Right, R2 = Right;
      R1[I] = C->L;
      R2[I] = C->R;
      return prove(Left, std::move(R1), Depth + 1) &&
             prove(std::move(Left), std::move(R2), Depth + 1);
    }
    case Cond::Tag::Not: {
      Right.erase(Right.begin() + static_cast<ptrdiff_t>(I));
      Left.push_back(C->L);
      return prove(std::move(Left), std::move(Right), Depth + 1);
    }
    default:
      break;
    }
  }

  // Atomic phase: initial sequents.
  for (const CondPtr &L : Left) {
    assert(atomic(L));
    for (const CondPtr &R : Right) {
      if (condEqual(L, R))
        return true;
      if (L->Kind == Cond::Tag::Before && R->Kind == Cond::Tag::Before) {
        auto TL = literalTime(L), TR = literalTime(R);
        if (TL && TR && *TL <= *TR)
          return true;
      }
    }
  }
  return false;
}

} // namespace

bool condEntails(const std::vector<CondPtr> &Left,
                 const std::vector<CondPtr> &Right) {
  return prove(Left, Right, 0);
}

bool condEntails(const CondPtr &Phi, const CondPtr &PhiPrime) {
  return condEntails(std::vector<CondPtr>{Phi},
                     std::vector<CondPtr>{PhiPrime});
}

Result<bool> evalCond(const CondPtr &C, const CondOracle &Oracle) {
  switch (C->Kind) {
  case Cond::Tag::True:
    return true;
  case Cond::Tag::And: {
    TC_UNWRAP(L, evalCond(C->L, Oracle));
    if (!L)
      return false;
    return evalCond(C->R, Oracle);
  }
  case Cond::Tag::Not: {
    TC_UNWRAP(Inner, evalCond(C->L, Oracle));
    return !Inner;
  }
  case Cond::Tag::Before: {
    auto T = literalTime(C);
    if (!T)
      return makeError("logic: before() with a non-literal time");
    return Oracle.evaluationTime() < *T;
  }
  case Cond::Tag::Spent:
    return Oracle.isSpent(C->Txid, C->Index);
  }
  return makeError("logic: malformed condition");
}

} // namespace logic
} // namespace typecoin
