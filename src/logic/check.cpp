//===- logic/check.cpp - The affine proof checker -----------------------------===//

#include "logic/check.h"

#include <cassert>

namespace typecoin {
namespace logic {

namespace {

/// The working state of one checking run.
class Engine {
public:
  Engine(const Basis &Sigma, const AffirmationVerifier &Affirm,
         const CheckOptions &Opts)
      : Sigma(Sigma), Affirm(Affirm), Opts(Opts) {}

  Result<PropPtr> run(const ProofPtr &M,
                      const std::vector<Hypothesis> &Affine,
                      const std::vector<Hypothesis> &Persistent) {
    for (const Hypothesis &H : Persistent)
      bind(H.Name, H.P, /*IsPersistent=*/true);
    for (const Hypothesis &H : Affine)
      bind(H.Name, H.P, /*IsPersistent=*/false);
    TC_UNWRAP(Out, infer(M));
    if (Opts.StrictLinear) {
      for (const Entry &E : Env)
        if (!E.Persistent && !E.Consumed)
          return makeError("linear: hypothesis " + E.Name +
                           " was never consumed");
    }
    return Out;
  }

private:
  struct Entry {
    std::string Name;
    PropPtr P;
    bool Persistent = false;
    bool Consumed = false;
    bool Blocked = false; ///< Unavailable inside a ! body.
    unsigned PsiDepth = 0;
  };

  const Basis &Sigma;
  const AffirmationVerifier &Affirm;
  CheckOptions Opts;
  lf::Context Psi;
  std::vector<Entry> Env;
  unsigned Depth = 0;

  void bind(const std::string &Name, const PropPtr &P, bool IsPersistent) {
    Entry E;
    E.Name = Name;
    E.P = P;
    E.Persistent = IsPersistent;
    E.PsiDepth = static_cast<unsigned>(Psi.size());
    Env.push_back(std::move(E));
  }

  /// Leave a binder scope opened at \p Mark, enforcing linearity if
  /// requested.
  Status popScope(size_t Mark) {
    Status Out = Status::success();
    if (Opts.StrictLinear) {
      for (size_t I = Mark; I < Env.size(); ++I)
        if (!Env[I].Persistent && !Env[I].Consumed) {
          Out = makeError("linear: hypothesis " + Env[I].Name +
                          " was never consumed");
          break;
        }
    }
    Env.resize(Mark);
    return Out;
  }

  std::vector<bool> snapshotConsumption() const {
    std::vector<bool> Out;
    Out.reserve(Env.size());
    for (const Entry &E : Env)
      Out.push_back(E.Consumed);
    return Out;
  }

  void restoreConsumption(const std::vector<bool> &Snap) {
    assert(Snap.size() <= Env.size());
    for (size_t I = 0; I < Snap.size(); ++I)
      Env[I].Consumed = Snap[I];
  }

  /// Merge: consumed in either branch counts as consumed (sound for the
  /// additive connectives; see DESIGN.md ablation 2).
  void mergeConsumption(const std::vector<bool> &BranchA,
                        const std::vector<bool> &BranchB) {
    for (size_t I = 0; I < Env.size() && I < BranchA.size(); ++I)
      Env[I].Consumed = BranchA[I] || BranchB[I];
  }

  Result<PropPtr> lookupVar(const std::string &Name) {
    for (size_t I = Env.size(); I-- > 0;) {
      Entry &E = Env[I];
      if (E.Name != Name)
        continue;
      if (E.Blocked)
        return makeError("check: affine hypothesis " + Name +
                         " is not available under !");
      if (!E.Persistent) {
        if (E.Consumed)
          return makeError("check: affine hypothesis " + Name +
                           " is already consumed");
        E.Consumed = true;
      }
      int Delta = static_cast<int>(Psi.size()) -
                  static_cast<int>(E.PsiDepth);
      return shiftProp(E.P, Delta);
    }
    return makeError("check: unbound proof variable " + Name);
  }

  Status checkAgainst(const ProofPtr &M, const PropPtr &Goal) {
    TC_UNWRAP(Actual, infer(M));
    if (!propEqual(Actual, Goal))
      return makeError("check: proof has type " + printProp(Actual) +
                       ", expected " + printProp(Goal));
    return Status::success();
  }

  Result<PropPtr> infer(const ProofPtr &M);
};

Result<PropPtr> Engine::infer(const ProofPtr &M) {
  if (++Depth > 100000)
    return makeError("check: proof nesting too deep");
  struct DepthGuard {
    unsigned &D;
    ~DepthGuard() { --D; }
  } Guard{Depth};

  switch (M->Kind) {
  case Proof::Tag::Var:
    return lookupVar(M->Name);

  case Proof::Tag::Const: {
    const PropPtr *P = Sigma.lookupProp(M->CName);
    if (!P)
      return makeError("check: unknown proposition constant " +
                       M->CName.toString());
    // Constants were declared in the empty LF context; shift into the
    // current one.
    return shiftProp(*P, static_cast<int>(Psi.size()));
  }

  case Proof::Tag::Lam: {
    TC_TRY(checkProp(Sigma.lfSig(), Psi, M->Annot));
    size_t Mark = Env.size();
    bind(M->X, M->Annot, /*IsPersistent=*/false);
    TC_UNWRAP(BodyType, infer(M->A));
    TC_TRY(popScope(Mark));
    return pLolli(M->Annot, BodyType);
  }

  case Proof::Tag::App: {
    TC_UNWRAP(FnType, infer(M->A));
    if (FnType->Kind != Prop::Tag::Lolli)
      return makeError("check: applying a proof of non-lolli type " +
                       printProp(FnType));
    TC_TRY(checkAgainst(M->B, FnType->L));
    return FnType->R;
  }

  case Proof::Tag::TensorPair: {
    TC_UNWRAP(L, infer(M->A));
    TC_UNWRAP(R, infer(M->B));
    return pTensor(L, R);
  }

  case Proof::Tag::TensorLet: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::Tensor)
      return makeError("check: tensor-let on non-tensor type " +
                       printProp(OfType));
    size_t Mark = Env.size();
    bind(M->X, OfType->L, false);
    bind(M->Y, OfType->R, false);
    TC_UNWRAP(BodyType, infer(M->B));
    TC_TRY(popScope(Mark));
    return BodyType;
  }

  case Proof::Tag::WithPair: {
    // Both components see the same affine context; consumption is the
    // union (only one will ever be used, and the pair as a whole claims
    // everything either needs).
    std::vector<bool> Before = snapshotConsumption();
    TC_UNWRAP(L, infer(M->A));
    std::vector<bool> AfterL = snapshotConsumption();
    restoreConsumption(Before);
    TC_UNWRAP(R, infer(M->B));
    std::vector<bool> AfterR = snapshotConsumption();
    mergeConsumption(AfterL, AfterR);
    return pWith(L, R);
  }

  case Proof::Tag::WithFst:
  case Proof::Tag::WithSnd: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::With)
      return makeError("check: projection from non-& type " +
                       printProp(OfType));
    return M->Kind == Proof::Tag::WithFst ? OfType->L : OfType->R;
  }

  case Proof::Tag::Inl: {
    TC_TRY(checkProp(Sigma.lfSig(), Psi, M->Annot));
    TC_UNWRAP(L, infer(M->A));
    return pPlus(L, M->Annot);
  }
  case Proof::Tag::Inr: {
    TC_TRY(checkProp(Sigma.lfSig(), Psi, M->Annot));
    TC_UNWRAP(R, infer(M->A));
    return pPlus(M->Annot, R);
  }

  case Proof::Tag::Case: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::Plus)
      return makeError("check: case on non-(+) type " + printProp(OfType));
    std::vector<bool> Before = snapshotConsumption();

    size_t Mark = Env.size();
    bind(M->X, OfType->L, false);
    TC_UNWRAP(LeftType, infer(M->B));
    TC_TRY(popScope(Mark));
    std::vector<bool> AfterL = snapshotConsumption();

    restoreConsumption(Before);
    bind(M->Y, OfType->R, false);
    TC_UNWRAP(RightType, infer(M->C));
    TC_TRY(popScope(Mark));
    std::vector<bool> AfterR = snapshotConsumption();

    mergeConsumption(AfterL, AfterR);
    if (!propEqual(LeftType, RightType))
      return makeError("check: case branches prove different "
                       "propositions: " +
                       printProp(LeftType) + " vs " + printProp(RightType));
    return LeftType;
  }

  case Proof::Tag::Abort: {
    TC_TRY(checkProp(Sigma.lfSig(), Psi, M->Annot));
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::Zero)
      return makeError("check: abort on non-0 type " + printProp(OfType));
    return M->Annot;
  }

  case Proof::Tag::OneIntro:
    return pOne();

  case Proof::Tag::OneLet: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::One)
      return makeError("check: unit-let on non-1 type " +
                       printProp(OfType));
    return infer(M->B);
  }

  case Proof::Tag::BangIntro: {
    // The body may use only persistent hypotheses.
    std::vector<size_t> Blocked;
    for (size_t I = 0; I < Env.size(); ++I)
      if (!Env[I].Persistent && !Env[I].Blocked) {
        Env[I].Blocked = true;
        Blocked.push_back(I);
      }
    auto BodyType = infer(M->A);
    for (size_t I : Blocked)
      Env[I].Blocked = false;
    if (!BodyType)
      return BodyType.takeError();
    return pBang(*BodyType);
  }

  case Proof::Tag::BangLet: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::Bang)
      return makeError("check: bang-let on non-! type " +
                       printProp(OfType));
    size_t Mark = Env.size();
    bind(M->X, OfType->Body, /*IsPersistent=*/true);
    TC_UNWRAP(BodyType, infer(M->B));
    TC_TRY(popScope(Mark));
    return BodyType;
  }

  case Proof::Tag::AllIntro: {
    TC_UNWRAP(QKind, lf::kindOfType(Sigma.lfSig(), Psi, M->QAnnot));
    if (QKind->KindTag != lf::Kind::Tag::Type)
      return makeError("check: quantifier domain must have kind type");
    Psi.push_back(M->QAnnot);
    auto BodyType = infer(M->A);
    Psi.pop_back();
    if (!BodyType)
      return BodyType.takeError();
    return pForall(M->QAnnot, *BodyType);
  }

  case Proof::Tag::AllApp: {
    TC_UNWRAP(FnType, infer(M->A));
    if (FnType->Kind != Prop::Tag::Forall)
      return makeError("check: index application to non-forall type " +
                       printProp(FnType));
    TC_TRY(lf::checkTerm(Sigma.lfSig(), Psi, M->ITerm, FnType->QType));
    return substProp(FnType->Body, 0, M->ITerm);
  }

  case Proof::Tag::ExPack: {
    if (M->Annot->Kind != Prop::Tag::Exists)
      return makeError("check: pack annotation must be existential");
    TC_TRY(checkProp(Sigma.lfSig(), Psi, M->Annot));
    TC_TRY(lf::checkTerm(Sigma.lfSig(), Psi, M->ITerm, M->Annot->QType));
    TC_TRY(checkAgainst(M->A, substProp(M->Annot->Body, 0, M->ITerm)));
    return M->Annot;
  }

  case Proof::Tag::ExUnpack: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::Exists)
      return makeError("check: unpack of non-existential type " +
                       printProp(OfType));
    Psi.push_back(OfType->QType);
    size_t Mark = Env.size();
    bind(M->X, OfType->Body, false);
    auto BodyType = infer(M->B);
    Status Popped = popScope(Mark);
    Psi.pop_back();
    TC_TRY(std::move(Popped));
    if (!BodyType)
      return BodyType.takeError();
    if (propHasFreeVar(*BodyType, 0))
      return makeError("check: unpack body's type mentions the "
                       "existential witness: " +
                       printProp(*BodyType));
    return shiftProp(*BodyType, -1);
  }

  case Proof::Tag::SayReturn: {
    TC_TRY(lf::checkTerm(Sigma.lfSig(), Psi, M->Who, lf::principalType()));
    TC_UNWRAP(BodyType, infer(M->A));
    return pSays(M->Who, BodyType);
  }

  case Proof::Tag::SayBind: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::Says)
      return makeError("check: saybind of non-affirmation type " +
                       printProp(OfType));
    size_t Mark = Env.size();
    bind(M->X, OfType->Body, false);
    TC_UNWRAP(BodyType, infer(M->B));
    TC_TRY(popScope(Mark));
    if (BodyType->Kind != Prop::Tag::Says ||
        !lf::termEqual(BodyType->Who, OfType->Who))
      return makeError("check: saybind body must prove an affirmation "
                       "by the same principal, got " +
                       printProp(BodyType));
    return BodyType;
  }

  case Proof::Tag::Assert:
  case Proof::Tag::AssertBang: {
    if (M->KHash.size() != 40)
      return makeError("check: assert principal must be 40 hex digits");
    TC_TRY(checkProp(Sigma.lfSig(), Psi, M->AProp));
    if (M->Kind == Proof::Tag::Assert)
      TC_TRY(Affirm.verifyAffine(M->KHash, M->AProp, M->Sig));
    else
      TC_TRY(Affirm.verifyPersistent(M->KHash, M->AProp, M->Sig));
    return pSays(lf::principal(M->KHash), M->AProp);
  }

  case Proof::Tag::IfReturn: {
    TC_UNWRAP(BodyType, infer(M->A));
    // Condition formation.
    PropPtr Wrapped = pIf(M->Phi, BodyType);
    TC_TRY(checkProp(Sigma.lfSig(), Psi, Wrapped));
    return Wrapped;
  }

  case Proof::Tag::IfBind: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::If)
      return makeError("check: ifbind of non-conditional type " +
                       printProp(OfType));
    size_t Mark = Env.size();
    bind(M->X, OfType->Body, false);
    TC_UNWRAP(BodyType, infer(M->B));
    TC_TRY(popScope(Mark));
    if (BodyType->Kind != Prop::Tag::If ||
        !condEqual(BodyType->Cond, OfType->Cond))
      return makeError("check: ifbind body must prove a conditional "
                       "under the same condition, got " +
                       printProp(BodyType));
    return BodyType;
  }

  case Proof::Tag::IfWeaken: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::If)
      return makeError("check: ifweaken of non-conditional type " +
                       printProp(OfType));
    PropPtr Wrapped = pIf(M->Phi, OfType->Body);
    TC_TRY(checkProp(Sigma.lfSig(), Psi, Wrapped));
    if (!condEntails(M->Phi, OfType->Cond))
      return makeError("check: ifweaken requires " + printCond(M->Phi) +
                       " => " + printCond(OfType->Cond));
    return Wrapped;
  }

  case Proof::Tag::IfSay: {
    TC_UNWRAP(OfType, infer(M->A));
    if (OfType->Kind != Prop::Tag::Says ||
        OfType->Body->Kind != Prop::Tag::If)
      return makeError("check: if/say expects <m>if(phi, A), got " +
                       printProp(OfType));
    return pIf(OfType->Body->Cond, pSays(OfType->Who, OfType->Body->Body));
  }
  }
  return makeError("check: malformed proof term");
}

} // namespace

Result<PropPtr> ProofChecker::infer(const ProofPtr &M,
                                    const std::vector<Hypothesis> &Affine,
                                    const std::vector<Hypothesis> &Persistent) {
  Engine E(Sigma, Affirm, Opts);
  return E.run(M, Affine, Persistent);
}

Status ProofChecker::check(const ProofPtr &M, const PropPtr &Goal,
                           const std::vector<Hypothesis> &Affine,
                           const std::vector<Hypothesis> &Persistent) {
  TC_UNWRAP(Actual, infer(M, Affine, Persistent));
  if (!propEqual(Actual, Goal))
    return makeError("check: proof proves " + printProp(Actual) +
                     ", expected " + printProp(Goal));
  return Status::success();
}

} // namespace logic
} // namespace typecoin
