//===- logic/basis.h - Typecoin bases -----------------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bases (Figure 1: `Sigma ::= e | Sigma, c : s` where a sort `s` is a
/// kind, an LF type, or a proposition). "A transaction uses its local
/// basis to define concepts or rules relevant to its transaction. ...
/// The *global basis* is the local basis appended to the bases of all
/// previous transactions" (Section 4).
///
/// Proposition-sorted constants are persistent rules (`merge`, `split`,
/// `issue`, ...); they are referenced from proof terms and never
/// consumed.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LOGIC_BASIS_H
#define TYPECOIN_LOGIC_BASIS_H

#include "logic/proposition.h"

namespace typecoin {
namespace logic {

/// A basis: LF declarations plus proposition-sorted constants.
class Basis {
public:
  /// The LF portion (families and term constants).
  const lf::Signature &lfSig() const { return LF; }
  lf::Signature &lfSig() { return LF; }

  Status declareFamily(const lf::ConstName &Name, lf::KindPtr K) {
    return LF.declareFamily(Name, std::move(K));
  }
  Status declareTerm(const lf::ConstName &Name, lf::LFTypePtr Ty) {
    return LF.declareTerm(Name, std::move(Ty));
  }
  /// Declare a persistent proposition constant `Name : A`.
  Status declareProp(const lf::ConstName &Name, PropPtr A);

  /// Look up a proposition constant; null if absent.
  const PropPtr *lookupProp(const lf::ConstName &Name) const;

  bool contains(const lf::ConstName &Name) const {
    return LF.contains(Name) || lookupProp(Name) != nullptr;
  }

  /// Basis formation (Appendix A `Sigma |- Sigma' ok`): every
  /// declaration well-formed against \p Global extended with this
  /// basis's earlier declarations; all names local.
  Status checkFormedAgainst(const Basis &Global) const;

  /// Basis freshness (Appendix A): kinds are unconditionally fresh;
  /// type- and prop-sorted declarations must be fresh.
  Status checkFresh() const;

  /// `this` -> txid in names and bodies.
  Basis resolved(const std::string &Txid) const;

  /// Append another basis (the global-basis accumulation step).
  Status append(const Basis &Other);

  size_t propCount() const { return PropOrder.size(); }
  const std::vector<lf::ConstName> &propOrder() const { return PropOrder; }

  void serialize(Writer &W) const;
  static Result<Basis> deserialize(Reader &R);

private:
  lf::Signature LF;
  std::map<lf::ConstName, PropPtr> Props;
  std::vector<lf::ConstName> PropOrder;
};

} // namespace logic
} // namespace typecoin

#endif // TYPECOIN_LOGIC_BASIS_H
