//===- logic/parse.cpp - Surface-syntax parser ---------------------------------===//

#include "logic/parse.h"

#include "support/strings.h"

#include <cctype>
#include <cstring>

namespace typecoin {
namespace logic {

namespace {

/// Token kinds for the surface syntax.
enum class Tok {
  End,
  Ident,    // label, keyword, this, forall, ...
  Number,   // nat literal
  Principal,// K:<40 hex>
  Global,   // @<64 hex>
  Lolli,    // -o
  Tensor,   // (x)
  Plus,     // (+)
  BindArrow,// <-
  CaseArrow,// ->
  Equals,   // =
  Pipe,     // |
  LBracket, // [
  RBracket, // ]
  With,     // &
  Bang,     // !
  AndAnd,   // the conjunction operator (slash backslash)
  Not,      // ~
  LParen,
  RParen,
  LAngle,
  RAngle,
  Dot,
  Comma,
  Colon,
  Lambda,   // backslash
  Arrow,    // ->> (receipt)
  Slash,    // / (receipt amount separator)
};

struct Token {
  Tok Kind = Tok::End;
  std::string Text;
  uint64_t Number = 0;
  size_t Pos = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> Out;
    while (true) {
      skipSpace();
      if (Pos >= Text.size())
        break;
      TC_UNWRAP(T, next());
      Out.push_back(T);
    }
    Token End;
    End.Pos = Pos;
    Out.push_back(End);
    return Out;
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool startsWith(const char *S) const {
    return Text.compare(Pos, std::strlen(S), S) == 0;
  }

  Result<Token> next() {
    Token T;
    T.Pos = Pos;
    char C = Text[Pos];

    // Multi-character operators first (longest match).
    if (startsWith("->>")) {
      Pos += 3;
      T.Kind = Tok::Arrow;
      return T;
    }
    if (startsWith("->")) {
      Pos += 2;
      T.Kind = Tok::CaseArrow;
      return T;
    }
    if (startsWith("-o")) {
      Pos += 2;
      T.Kind = Tok::Lolli;
      return T;
    }
    if (startsWith("<-")) {
      Pos += 2;
      T.Kind = Tok::BindArrow;
      return T;
    }
    if (startsWith("(x)")) {
      Pos += 3;
      T.Kind = Tok::Tensor;
      return T;
    }
    if (startsWith("(+)")) {
      Pos += 3;
      T.Kind = Tok::Plus;
      return T;
    }
    if (startsWith("/\\")) {
      Pos += 2;
      T.Kind = Tok::AndAnd;
      return T;
    }
    if (startsWith("K:")) {
      Pos += 2;
      std::string Hex;
      while (Pos < Text.size() &&
             std::isxdigit(static_cast<unsigned char>(Text[Pos])))
        Hex.push_back(Text[Pos++]);
      if (Hex.size() != 40)
        return makeError(strformat(
            "parse: principal literal needs 40 hex digits at %zu", T.Pos));
      T.Kind = Tok::Principal;
      T.Text = Hex;
      return T;
    }
    if (C == '@') {
      ++Pos;
      std::string Hex;
      while (Pos < Text.size() &&
             std::isxdigit(static_cast<unsigned char>(Text[Pos])))
        Hex.push_back(Text[Pos++]);
      if (Hex.size() != 64)
        return makeError(strformat(
            "parse: global reference needs 64 hex digits at %zu", T.Pos));
      T.Kind = Tok::Global;
      T.Text = Hex;
      return T;
    }

    switch (C) {
    case '&':
      ++Pos;
      T.Kind = Tok::With;
      return T;
    case '!':
      ++Pos;
      T.Kind = Tok::Bang;
      return T;
    case '~':
      ++Pos;
      T.Kind = Tok::Not;
      return T;
    case '(':
      ++Pos;
      T.Kind = Tok::LParen;
      return T;
    case ')':
      ++Pos;
      T.Kind = Tok::RParen;
      return T;
    case '<':
      ++Pos;
      T.Kind = Tok::LAngle;
      return T;
    case '>':
      ++Pos;
      T.Kind = Tok::RAngle;
      return T;
    case '.':
      ++Pos;
      T.Kind = Tok::Dot;
      return T;
    case ',':
      ++Pos;
      T.Kind = Tok::Comma;
      return T;
    case ':':
      ++Pos;
      T.Kind = Tok::Colon;
      return T;
    case '\\':
      ++Pos;
      T.Kind = Tok::Lambda;
      return T;
    case '/':
      ++Pos;
      T.Kind = Tok::Slash;
      return T;
    case '=':
      ++Pos;
      T.Kind = Tok::Equals;
      return T;
    case '|':
      ++Pos;
      T.Kind = Tok::Pipe;
      return T;
    case '[':
      ++Pos;
      T.Kind = Tok::LBracket;
      return T;
    case ']':
      ++Pos;
      T.Kind = Tok::RBracket;
      return T;
    default:
      break;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      uint64_t V = 0;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        V = V * 10 + static_cast<uint64_t>(Text[Pos++] - '0');
      T.Kind = Tok::Number;
      T.Number = V;
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Ident;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_' || Text[Pos] == '-' || Text[Pos] == '\''))
        Ident.push_back(Text[Pos++]);
      T.Kind = Tok::Ident;
      T.Text = std::move(Ident);
      return T;
    }
    return makeError(strformat("parse: unexpected character '%c' at %zu",
                               C, T.Pos));
  }

  const std::string &Text;
  size_t Pos = 0;
};

/// The parser proper. Binder names are tracked in a scope stack and
/// resolved to de Bruijn indices at use sites.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Result<PropPtr> prop();
  Result<CondPtr> cond();
  Result<lf::TermPtr> term();
  Result<lf::LFTypePtr> type();
  Result<lf::KindPtr> kind();
  Result<ProofPtr> proof();

  Status expectEnd() {
    if (peek().Kind != Tok::End)
      return makeError(strformat("parse: trailing input at %zu",
                                 peek().Pos));
    return Status::success();
  }

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Index + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token take() { return Tokens[Index++]; }
  bool eat(Tok Kind) {
    if (peek().Kind != Kind)
      return false;
    ++Index;
    return true;
  }
  Status expect(Tok Kind, const char *What) {
    if (!eat(Kind))
      return makeError(strformat("parse: expected %s at %zu", What,
                                 peek().Pos));
    return Status::success();
  }
  bool peekIdent(const char *S, size_t Ahead = 0) const {
    return peek(Ahead).Kind == Tok::Ident && peek(Ahead).Text == S;
  }

  /// Resolve an identifier: a bound variable (innermost first) or a
  /// constant name.
  std::optional<unsigned> lookupVar(const std::string &Name) const {
    for (size_t I = Scope.size(); I-- > 0;)
      if (Scope[I] == Name)
        return static_cast<unsigned>(Scope.size() - 1 - I);
    return std::nullopt;
  }

  Result<lf::ConstName> constName();
  Result<PropPtr> propUnary();
  Result<CondPtr> condUnary();
  Result<lf::TermPtr> termAtom();
  Result<ProofPtr> proofAtom();
  Result<ProofPtr> parenProof(const char *What);
  Result<std::string> binderName(const char *What);

  std::vector<Token> Tokens;
  size_t Index = 0;
  std::vector<std::string> Scope;
};

Result<lf::ConstName> Parser::constName() {
  if (peek().Kind == Tok::Global) {
    std::string Txid = take().Text;
    TC_TRY(expect(Tok::Dot, "'.' after global reference"));
    if (peek().Kind != Tok::Ident)
      return makeError("parse: expected label after global reference");
    return lf::ConstName::global(Txid, take().Text);
  }
  if (peek().Kind != Tok::Ident)
    return makeError(strformat("parse: expected name at %zu", peek().Pos));
  std::string First = take().Text;
  if (First == "this") {
    TC_TRY(expect(Tok::Dot, "'.' after this"));
    if (peek().Kind != Tok::Ident)
      return makeError("parse: expected label after this.");
    return lf::ConstName::local(take().Text);
  }
  // plus/pf is the one builtin with a slash in its name.
  if (First == "plus" && peek().Kind == Tok::Slash &&
      peekIdent("pf", 1)) {
    take();
    take();
    return lf::ConstName::builtin("plus/pf");
  }
  return lf::ConstName::builtin(First);
}

Result<lf::TermPtr> Parser::termAtom() {
  switch (peek().Kind) {
  case Tok::Number:
    return lf::nat(take().Number);
  case Tok::Principal:
    return lf::principal(take().Text);
  case Tok::LParen: {
    take();
    if (peek().Kind == Tok::Lambda) {
      take();
      if (peek().Kind != Tok::Ident)
        return makeError("parse: expected binder name after \\");
      std::string Name = take().Text;
      TC_TRY(expect(Tok::Colon, "':' in lambda"));
      TC_UNWRAP(Annot, type());
      TC_TRY(expect(Tok::Dot, "'.' in lambda"));
      Scope.push_back(Name);
      auto Body = term();
      Scope.pop_back();
      if (!Body)
        return Body.takeError();
      TC_TRY(expect(Tok::RParen, "')' closing lambda"));
      return lf::lam(Annot, *Body);
    }
    TC_UNWRAP(Inner, term());
    TC_TRY(expect(Tok::RParen, "')'"));
    return Inner;
  }
  case Tok::Ident:
  case Tok::Global: {
    // A bound variable or a constant. `this` always starts a qualified
    // name, and `plus/...` the builtin proof constant; anything else in
    // scope is a variable (even when a '.' follows, e.g. at the end of
    // a quantifier domain).
    if (peek().Kind == Tok::Ident && peek().Text != "this" &&
        !(peek().Text == "plus" && peek(1).Kind == Tok::Slash)) {
      if (auto Var = lookupVar(peek().Text)) {
        take();
        return lf::var(*Var);
      }
    }
    TC_UNWRAP(Name, constName());
    return lf::constant(Name);
  }
  default:
    return makeError(strformat("parse: expected a term at %zu",
                               peek().Pos));
  }
}

Result<lf::TermPtr> Parser::term() {
  TC_UNWRAP(Head, termAtom());
  lf::TermPtr Out = Head;
  // Application: juxtaposition, left associative, while a term can
  // start.
  while (true) {
    Tok K = peek().Kind;
    if (K != Tok::Number && K != Tok::Principal && K != Tok::LParen &&
        K != Tok::Ident && K != Tok::Global)
      break;
    // An identifier that is a keyword boundary should stop application;
    // no prop keywords appear in term position in practice.
    TC_UNWRAP(Arg, termAtom());
    Out = lf::app(Out, Arg);
  }
  return Out;
}

Result<lf::LFTypePtr> Parser::type() {
  if (peekIdent("Pi")) {
    take();
    if (peek().Kind != Tok::Ident)
      return makeError("parse: expected binder name after Pi");
    std::string Name = take().Text;
    TC_TRY(expect(Tok::Colon, "':' in Pi"));
    TC_UNWRAP(Dom, type());
    TC_TRY(expect(Tok::Dot, "'.' in Pi"));
    Scope.push_back(Name);
    auto Cod = type();
    Scope.pop_back();
    if (!Cod)
      return Cod.takeError();
    return lf::tPi(Dom, *Cod);
  }
  if (peek().Kind == Tok::LParen) {
    take();
    TC_UNWRAP(Inner, type());
    TC_TRY(expect(Tok::RParen, "')'"));
    return Inner;
  }
  if (peekIdent("time")) {
    take();
    return lf::timeType();
  }
  TC_UNWRAP(Name, constName());
  lf::LFTypePtr Out = lf::tConst(Name);
  // Family application.
  while (true) {
    Tok K = peek().Kind;
    if (K != Tok::Number && K != Tok::Principal && K != Tok::LParen &&
        K != Tok::Ident && K != Tok::Global)
      break;
    TC_UNWRAP(Arg, termAtom());
    Out = lf::tApp(Out, Arg);
  }
  return Out;
}

Result<lf::KindPtr> Parser::kind() {
  if (peekIdent("type")) {
    take();
    return lf::kType();
  }
  if (peekIdent("prop")) {
    take();
    return lf::kProp();
  }
  if (peekIdent("Pi")) {
    take();
    if (peek().Kind != Tok::Ident)
      return makeError("parse: expected binder name after Pi");
    std::string Name = take().Text;
    TC_TRY(expect(Tok::Colon, "':' in Pi"));
    TC_UNWRAP(Dom, type());
    TC_TRY(expect(Tok::Dot, "'.' in Pi kind"));
    Scope.push_back(Name);
    auto Cod = kind();
    Scope.pop_back();
    if (!Cod)
      return Cod.takeError();
    return lf::kPi(Dom, *Cod);
  }
  return makeError(strformat("parse: expected a kind at %zu", peek().Pos));
}

Result<CondPtr> Parser::condUnary() {
  if (eat(Tok::Not)) {
    TC_UNWRAP(Inner, condUnary());
    return cNot(Inner);
  }
  if (peek().Kind == Tok::LParen) {
    take();
    TC_UNWRAP(Inner, cond());
    TC_TRY(expect(Tok::RParen, "')'"));
    return Inner;
  }
  if (peekIdent("true")) {
    take();
    return cTrue();
  }
  if (peekIdent("before")) {
    take();
    TC_TRY(expect(Tok::LParen, "'(' after before"));
    TC_UNWRAP(Time, term());
    TC_TRY(expect(Tok::RParen, "')'"));
    return cBefore(Time);
  }
  if (peekIdent("spent")) {
    take();
    TC_TRY(expect(Tok::LParen, "'(' after spent"));
    if (peek().Kind != Tok::Global)
      return makeError("parse: spent() needs @txid");
    std::string Txid = take().Text;
    TC_TRY(expect(Tok::Dot, "'.' in spent"));
    if (peek().Kind != Tok::Number)
      return makeError("parse: spent() needs an output index");
    uint32_t Idx = static_cast<uint32_t>(take().Number);
    TC_TRY(expect(Tok::RParen, "')'"));
    return cSpent(Txid, Idx);
  }
  return makeError(strformat("parse: expected a condition at %zu",
                             peek().Pos));
}

Result<CondPtr> Parser::cond() {
  TC_UNWRAP(Left, condUnary());
  CondPtr Out = Left;
  while (eat(Tok::AndAnd)) {
    TC_UNWRAP(Right, condUnary());
    Out = cAnd(Out, Right);
  }
  return Out;
}

Result<PropPtr> Parser::propUnary() {
  if (eat(Tok::Bang)) {
    TC_UNWRAP(Inner, propUnary());
    return pBang(Inner);
  }
  if (peek().Kind == Tok::LAngle) {
    take();
    TC_UNWRAP(Who, term());
    TC_TRY(expect(Tok::RAngle, "'>' closing affirmation"));
    TC_UNWRAP(Inner, propUnary());
    return pSays(Who, Inner);
  }
  if (peekIdent("forall") || peekIdent("exists")) {
    bool IsForall = take().Text == "forall";
    if (peek().Kind != Tok::Ident)
      return makeError("parse: expected binder name after quantifier");
    std::string Name = take().Text;
    TC_TRY(expect(Tok::Colon, "':' in quantifier"));
    TC_UNWRAP(QType, type());
    TC_TRY(expect(Tok::Dot, "'.' in quantifier"));
    Scope.push_back(Name);
    auto Body = prop();
    Scope.pop_back();
    if (!Body)
      return Body.takeError();
    return IsForall ? pForall(QType, *Body) : pExists(QType, *Body);
  }
  if (peekIdent("if")) {
    take();
    TC_TRY(expect(Tok::LParen, "'(' after if"));
    TC_UNWRAP(Phi, cond());
    TC_TRY(expect(Tok::Comma, "',' in if"));
    TC_UNWRAP(Body, prop());
    TC_TRY(expect(Tok::RParen, "')'"));
    return pIf(Phi, Body);
  }
  if (peekIdent("receipt")) {
    take();
    TC_TRY(expect(Tok::LParen, "'(' after receipt"));
    // receipt(n ->> K) | receipt(A ->> K) | receipt(A/n ->> K).
    PropPtr Body;
    uint64_t Amount = 0;
    if (peek().Kind == Tok::Number && peek(1).Kind == Tok::Arrow) {
      Amount = take().Number;
    } else {
      TC_UNWRAP(Inner, prop());
      Body = Inner;
      if (eat(Tok::Slash)) {
        if (peek().Kind != Tok::Number)
          return makeError("parse: expected amount after '/' in receipt");
        Amount = take().Number;
      }
    }
    TC_TRY(expect(Tok::Arrow, "'->>' in receipt"));
    TC_UNWRAP(Who, term());
    TC_TRY(expect(Tok::RParen, "')'"));
    return pReceipt(Body, Amount, Who);
  }
  if (peek().Kind == Tok::Number) {
    if (peek().Number == 0) {
      take();
      return pZero();
    }
    if (peek().Number == 1) {
      take();
      return pOne();
    }
    return makeError(strformat("parse: bare number at %zu is not a "
                               "proposition",
                               peek().Pos));
  }
  if (peek().Kind == Tok::LParen) {
    take();
    TC_UNWRAP(Inner, prop());
    TC_TRY(expect(Tok::RParen, "')'"));
    return Inner;
  }
  // An atom: family application of kind prop.
  TC_UNWRAP(Name, constName());
  lf::LFTypePtr Head = lf::tConst(Name);
  while (true) {
    Tok K = peek().Kind;
    if (K != Tok::Number && K != Tok::Principal && K != Tok::LParen &&
        K != Tok::Ident && K != Tok::Global)
      break;
    // Numbers 0/1 here are term arguments (atoms are applied), fine.
    // Identifiers that resolve as bound vars become variables.
    TC_UNWRAP(Arg, termAtom());
    Head = lf::tApp(Head, Arg);
  }
  return pAtom(Head);
}

Result<PropPtr> Parser::prop() {
  TC_UNWRAP(First, propUnary());
  // One multiplicative/additive operator per chain; right associative.
  Tok Op = peek().Kind;
  if (Op == Tok::Tensor || Op == Tok::With || Op == Tok::Plus) {
    std::vector<PropPtr> Parts{First};
    while (eat(Op)) {
      TC_UNWRAP(Next, propUnary());
      Parts.push_back(Next);
    }
    if (peek().Kind == Tok::Tensor || peek().Kind == Tok::With ||
        peek().Kind == Tok::Plus)
      return makeError(strformat("parse: mixed connectives need "
                                 "parentheses at %zu",
                                 peek().Pos));
    PropPtr Out = Parts.back();
    for (size_t I = Parts.size() - 1; I-- > 0;) {
      switch (Op) {
      case Tok::Tensor:
        Out = pTensor(Parts[I], Out);
        break;
      case Tok::With:
        Out = pWith(Parts[I], Out);
        break;
      default:
        Out = pPlus(Parts[I], Out);
        break;
      }
    }
    First = Out;
  }
  if (eat(Tok::Lolli)) {
    TC_UNWRAP(Rest, prop());
    return pLolli(First, Rest);
  }
  return First;
}

Result<std::string> Parser::binderName(const char *What) {
  if (peek().Kind != Tok::Ident)
    return makeError(strformat("parse: expected %s name at %zu", What,
                               peek().Pos));
  return take().Text;
}

/// A parenthesized proof. The prop-level tensor operator lexes the
/// three characters `(x)` as one token, so in proof position that token
/// *is* the parenthesized variable x.
Result<ProofPtr> Parser::parenProof(const char *What) {
  if (eat(Tok::Tensor))
    return mVar("x");
  TC_TRY(expect(Tok::LParen, What));
  TC_UNWRAP(Body, proof());
  TC_TRY(expect(Tok::RParen, "')'"));
  return Body;
}

Result<ProofPtr> Parser::proofAtom() {
  if (eat(Tok::Tensor))
    return mVar("x"); // `(x)`: see parenProof.
  // Keyword-introduced forms.
  if (peekIdent("fst") || peekIdent("snd")) {
    bool IsFst = take().Text == "fst";
    TC_UNWRAP(Inner, proofAtom());
    return IsFst ? mWithFst(Inner) : mWithSnd(Inner);
  }
  if (peekIdent("inl") || peekIdent("inr")) {
    bool IsInl = take().Text == "inl";
    TC_TRY(expect(Tok::LBracket, "'[' after inl/inr"));
    TC_UNWRAP(Other, prop());
    TC_TRY(expect(Tok::RBracket, "']'"));
    TC_UNWRAP(Inner, proofAtom());
    return IsInl ? mInl(Other, Inner) : mInr(Other, Inner);
  }
  if (peekIdent("abort")) {
    take();
    TC_TRY(expect(Tok::LBracket, "'[' after abort"));
    TC_UNWRAP(Goal, prop());
    TC_TRY(expect(Tok::RBracket, "']'"));
    TC_UNWRAP(Inner, proofAtom());
    return mAbort(Goal, Inner);
  }
  if (peekIdent("pack")) {
    take();
    TC_TRY(expect(Tok::LBracket, "'[' after pack"));
    TC_UNWRAP(Ex, prop());
    TC_TRY(expect(Tok::RBracket, "']'"));
    TC_TRY(expect(Tok::LParen, "'(' in pack"));
    TC_UNWRAP(Witness, term());
    TC_TRY(expect(Tok::Comma, "',' in pack"));
    TC_UNWRAP(Body, proof());
    TC_TRY(expect(Tok::RParen, "')'"));
    return mPack(Ex, Witness, Body);
  }
  if (peekIdent("sayreturn")) {
    take();
    TC_TRY(expect(Tok::LBracket, "'[' after sayreturn"));
    TC_UNWRAP(Who, term());
    TC_TRY(expect(Tok::RBracket, "']'"));
    TC_UNWRAP(Body, parenProof("'(' in sayreturn"));
    return mSayReturn(Who, Body);
  }
  if (peekIdent("assert")) {
    take();
    bool Persistent = eat(Tok::Bang);
    TC_TRY(expect(Tok::LParen, "'(' in assert"));
    if (peek().Kind != Tok::Principal)
      return makeError("parse: assert needs a K:<hex40> principal");
    std::string KHash = take().Text;
    TC_TRY(expect(Tok::Comma, "',' in assert"));
    TC_UNWRAP(A, prop());
    TC_TRY(expect(Tok::RParen, "')'"));
    return Persistent ? mAssertBang(KHash, A, Bytes{})
                      : mAssert(KHash, A, Bytes{});
  }
  if (peekIdent("ifreturn") || peekIdent("ifweaken")) {
    bool IsReturn = take().Text == "ifreturn";
    TC_TRY(expect(Tok::LBracket, "'[' after ifreturn/ifweaken"));
    TC_UNWRAP(Phi, cond());
    TC_TRY(expect(Tok::RBracket, "']'"));
    TC_UNWRAP(Body, parenProof("'(' after the condition"));
    return IsReturn ? mIfReturn(Phi, Body) : mIfWeaken(Phi, Body);
  }
  if (peekIdent("if") && peek(1).Kind == Tok::Slash &&
      peekIdent("say", 2)) {
    take();
    take();
    take();
    TC_UNWRAP(Body, parenProof("'(' in if/say"));
    return mIfSay(Body);
  }

  if (eat(Tok::Bang)) {
    TC_UNWRAP(Inner, proofAtom());
    return mBang(Inner);
  }
  if (peek().Kind == Tok::LAngle) {
    take();
    TC_UNWRAP(L, proof());
    TC_TRY(expect(Tok::Comma, "',' in with-pair"));
    TC_UNWRAP(R, proof());
    TC_TRY(expect(Tok::RAngle, "'>' closing with-pair"));
    return mWithPair(L, R);
  }
  if (peek().Kind == Tok::LParen) {
    take();
    if (eat(Tok::RParen))
      return mOne();
    TC_UNWRAP(First, proof());
    if (eat(Tok::Comma)) {
      TC_UNWRAP(Second, proof());
      TC_TRY(expect(Tok::RParen, "')' closing tensor pair"));
      return mTensorPair(First, Second);
    }
    TC_TRY(expect(Tok::RParen, "')'"));
    return First;
  }
  if (peek().Kind == Tok::Global ||
      (peek().Kind == Tok::Ident && peek().Text == "this")) {
    TC_UNWRAP(Name, constName());
    return mConst(Name);
  }
  if (peek().Kind == Tok::Ident)
    return mVar(take().Text);
  return makeError(strformat("parse: expected a proof term at %zu",
                             peek().Pos));
}

Result<ProofPtr> Parser::proof() {
  if (peek().Kind == Tok::Lambda) {
    take();
    TC_UNWRAP(Name, binderName("lambda binder"));
    TC_TRY(expect(Tok::Colon, "':' in lambda"));
    TC_UNWRAP(Dom, prop());
    TC_TRY(expect(Tok::Dot, "'.' in lambda"));
    TC_UNWRAP(Body, proof());
    return mLam(Name, Dom, Body);
  }
  if (peekIdent("all")) {
    take();
    TC_UNWRAP(Name, binderName("all binder"));
    TC_TRY(expect(Tok::Colon, "':' in all"));
    TC_UNWRAP(QType, type());
    TC_TRY(expect(Tok::Dot, "'.' in all"));
    Scope.push_back(Name);
    auto Body = proof();
    Scope.pop_back();
    if (!Body)
      return Body.takeError();
    return mAllIntro(QType, *Body);
  }
  if (peekIdent("let")) {
    take();
    if (eat(Tok::Bang)) {
      TC_UNWRAP(X, binderName("let-bang binder"));
      TC_TRY(expect(Tok::Equals, "'=' in let"));
      TC_UNWRAP(Of, proof());
      if (!peekIdent("in"))
        return makeError("parse: expected 'in' in let");
      take();
      TC_UNWRAP(Body, proof());
      return mBangLet(X, Of, Body);
    }
    TC_TRY(expect(Tok::LParen, "'(' in let"));
    if (eat(Tok::RParen)) {
      TC_TRY(expect(Tok::Equals, "'=' in let"));
      TC_UNWRAP(Of, proof());
      if (!peekIdent("in"))
        return makeError("parse: expected 'in' in let");
      take();
      TC_UNWRAP(Body, proof());
      return mOneLet(Of, Body);
    }
    TC_UNWRAP(X, binderName("let binder"));
    TC_TRY(expect(Tok::Comma, "',' in let"));
    TC_UNWRAP(Y, binderName("let binder"));
    TC_TRY(expect(Tok::RParen, "')' in let"));
    TC_TRY(expect(Tok::Equals, "'=' in let"));
    TC_UNWRAP(Of, proof());
    if (!peekIdent("in"))
      return makeError("parse: expected 'in' in let");
    take();
    TC_UNWRAP(Body, proof());
    return mTensorLet(X, Y, Of, Body);
  }
  if (peekIdent("unpack")) {
    take();
    TC_TRY(expect(Tok::LParen, "'(' in unpack"));
    TC_UNWRAP(U, binderName("witness binder"));
    TC_TRY(expect(Tok::Comma, "',' in unpack"));
    TC_UNWRAP(X, binderName("unpack binder"));
    TC_TRY(expect(Tok::RParen, "')' in unpack"));
    TC_TRY(expect(Tok::Equals, "'=' in unpack"));
    TC_UNWRAP(Of, proof());
    if (!peekIdent("in"))
      return makeError("parse: expected 'in' in unpack");
    take();
    Scope.push_back(U);
    auto Body = proof();
    Scope.pop_back();
    if (!Body)
      return Body.takeError();
    return mUnpack(X, Of, *Body);
  }
  if (peekIdent("case")) {
    take();
    TC_UNWRAP(Of, proof());
    if (!peekIdent("of"))
      return makeError("parse: expected 'of' in case");
    take();
    if (!peekIdent("inl"))
      return makeError("parse: expected 'inl' branch");
    take();
    TC_UNWRAP(X, binderName("case binder"));
    TC_TRY(expect(Tok::CaseArrow, "'->' in case"));
    TC_UNWRAP(Left, proof());
    TC_TRY(expect(Tok::Pipe, "'|' between case branches"));
    if (!peekIdent("inr"))
      return makeError("parse: expected 'inr' branch");
    take();
    TC_UNWRAP(Y, binderName("case binder"));
    TC_TRY(expect(Tok::CaseArrow, "'->' in case"));
    TC_UNWRAP(Right, proof());
    return mCase(Of, X, Left, Y, Right);
  }
  if (peekIdent("saybind") || peekIdent("ifbind")) {
    bool IsSay = take().Text == "saybind";
    TC_UNWRAP(X, binderName("bind binder"));
    TC_TRY(expect(Tok::BindArrow, "'<-' in bind"));
    TC_UNWRAP(Of, proof());
    if (!peekIdent("in"))
      return makeError("parse: expected 'in' in bind");
    take();
    TC_UNWRAP(Body, proof());
    return IsSay ? mSayBind(X, Of, Body) : mIfBind(X, Of, Body);
  }

  // Application chain: atoms and index applications.
  TC_UNWRAP(Head, proofAtom());
  ProofPtr Out = Head;
  while (true) {
    if (peek().Kind == Tok::LBracket) {
      take();
      TC_UNWRAP(Index, term());
      TC_TRY(expect(Tok::RBracket, "']' after index argument"));
      Out = mAllApp(Out, Index);
      continue;
    }
    Tok K = peek().Kind;
    bool Starts = K == Tok::LParen || K == Tok::LAngle || K == Tok::Bang ||
                  K == Tok::Global || K == Tok::Tensor ||
                  (K == Tok::Ident && !peekIdent("in") && !peekIdent("of"));
    if (!Starts)
      break;
    TC_UNWRAP(Arg, proofAtom());
    Out = mApp(Out, Arg);
  }
  return Out;
}

template <typename T, typename F>
Result<T> parseWith(const std::string &Text, F &&Run) {
  Lexer Lex(Text);
  TC_UNWRAP(Tokens, Lex.run());
  Parser P(std::move(Tokens));
  TC_UNWRAP(Out, Run(P));
  TC_TRY(P.expectEnd());
  return Out;
}

} // namespace

Result<PropPtr> parseProp(const std::string &Text) {
  return parseWith<PropPtr>(Text, [](Parser &P) { return P.prop(); });
}

Result<CondPtr> parseCond(const std::string &Text) {
  return parseWith<CondPtr>(Text, [](Parser &P) { return P.cond(); });
}

Result<lf::TermPtr> parseTerm(const std::string &Text) {
  return parseWith<lf::TermPtr>(Text, [](Parser &P) { return P.term(); });
}

Result<lf::LFTypePtr> parseType(const std::string &Text) {
  return parseWith<lf::LFTypePtr>(Text, [](Parser &P) { return P.type(); });
}

Result<lf::KindPtr> parseKind(const std::string &Text) {
  return parseWith<lf::KindPtr>(Text, [](Parser &P) { return P.kind(); });
}

Result<ProofPtr> parseProof(const std::string &Text) {
  return parseWith<ProofPtr>(Text, [](Parser &P) { return P.proof(); });
}

} // namespace logic
} // namespace typecoin
