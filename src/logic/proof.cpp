//===- logic/proof.cpp - Proof terms -------------------------------------------===//

#include "logic/proof.h"

namespace typecoin {
namespace logic {

static std::shared_ptr<Proof> make(Proof::Tag Kind) {
  return std::make_shared<Proof>(Kind);
}

ProofPtr mVar(std::string Name) {
  auto P = make(Proof::Tag::Var);
  P->Name = std::move(Name);
  return P;
}

ProofPtr mConst(lf::ConstName Name) {
  auto P = make(Proof::Tag::Const);
  P->CName = std::move(Name);
  return P;
}

ProofPtr mLam(std::string X, PropPtr Dom, ProofPtr Body) {
  auto P = make(Proof::Tag::Lam);
  P->X = std::move(X);
  P->Annot = std::move(Dom);
  P->A = std::move(Body);
  return P;
}

ProofPtr mApp(ProofPtr Fn, ProofPtr Arg) {
  auto P = make(Proof::Tag::App);
  P->A = std::move(Fn);
  P->B = std::move(Arg);
  return P;
}

ProofPtr mApps(ProofPtr Fn, const std::vector<ProofPtr> &Args) {
  ProofPtr Out = std::move(Fn);
  for (const ProofPtr &Arg : Args)
    Out = mApp(Out, Arg);
  return Out;
}

ProofPtr mTensorPair(ProofPtr L, ProofPtr R) {
  auto P = make(Proof::Tag::TensorPair);
  P->A = std::move(L);
  P->B = std::move(R);
  return P;
}

ProofPtr mTensorLet(std::string X, std::string Y, ProofPtr Of, ProofPtr In) {
  auto P = make(Proof::Tag::TensorLet);
  P->X = std::move(X);
  P->Y = std::move(Y);
  P->A = std::move(Of);
  P->B = std::move(In);
  return P;
}

ProofPtr mWithPair(ProofPtr L, ProofPtr R) {
  auto P = make(Proof::Tag::WithPair);
  P->A = std::move(L);
  P->B = std::move(R);
  return P;
}

ProofPtr mWithFst(ProofPtr M) {
  auto P = make(Proof::Tag::WithFst);
  P->A = std::move(M);
  return P;
}

ProofPtr mWithSnd(ProofPtr M) {
  auto P = make(Proof::Tag::WithSnd);
  P->A = std::move(M);
  return P;
}

ProofPtr mInl(PropPtr RightSide, ProofPtr M) {
  auto P = make(Proof::Tag::Inl);
  P->Annot = std::move(RightSide);
  P->A = std::move(M);
  return P;
}

ProofPtr mInr(PropPtr LeftSide, ProofPtr M) {
  auto P = make(Proof::Tag::Inr);
  P->Annot = std::move(LeftSide);
  P->A = std::move(M);
  return P;
}

ProofPtr mCase(ProofPtr Of, std::string X, ProofPtr Left, std::string Y,
               ProofPtr Right) {
  auto P = make(Proof::Tag::Case);
  P->A = std::move(Of);
  P->X = std::move(X);
  P->B = std::move(Left);
  P->Y = std::move(Y);
  P->C = std::move(Right);
  return P;
}

ProofPtr mAbort(PropPtr Goal, ProofPtr M) {
  auto P = make(Proof::Tag::Abort);
  P->Annot = std::move(Goal);
  P->A = std::move(M);
  return P;
}

ProofPtr mOne() {
  static const ProofPtr P = make(Proof::Tag::OneIntro);
  return P;
}

ProofPtr mOneLet(ProofPtr Of, ProofPtr In) {
  auto P = make(Proof::Tag::OneLet);
  P->A = std::move(Of);
  P->B = std::move(In);
  return P;
}

ProofPtr mBang(ProofPtr M) {
  auto P = make(Proof::Tag::BangIntro);
  P->A = std::move(M);
  return P;
}

ProofPtr mBangLet(std::string X, ProofPtr Of, ProofPtr In) {
  auto P = make(Proof::Tag::BangLet);
  P->X = std::move(X);
  P->A = std::move(Of);
  P->B = std::move(In);
  return P;
}

ProofPtr mAllIntro(lf::LFTypePtr Dom, ProofPtr Body) {
  auto P = make(Proof::Tag::AllIntro);
  P->QAnnot = std::move(Dom);
  P->A = std::move(Body);
  return P;
}

ProofPtr mAllApp(ProofPtr M, lf::TermPtr Index) {
  auto P = make(Proof::Tag::AllApp);
  P->A = std::move(M);
  P->ITerm = std::move(Index);
  return P;
}

ProofPtr mAllApps(ProofPtr M, const std::vector<lf::TermPtr> &Indexes) {
  ProofPtr Out = std::move(M);
  for (const lf::TermPtr &I : Indexes)
    Out = mAllApp(Out, I);
  return Out;
}

ProofPtr mPack(PropPtr Existential, lf::TermPtr Witness, ProofPtr M) {
  auto P = make(Proof::Tag::ExPack);
  P->Annot = std::move(Existential);
  P->ITerm = std::move(Witness);
  P->A = std::move(M);
  return P;
}

ProofPtr mUnpack(std::string X, ProofPtr Of, ProofPtr In) {
  auto P = make(Proof::Tag::ExUnpack);
  P->X = std::move(X);
  P->A = std::move(Of);
  P->B = std::move(In);
  return P;
}

ProofPtr mSayReturn(lf::TermPtr Who, ProofPtr M) {
  auto P = make(Proof::Tag::SayReturn);
  P->Who = std::move(Who);
  P->A = std::move(M);
  return P;
}

ProofPtr mSayBind(std::string X, ProofPtr Of, ProofPtr In) {
  auto P = make(Proof::Tag::SayBind);
  P->X = std::move(X);
  P->A = std::move(Of);
  P->B = std::move(In);
  return P;
}

static ProofPtr makeAssert(Proof::Tag Kind, std::string KHash, PropPtr A,
                           Bytes Sig) {
  auto P = make(Kind);
  P->KHash = std::move(KHash);
  P->AProp = std::move(A);
  P->Sig = std::move(Sig);
  return P;
}

ProofPtr mAssert(std::string KHash, PropPtr A, Bytes Sig) {
  return makeAssert(Proof::Tag::Assert, std::move(KHash), std::move(A),
                    std::move(Sig));
}

ProofPtr mAssertBang(std::string KHash, PropPtr A, Bytes Sig) {
  return makeAssert(Proof::Tag::AssertBang, std::move(KHash), std::move(A),
                    std::move(Sig));
}

ProofPtr mIfReturn(CondPtr Phi, ProofPtr M) {
  auto P = make(Proof::Tag::IfReturn);
  P->Phi = std::move(Phi);
  P->A = std::move(M);
  return P;
}

ProofPtr mIfBind(std::string X, ProofPtr Of, ProofPtr In) {
  auto P = make(Proof::Tag::IfBind);
  P->X = std::move(X);
  P->A = std::move(Of);
  P->B = std::move(In);
  return P;
}

ProofPtr mIfWeaken(CondPtr Phi, ProofPtr M) {
  auto P = make(Proof::Tag::IfWeaken);
  P->Phi = std::move(Phi);
  P->A = std::move(M);
  return P;
}

ProofPtr mIfSay(ProofPtr M) {
  auto P = make(Proof::Tag::IfSay);
  P->A = std::move(M);
  return P;
}

// Resolution --------------------------------------------------------------------

ProofPtr resolveProof(const ProofPtr &M, const std::string &Txid) {
  if (!M)
    return M;
  auto P = std::make_shared<Proof>(*M);
  P->A = resolveProof(M->A, Txid);
  P->B = resolveProof(M->B, Txid);
  P->C = resolveProof(M->C, Txid);
  if (M->CName.isLocal())
    P->CName = M->CName.resolved(Txid);
  if (M->Annot)
    P->Annot = resolveProp(M->Annot, Txid);
  if (M->QAnnot)
    P->QAnnot = lf::resolveType(M->QAnnot, Txid);
  if (M->ITerm)
    P->ITerm = lf::resolveTerm(M->ITerm, Txid);
  if (M->Who)
    P->Who = lf::resolveTerm(M->Who, Txid);
  if (M->AProp)
    P->AProp = resolveProp(M->AProp, Txid);
  return P;
}

// Printing ----------------------------------------------------------------------

std::string printProof(const ProofPtr &M) {
  switch (M->Kind) {
  case Proof::Tag::Var:
    return M->Name;
  case Proof::Tag::Const:
    return M->CName.toString();
  case Proof::Tag::Lam:
    return "\\" + M->X + ":" + printProp(M->Annot) + ". " +
           printProof(M->A);
  case Proof::Tag::App:
    return "(" + printProof(M->A) + " " + printProof(M->B) + ")";
  case Proof::Tag::TensorPair:
    return "(" + printProof(M->A) + ", " + printProof(M->B) + ")";
  case Proof::Tag::TensorLet:
    return "let (" + M->X + ", " + M->Y + ") = " + printProof(M->A) +
           " in " + printProof(M->B);
  case Proof::Tag::WithPair:
    return "<" + printProof(M->A) + ", " + printProof(M->B) + ">";
  case Proof::Tag::WithFst:
    return "fst " + printProof(M->A);
  case Proof::Tag::WithSnd:
    return "snd " + printProof(M->A);
  case Proof::Tag::Inl:
    return "inl " + printProof(M->A);
  case Proof::Tag::Inr:
    return "inr " + printProof(M->A);
  case Proof::Tag::Case:
    return "case " + printProof(M->A) + " of inl " + M->X + " -> " +
           printProof(M->B) + " | inr " + M->Y + " -> " + printProof(M->C);
  case Proof::Tag::Abort:
    return "abort " + printProof(M->A);
  case Proof::Tag::OneIntro:
    return "()";
  case Proof::Tag::OneLet:
    return "let () = " + printProof(M->A) + " in " + printProof(M->B);
  case Proof::Tag::BangIntro:
    return "!" + printProof(M->A);
  case Proof::Tag::BangLet:
    return "let !" + M->X + " = " + printProof(M->A) + " in " +
           printProof(M->B);
  case Proof::Tag::AllIntro:
    return "/\\:" + lf::printType(M->QAnnot) + ". " + printProof(M->A);
  case Proof::Tag::AllApp:
    return printProof(M->A) + " [" + lf::printTerm(M->ITerm) + "]";
  case Proof::Tag::ExPack:
    return "pack(" + lf::printTerm(M->ITerm) + ", " + printProof(M->A) +
           ")";
  case Proof::Tag::ExUnpack:
    return "let (_, " + M->X + ") = unpack " + printProof(M->A) + " in " +
           printProof(M->B);
  case Proof::Tag::SayReturn:
    return "sayreturn_" + lf::printTerm(M->Who) + "(" + printProof(M->A) +
           ")";
  case Proof::Tag::SayBind:
    return "saybind " + M->X + " <- " + printProof(M->A) + " in " +
           printProof(M->B);
  case Proof::Tag::Assert:
    return "assert(K:" + M->KHash.substr(0, 8) + ", " +
           printProp(M->AProp) + ")";
  case Proof::Tag::AssertBang:
    return "assert!(K:" + M->KHash.substr(0, 8) + ", " +
           printProp(M->AProp) + ")";
  case Proof::Tag::IfReturn:
    return "ifreturn_" + printCond(M->Phi) + "(" + printProof(M->A) + ")";
  case Proof::Tag::IfBind:
    return "ifbind " + M->X + " <- " + printProof(M->A) + " in " +
           printProof(M->B);
  case Proof::Tag::IfWeaken:
    return "ifweaken_" + printCond(M->Phi) + "(" + printProof(M->A) + ")";
  case Proof::Tag::IfSay:
    return "if/say(" + printProof(M->A) + ")";
  }
  return "?";
}

// Serialization --------------------------------------------------------------------

void writeProof(Writer &W, const ProofPtr &M) {
  W.writeU8(static_cast<uint8_t>(M->Kind));
  auto WriteChild = [&](const ProofPtr &P) { writeProof(W, P); };
  switch (M->Kind) {
  case Proof::Tag::Var:
    W.writeString(M->Name);
    break;
  case Proof::Tag::Const:
    lf::writeConstName(W, M->CName);
    break;
  case Proof::Tag::Lam:
    W.writeString(M->X);
    writeProp(W, M->Annot);
    WriteChild(M->A);
    break;
  case Proof::Tag::App:
  case Proof::Tag::TensorPair:
  case Proof::Tag::WithPair:
    WriteChild(M->A);
    WriteChild(M->B);
    break;
  case Proof::Tag::TensorLet:
    W.writeString(M->X);
    W.writeString(M->Y);
    WriteChild(M->A);
    WriteChild(M->B);
    break;
  case Proof::Tag::WithFst:
  case Proof::Tag::WithSnd:
  case Proof::Tag::BangIntro:
  case Proof::Tag::IfSay:
    WriteChild(M->A);
    break;
  case Proof::Tag::Inl:
  case Proof::Tag::Inr:
    writeProp(W, M->Annot);
    WriteChild(M->A);
    break;
  case Proof::Tag::Case:
    WriteChild(M->A);
    W.writeString(M->X);
    WriteChild(M->B);
    W.writeString(M->Y);
    WriteChild(M->C);
    break;
  case Proof::Tag::Abort:
    writeProp(W, M->Annot);
    WriteChild(M->A);
    break;
  case Proof::Tag::OneIntro:
    break;
  case Proof::Tag::OneLet:
    WriteChild(M->A);
    WriteChild(M->B);
    break;
  case Proof::Tag::BangLet:
  case Proof::Tag::SayBind:
  case Proof::Tag::IfBind:
  case Proof::Tag::ExUnpack:
    W.writeString(M->X);
    WriteChild(M->A);
    WriteChild(M->B);
    break;
  case Proof::Tag::AllIntro:
    lf::writeType(W, M->QAnnot);
    WriteChild(M->A);
    break;
  case Proof::Tag::AllApp:
    WriteChild(M->A);
    lf::writeTerm(W, M->ITerm);
    break;
  case Proof::Tag::ExPack:
    writeProp(W, M->Annot);
    lf::writeTerm(W, M->ITerm);
    WriteChild(M->A);
    break;
  case Proof::Tag::SayReturn:
    lf::writeTerm(W, M->Who);
    WriteChild(M->A);
    break;
  case Proof::Tag::Assert:
  case Proof::Tag::AssertBang:
    W.writeString(M->KHash);
    writeProp(W, M->AProp);
    W.writeVarBytes(M->Sig);
    break;
  case Proof::Tag::IfReturn:
  case Proof::Tag::IfWeaken:
    writeCond(W, M->Phi);
    WriteChild(M->A);
    break;
  }
}

Result<ProofPtr> readProof(Reader &R) {
  TC_UNWRAP(TagByte, R.readU8());
  auto Tag = static_cast<Proof::Tag>(TagByte);
  switch (Tag) {
  case Proof::Tag::Var: {
    TC_UNWRAP(Name, R.readString());
    return mVar(std::move(Name));
  }
  case Proof::Tag::Const: {
    TC_UNWRAP(Name, lf::readConstName(R));
    return mConst(Name);
  }
  case Proof::Tag::Lam: {
    TC_UNWRAP(X, R.readString());
    TC_UNWRAP(Dom, readProp(R));
    TC_UNWRAP(Body, readProof(R));
    return mLam(std::move(X), std::move(Dom), std::move(Body));
  }
  case Proof::Tag::App:
  case Proof::Tag::TensorPair:
  case Proof::Tag::WithPair: {
    TC_UNWRAP(A, readProof(R));
    TC_UNWRAP(B, readProof(R));
    if (Tag == Proof::Tag::App)
      return mApp(std::move(A), std::move(B));
    if (Tag == Proof::Tag::TensorPair)
      return mTensorPair(std::move(A), std::move(B));
    return mWithPair(std::move(A), std::move(B));
  }
  case Proof::Tag::TensorLet: {
    TC_UNWRAP(X, R.readString());
    TC_UNWRAP(Y, R.readString());
    TC_UNWRAP(A, readProof(R));
    TC_UNWRAP(B, readProof(R));
    return mTensorLet(std::move(X), std::move(Y), std::move(A), std::move(B));
  }
  case Proof::Tag::WithFst:
  case Proof::Tag::WithSnd:
  case Proof::Tag::BangIntro:
  case Proof::Tag::IfSay: {
    TC_UNWRAP(A, readProof(R));
    if (Tag == Proof::Tag::WithFst)
      return mWithFst(std::move(A));
    if (Tag == Proof::Tag::WithSnd)
      return mWithSnd(std::move(A));
    if (Tag == Proof::Tag::BangIntro)
      return mBang(std::move(A));
    return mIfSay(std::move(A));
  }
  case Proof::Tag::Inl:
  case Proof::Tag::Inr: {
    TC_UNWRAP(Annot, readProp(R));
    TC_UNWRAP(A, readProof(R));
    return Tag == Proof::Tag::Inl ? mInl(std::move(Annot), std::move(A))
                                  : mInr(std::move(Annot), std::move(A));
  }
  case Proof::Tag::Case: {
    TC_UNWRAP(A, readProof(R));
    TC_UNWRAP(X, R.readString());
    TC_UNWRAP(B, readProof(R));
    TC_UNWRAP(Y, R.readString());
    TC_UNWRAP(C, readProof(R));
    return mCase(std::move(A), std::move(X), std::move(B), std::move(Y),
                 std::move(C));
  }
  case Proof::Tag::Abort: {
    TC_UNWRAP(Annot, readProp(R));
    TC_UNWRAP(A, readProof(R));
    return mAbort(std::move(Annot), std::move(A));
  }
  case Proof::Tag::OneIntro:
    return mOne();
  case Proof::Tag::OneLet: {
    TC_UNWRAP(A, readProof(R));
    TC_UNWRAP(B, readProof(R));
    return mOneLet(std::move(A), std::move(B));
  }
  case Proof::Tag::BangLet:
  case Proof::Tag::SayBind:
  case Proof::Tag::IfBind:
  case Proof::Tag::ExUnpack: {
    TC_UNWRAP(X, R.readString());
    TC_UNWRAP(A, readProof(R));
    TC_UNWRAP(B, readProof(R));
    if (Tag == Proof::Tag::BangLet)
      return mBangLet(std::move(X), std::move(A), std::move(B));
    if (Tag == Proof::Tag::SayBind)
      return mSayBind(std::move(X), std::move(A), std::move(B));
    if (Tag == Proof::Tag::IfBind)
      return mIfBind(std::move(X), std::move(A), std::move(B));
    return mUnpack(std::move(X), std::move(A), std::move(B));
  }
  case Proof::Tag::AllIntro: {
    TC_UNWRAP(Dom, lf::readType(R));
    TC_UNWRAP(A, readProof(R));
    return mAllIntro(std::move(Dom), std::move(A));
  }
  case Proof::Tag::AllApp: {
    TC_UNWRAP(A, readProof(R));
    TC_UNWRAP(ITerm, lf::readTerm(R));
    return mAllApp(std::move(A), std::move(ITerm));
  }
  case Proof::Tag::ExPack: {
    TC_UNWRAP(Annot, readProp(R));
    TC_UNWRAP(ITerm, lf::readTerm(R));
    TC_UNWRAP(A, readProof(R));
    return mPack(std::move(Annot), std::move(ITerm), std::move(A));
  }
  case Proof::Tag::SayReturn: {
    TC_UNWRAP(Who, lf::readTerm(R));
    TC_UNWRAP(A, readProof(R));
    return mSayReturn(std::move(Who), std::move(A));
  }
  case Proof::Tag::Assert:
  case Proof::Tag::AssertBang: {
    TC_UNWRAP(KHash, R.readString());
    TC_UNWRAP(AProp, readProp(R));
    TC_UNWRAP(Sig, R.readVarBytes());
    return Tag == Proof::Tag::Assert
               ? mAssert(std::move(KHash), std::move(AProp), std::move(Sig))
               : mAssertBang(std::move(KHash), std::move(AProp),
                             std::move(Sig));
  }
  case Proof::Tag::IfReturn:
  case Proof::Tag::IfWeaken: {
    TC_UNWRAP(Phi, readCond(R));
    TC_UNWRAP(A, readProof(R));
    return Tag == Proof::Tag::IfReturn
               ? mIfReturn(std::move(Phi), std::move(A))
               : mIfWeaken(std::move(Phi), std::move(A));
  }
  }
  return makeError("logic: bad proof tag");
}

} // namespace logic
} // namespace typecoin
