//===- logic/proof.h - Proof terms --------------------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proof terms: "standard affine logic" plus the affirmation monad
/// (`sayreturn`, `saybind`, `assert`, `assert!`) of Figure 1 and the
/// conditional monad (`ifreturn`, `ifbind`, `ifweaken`, `if/say`) of
/// Figure 2. Proof variables are named (alpha-conversion is irrelevant
/// because proofs are only checked, never compared); index variables
/// inside propositions remain de Bruijn.
///
/// Enough annotations are carried that every form is type-*inferable*,
/// keeping the checker syntax-directed.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LOGIC_PROOF_H
#define TYPECOIN_LOGIC_PROOF_H

#include "logic/basis.h"

namespace typecoin {
namespace logic {

struct Proof;
using ProofPtr = std::shared_ptr<const Proof>;

/// A proof term.
struct Proof {
  enum class Tag {
    Var,        ///< x
    Const,      ///< basis proposition constant
    Lam,        ///< \x:A. M              : A -o B
    App,        ///< M N
    TensorPair, ///< (M, N)               : A (x) B
    TensorLet,  ///< let (x, y) = M in N
    WithPair,   ///< <M, N>               : A & B
    WithFst,    ///< fst M
    WithSnd,    ///< snd M
    Inl,        ///< inl[B] M             : A (+) B
    Inr,        ///< inr[A] M             : A (+) B
    Case,       ///< case M of inl x -> N1 | inr y -> N2
    Abort,      ///< abort[C] M           : C, from M : 0
    OneIntro,   ///< ()                   : 1
    OneLet,     ///< let () = M in N
    BangIntro,  ///< !M                   : !A   (empty affine context)
    BangLet,    ///< let !x = M in N      (x persistent)
    AllIntro,   ///< /\u:tau. M           : forall u:tau. A
    AllApp,     ///< M [m]
    ExPack,     ///< pack[exists u:tau.A](m, M)
    ExUnpack,   ///< let (u, x) = unpack M in N
    SayReturn,  ///< sayreturn_m(M)       : <m> A
    SayBind,    ///< saybind x <- M1 in M2
    Assert,     ///< assert(K, A, sig)    : <K> A  (affine; signs the tx)
    AssertBang, ///< assert!(K, A, sig)   : <K> A  (persistent; signs A)
    IfReturn,   ///< ifreturn_phi(M)      : if(phi, A)
    IfBind,     ///< ifbind x <- M1 in M2
    IfWeaken,   ///< ifweaken_phi(M)      : if(phi, A), phi => phi'
    IfSay,      ///< if/say(M)            : if(phi, <m>A) from <m>if(phi,A)
  };

  Tag Kind;
  std::string Name;        ///< Var; binder name for Lam.
  std::string X, Y;        ///< Binder names (lets, case, binds, unpack).
  lf::ConstName CName;     ///< Const.
  ProofPtr A, B, C;        ///< Children.
  PropPtr Annot;           ///< Lam domain; Inl/Inr other side; Abort goal;
                           ///< ExPack full existential.
  lf::LFTypePtr QAnnot;    ///< AllIntro domain.
  lf::TermPtr ITerm;       ///< AllApp argument; ExPack witness.
  lf::TermPtr Who;         ///< SayReturn principal.
  std::string KHash;       ///< Assert/AssertBang: principal literal (hex).
  PropPtr AProp;           ///< Assert/AssertBang: the affirmed proposition.
  Bytes Sig;               ///< Assert/AssertBang: signature blob.
  CondPtr Phi;             ///< IfReturn/IfWeaken.

  explicit Proof(Tag Kind) : Kind(Kind) {}
};

// Constructors ----------------------------------------------------------------

ProofPtr mVar(std::string Name);
ProofPtr mConst(lf::ConstName Name);
ProofPtr mLam(std::string X, PropPtr Dom, ProofPtr Body);
ProofPtr mApp(ProofPtr Fn, ProofPtr Arg);
/// Left-nested application.
ProofPtr mApps(ProofPtr Fn, const std::vector<ProofPtr> &Args);
ProofPtr mTensorPair(ProofPtr L, ProofPtr R);
ProofPtr mTensorLet(std::string X, std::string Y, ProofPtr Of, ProofPtr In);
ProofPtr mWithPair(ProofPtr L, ProofPtr R);
ProofPtr mWithFst(ProofPtr M);
ProofPtr mWithSnd(ProofPtr M);
ProofPtr mInl(PropPtr RightSide, ProofPtr M);
ProofPtr mInr(PropPtr LeftSide, ProofPtr M);
ProofPtr mCase(ProofPtr Of, std::string X, ProofPtr Left, std::string Y,
               ProofPtr Right);
ProofPtr mAbort(PropPtr Goal, ProofPtr M);
ProofPtr mOne();
ProofPtr mOneLet(ProofPtr Of, ProofPtr In);
ProofPtr mBang(ProofPtr M);
ProofPtr mBangLet(std::string X, ProofPtr Of, ProofPtr In);
ProofPtr mAllIntro(lf::LFTypePtr Dom, ProofPtr Body);
ProofPtr mAllApp(ProofPtr M, lf::TermPtr Index);
/// Apply a chain of index arguments.
ProofPtr mAllApps(ProofPtr M, const std::vector<lf::TermPtr> &Indexes);
ProofPtr mPack(PropPtr Existential, lf::TermPtr Witness, ProofPtr M);
ProofPtr mUnpack(std::string X, ProofPtr Of, ProofPtr In);
ProofPtr mSayReturn(lf::TermPtr Who, ProofPtr M);
ProofPtr mSayBind(std::string X, ProofPtr Of, ProofPtr In);
ProofPtr mAssert(std::string KHash, PropPtr A, Bytes Sig);
ProofPtr mAssertBang(std::string KHash, PropPtr A, Bytes Sig);
ProofPtr mIfReturn(CondPtr Phi, ProofPtr M);
ProofPtr mIfBind(std::string X, ProofPtr Of, ProofPtr In);
ProofPtr mIfWeaken(CondPtr Phi, ProofPtr M);
ProofPtr mIfSay(ProofPtr M);

// Operations -------------------------------------------------------------------

/// `this` resolution inside annotations and asserted propositions.
ProofPtr resolveProof(const ProofPtr &M, const std::string &Txid);

std::string printProof(const ProofPtr &M);

void writeProof(Writer &W, const ProofPtr &M);
Result<ProofPtr> readProof(Reader &R);

} // namespace logic
} // namespace typecoin

#endif // TYPECOIN_LOGIC_PROOF_H
