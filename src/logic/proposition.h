//===- logic/proposition.h - Affine propositions -----------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Propositions of the Typecoin logic (Figure 1 plus the Figure 2
/// conditional):
///
///   A ::= tau m...      (atomic: a prop-kinded family fully applied)
///       | A -o A | A & A | A (x) A | A (+) A | 0 | 1 | !A
///       | forall u:tau. A | exists u:tau. A
///       | <m> A          (affirmation: "the principal m says A")
///       | receipt(A/n ->> m)
///       | if(phi, A)
///
/// Dual intuitionistic *affine* logic: weakening is admissible
/// ("we have elected to embrace affinity", Section 4), and top is
/// omitted as meaningless.
///
/// Quantifiers bind LF index variables (de Bruijn, shared numbering with
/// the terms inside atoms and conditions).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LOGIC_PROPOSITION_H
#define TYPECOIN_LOGIC_PROPOSITION_H

#include "crypto/sha256.h"
#include "lf/serialize.h"
#include "lf/typecheck.h"
#include "logic/condition.h"

#include <atomic>

namespace typecoin {
namespace logic {

struct Prop;
using PropPtr = std::shared_ptr<const Prop>;

/// A proposition.
struct Prop {
  enum class Tag {
    Atom,   ///< prop-kinded LF family application
    Tensor, ///< A (x) B
    Lolli,  ///< A -o B
    With,   ///< A & B
    Plus,   ///< A (+) B
    Zero,   ///< 0
    One,    ///< 1
    Bang,   ///< !A
    Forall, ///< forall u:tau. A
    Exists, ///< exists u:tau. A
    Says,   ///< <m> A
    Receipt,///< receipt(A/n ->> K)
    If,     ///< if(phi, A)
  };

  Tag Kind;
  lf::LFTypePtr Atom;    ///< Atom: the applied family.
  PropPtr L, R;          ///< Binary connectives.
  PropPtr Body;          ///< Bang/Forall/Exists/Says/If; Receipt (may be null).
  lf::LFTypePtr QType;   ///< Forall/Exists: the domain.
  lf::TermPtr Who;       ///< Says / Receipt: the principal term.
  uint64_t Amount = 0;   ///< Receipt: satoshi amount (0 if pure-type).
  CondPtr Cond;          ///< If.

  /// Per-node digest memo (see propDigest): 0 = unset, 2 = DigestCache
  /// valid. Written once under a striped lock, published with a release
  /// store; readers acquire-load the flag before touching the cache.
  /// Living on the node (rather than in a global pointer-keyed map)
  /// makes the memo immune to pointer reuse and lets hash-consed nodes
  /// share one computed digest process-wide.
  mutable std::atomic<uint8_t> DigestState{0};
  mutable crypto::Digest32 DigestCache{};

  explicit Prop(Tag Kind) : Kind(Kind) {}
};

// Constructors ---------------------------------------------------------------

PropPtr pAtom(lf::LFTypePtr Applied);
/// Atom from a head constant and argument spine.
PropPtr pAtom(lf::ConstName Head, const std::vector<lf::TermPtr> &Args);
PropPtr pTensor(PropPtr L, PropPtr R);
/// Right-nested tensor of a list; empty list gives 1.
PropPtr pTensorAll(const std::vector<PropPtr> &Ps);
PropPtr pLolli(PropPtr L, PropPtr R);
PropPtr pWith(PropPtr L, PropPtr R);
PropPtr pPlus(PropPtr L, PropPtr R);
PropPtr pZero();
PropPtr pOne();
PropPtr pBang(PropPtr Body);
PropPtr pForall(lf::LFTypePtr QType, PropPtr Body);
PropPtr pExists(lf::LFTypePtr QType, PropPtr Body);
PropPtr pSays(lf::TermPtr Who, PropPtr Body);
/// receipt(A/n ->> K); \p Body may be null for a pure-bitcoin receipt.
PropPtr pReceipt(PropPtr Body, uint64_t Amount, lf::TermPtr Who);
PropPtr pIf(CondPtr C, PropPtr Body);

// Operations -----------------------------------------------------------------

PropPtr shiftProp(const PropPtr &P, int Delta, unsigned Cutoff = 0);
PropPtr substProp(const PropPtr &P, unsigned Index, const lf::TermPtr &Value);
bool propHasFreeVar(const PropPtr &P, unsigned Index);

/// Equality up to normalization of embedded index terms.
bool propEqual(const PropPtr &A, const PropPtr &B);

/// `this` resolution (chain formation).
PropPtr resolveProp(const PropPtr &P, const std::string &Txid);
bool propHasLocal(const PropPtr &P);

std::string printProp(const PropPtr &P);

/// Serialize a proposition. Shared subtrees (DAG nodes referenced more
/// than once) are serialized once and re-appended as bulk byte copies —
/// the wire format is unchanged (byte-identical to a naive tree walk),
/// but the recursion cost is paid per *unique* node.
void writeProp(Writer &W, const PropPtr &P);
/// Parse a proposition. Repeated byte spans decode to *shared* nodes
/// (pointer-equal PropPtrs), so a DAG serialized by writeProp comes back
/// as a DAG and downstream propEqual/propDigest hit their fast paths.
Result<PropPtr> readProp(Reader &R);

/// Content digest of a proposition: SHA-256 of its canonical
/// serialization, memoized directly on the node (Prop::DigestCache), so
/// a hit is an atomic flag read plus a 32-byte copy — O(1) regardless of
/// proposition depth once any holder of the same node has computed it.
/// Used by the typecoin checker/state fingerprint in place of
/// re-printing/re-serializing the full proposition.
crypto::Digest32 propDigest(const PropPtr &P);

/// Proposition formation: Sigma; Psi |- A prop (Appendix A).
Status checkProp(const lf::Signature &Sig, const lf::Context &Psi,
                 const PropPtr &P);

/// Proposition freshness (Appendix A): restricted forms — non-local
/// atoms, 0, affirmations, receipts — must appear only to the left of a
/// lolli or in quantifier domains, so "restricted forms can be consumed
/// but not produced."
Status checkPropFresh(const PropPtr &P);
Status checkTypeFresh(const lf::LFTypePtr &T);

} // namespace logic
} // namespace typecoin

#endif // TYPECOIN_LOGIC_PROPOSITION_H
