//===- logic/check.h - The affine proof checker ------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proof-term typing judgement of Appendix A:
///
///   T; Sigma; Psi; Gamma; Delta |- M : A
///
/// with persistent context Gamma, affine context Delta (hypotheses used
/// *at most once* — weakening is embraced, Section 4), the affirmation
/// monad rules, and the conditional monad rules. The transaction T
/// enters only through the affine `assert` rule ("linear affirmations
/// must be signed relative to the transaction, in order to prevent
/// replay attacks"), abstracted here as an \ref AffirmationVerifier so
/// the logic stays independent of the Bitcoin substrate.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LOGIC_CHECK_H
#define TYPECOIN_LOGIC_CHECK_H

#include "logic/proof.h"

namespace typecoin {
namespace logic {

/// Verifies the digital signatures inside `assert` / `assert!` proof
/// terms. The typecoin layer implements this against real ECDSA keys and
/// the enclosing transaction; unit tests may use \ref TrustingVerifier.
class AffirmationVerifier {
public:
  virtual ~AffirmationVerifier() = default;
  /// `assert(K, A, sig)`: sig signs the enclosing transaction plus A.
  virtual Status verifyAffine(const std::string &KHash, const PropPtr &A,
                              const Bytes &Sig) const = 0;
  /// `assert!(K, A, sig)`: sig signs A alone (liftable out of the
  /// transaction).
  virtual Status verifyPersistent(const std::string &KHash,
                                  const PropPtr &A,
                                  const Bytes &Sig) const = 0;
};

/// Accepts every affirmation — for tests of the pure logic.
class TrustingVerifier : public AffirmationVerifier {
public:
  Status verifyAffine(const std::string &, const PropPtr &,
                      const Bytes &) const override {
    return Status::success();
  }
  Status verifyPersistent(const std::string &, const PropPtr &,
                          const Bytes &) const override {
    return Status::success();
  }
};

/// Checker knobs.
struct CheckOptions {
  /// Ablation (paper Section 4, "Affinity"): when true, weakening is
  /// rejected — every affine hypothesis must be consumed exactly once.
  /// The paper argues this discipline is futile on a blockchain (`A -o 1`
  /// rules and discarded keys destroy resources anyway), which tests
  /// demonstrate.
  bool StrictLinear = false;
};

/// A named affine or persistent hypothesis.
struct Hypothesis {
  std::string Name;
  PropPtr P;
};

/// The proof checker. Stateless across calls; cheap to construct.
class ProofChecker {
public:
  ProofChecker(const Basis &Sigma, const AffirmationVerifier &Affirm,
               CheckOptions Opts = CheckOptions())
      : Sigma(Sigma), Affirm(Affirm), Opts(Opts) {}

  /// Infer the proposition proved by \p M under the given hypotheses.
  Result<PropPtr> infer(const ProofPtr &M,
                        const std::vector<Hypothesis> &Affine = {},
                        const std::vector<Hypothesis> &Persistent = {});

  /// Check \p M against \p Goal.
  Status check(const ProofPtr &M, const PropPtr &Goal,
               const std::vector<Hypothesis> &Affine = {},
               const std::vector<Hypothesis> &Persistent = {});

private:
  const Basis &Sigma;
  const AffirmationVerifier &Affirm;
  CheckOptions Opts;
};

} // namespace logic
} // namespace typecoin

#endif // TYPECOIN_LOGIC_CHECK_H
