//===- logic/parse.h - Surface-syntax parser ---------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the Figure 1 / Figure 2 surface
/// syntax, so vocabularies and contracts can be authored as text:
///
///   prop  ::= prop1 [-o prop]                        (right assoc)
///   prop1 ::= prop2 { ((x) | & | (+)) prop2 }        (one operator per
///                                                     chain, right assoc;
///                                                     parenthesize to mix)
///   prop2 ::= !prop2 | <term> prop2 | forall x:ty. prop
///           | exists x:ty. prop | if(cond, prop)
///           | receipt(prop[/n] ->> term) | receipt(n ->> term)
///           | 0 | 1 | (prop) | name term...
///   cond  ::= cond1 { /\ cond1 }
///   cond1 ::= ~cond1 | true | before(term) | spent(txid.n) | (cond)
///   term  ::= atomic-term... (application, left assoc)
///   atomic-term ::= x | name | number | K:hex40 | (\x:ty. term) | (term)
///   ty    ::= nat | principal | time | name term... | Pi x:ty. ty
///   name  ::= this.label | label (builtin) | @hex64.label (global)
///
/// Binders use names; the parser resolves them to de Bruijn indices.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LOGIC_PARSE_H
#define TYPECOIN_LOGIC_PARSE_H

#include "logic/proof.h"
#include "logic/proposition.h"

namespace typecoin {
namespace logic {

/// Parse a proposition. Fails with a message naming the offending
/// position on malformed input; trailing garbage is an error.
Result<PropPtr> parseProp(const std::string &Text);

/// Parse a condition.
Result<CondPtr> parseCond(const std::string &Text);

/// Parse an LF index term.
Result<lf::TermPtr> parseTerm(const std::string &Text);

/// Parse an LF type family.
Result<lf::LFTypePtr> parseType(const std::string &Text);

/// Parse an LF kind (`type`, `prop`, `Pi x:ty. kind`).
Result<lf::KindPtr> parseKind(const std::string &Text);

/// Parse a proof term. Authoring grammar (keywords disambiguate the
/// forms the pretty-printer abbreviates):
///
///   M ::= \x:A. M                          lolli intro
///       | all x:ty. M | M [m]              forall intro / elim
///       | let (x, y) = M in M              tensor elim
///       | let () = M in M                  one elim
///       | let !x = M in M                  bang elim
///       | unpack (u, x) = M in M           exists elim
///       | case M of inl x -> M | inr y -> M
///       | saybind x <- M in M | ifbind x <- M in M
///       | fst M' | snd M' | !M'
///       | inl [A] M' | inr [A] M' | abort [A] M'
///       | pack [A] (m, M)
///       | sayreturn [m] (M)
///       | assert (K:hex, A) | assert! (K:hex, A)   (unsigned; attach
///                                                   real blobs in code)
///       | ifreturn [phi] (M) | ifweaken [phi] (M) | if/say (M)
///       | () | x | name | (M, M) | <M, M> | (M) | M M'
Result<ProofPtr> parseProof(const std::string &Text);

} // namespace logic
} // namespace typecoin

#endif // TYPECOIN_LOGIC_PARSE_H
