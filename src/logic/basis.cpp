//===- logic/basis.cpp - Typecoin bases ----------------------------------------===//

#include "logic/basis.h"

namespace typecoin {
namespace logic {

Status Basis::declareProp(const lf::ConstName &Name, PropPtr A) {
  if (contains(Name))
    return makeError("basis: redeclaration of " + Name.toString());
  Props[Name] = std::move(A);
  PropOrder.push_back(Name);
  return Status::success();
}

const PropPtr *Basis::lookupProp(const lf::ConstName &Name) const {
  auto It = Props.find(Name);
  return It == Props.end() ? nullptr : &It->second;
}

Status Basis::checkFormedAgainst(const Basis &Global) const {
  // Later declarations may reference earlier ones: accumulate.
  lf::Signature Combined = Global.lfSig();
  for (const lf::ConstName &Name : LF.order()) {
    if (!Name.isLocal())
      return makeError("basis: declaration " + Name.toString() +
                       " is not a local (this.*) constant");
    const lf::Declaration *D = LF.lookup(Name);
    if (D->Kind == lf::Declaration::Sort::Family) {
      TC_TRY(lf::checkKind(Combined, {}, D->FamilyKind));
      TC_TRY(Combined.declareFamily(Name, D->FamilyKind));
    } else {
      TC_UNWRAP(K, lf::kindOfType(Combined, {}, D->TermType));
      if (K->KindTag != lf::Kind::Tag::Type)
        return makeError("basis: term constant " + Name.toString() +
                         " declared at non-type family");
      TC_TRY(Combined.declareTerm(Name, D->TermType));
    }
  }
  for (const lf::ConstName &Name : PropOrder) {
    if (!Name.isLocal())
      return makeError("basis: declaration " + Name.toString() +
                       " is not a local (this.*) constant");
    TC_TRY(checkProp(Combined, {}, Props.at(Name)));
  }
  return Status::success();
}

Status Basis::checkFresh() const {
  for (const lf::ConstName &Name : LF.order()) {
    const lf::Declaration *D = LF.lookup(Name);
    if (D->Kind == lf::Declaration::Sort::Family)
      continue; // Kind-sorted declarations are unconditionally fresh.
    if (auto S = checkTypeFresh(D->TermType); !S)
      return S.takeError().withContext("basis: declaration " +
                                       Name.toString());
  }
  for (const lf::ConstName &Name : PropOrder) {
    if (auto S = checkPropFresh(Props.at(Name)); !S)
      return S.takeError().withContext("basis: declaration " +
                                       Name.toString());
  }
  return Status::success();
}

Basis Basis::resolved(const std::string &Txid) const {
  Basis Out;
  Out.LF = LF.resolved(Txid);
  for (const lf::ConstName &Name : PropOrder) {
    lf::ConstName NewName = Name.resolved(Txid);
    Out.Props[NewName] = resolveProp(Props.at(Name), Txid);
    Out.PropOrder.push_back(NewName);
  }
  return Out;
}

Status Basis::append(const Basis &Other) {
  TC_TRY(LF.append(Other.LF));
  for (const lf::ConstName &Name : Other.PropOrder) {
    if (Props.count(Name))
      return makeError("basis: collision appending " + Name.toString());
    Props[Name] = Other.Props.at(Name);
    PropOrder.push_back(Name);
  }
  return Status::success();
}

void Basis::serialize(Writer &W) const {
  lf::writeSignature(W, LF);
  W.writeCompactSize(PropOrder.size());
  for (const lf::ConstName &Name : PropOrder) {
    lf::writeConstName(W, Name);
    writeProp(W, Props.at(Name));
  }
}

Result<Basis> Basis::deserialize(Reader &R) {
  Basis Out;
  TC_UNWRAP(Sig, lf::readSignature(R));
  Out.LF = std::move(Sig);
  TC_UNWRAP(Count, R.readCompactSize());
  if (Count > 100000)
    return makeError("basis: implausible prop-constant count");
  for (uint64_t I = 0; I < Count; ++I) {
    TC_UNWRAP(Name, lf::readConstName(R));
    TC_UNWRAP(A, readProp(R));
    TC_TRY(Out.declareProp(Name, A));
  }
  return Out;
}

} // namespace logic
} // namespace typecoin
