//===- logic/intern.cpp - Hash-consing arena for propositions -------------===//

#include "logic/intern.h"

#include "lf/intern.h"

namespace typecoin {
namespace lf {

// One-level key for propositions: leaf fields by value, children (LF
// nodes, subprops, and conditions) by pointer. Conditions are keyed by
// identity only — two separately built but equal conditions keep their
// props distinct, which merely costs a missed dedup, never soundness.
template <> struct InternTraits<logic::Prop> {
  static uint64_t hash(const logic::Prop &P) {
    uint64_t H = internMix(0xc3c3, static_cast<uint64_t>(P.Kind));
    H = internMixPtr(H, P.Atom.get());
    H = internMixPtr(H, P.L.get());
    H = internMixPtr(H, P.R.get());
    H = internMixPtr(H, P.Body.get());
    H = internMixPtr(H, P.QType.get());
    H = internMixPtr(H, P.Who.get());
    H = internMixPtr(H, P.Cond.get());
    return internMix(H, P.Amount);
  }
  static bool equal(const logic::Prop &A, const logic::Prop &B) {
    return A.Kind == B.Kind && A.Atom.get() == B.Atom.get() &&
           A.L.get() == B.L.get() && A.R.get() == B.R.get() &&
           A.Body.get() == B.Body.get() && A.QType.get() == B.QType.get() &&
           A.Who.get() == B.Who.get() && A.Cond.get() == B.Cond.get() &&
           A.Amount == B.Amount;
  }
};

} // namespace lf

namespace logic {

namespace {
lf::InternArena<Prop> &propArena() {
  static lf::InternArena<Prop> A;
  return A;
}
} // namespace

PropPtr internProp(PropPtr P) {
  if (!lf::internEnabled())
    return P;
  return propArena().intern(std::move(P));
}

size_t propArenaSize() { return propArena().size(); }

void internClearAll() {
  propArena().clear();
  lf::internClearLF();
}

} // namespace logic
} // namespace typecoin
