//===- logic/proposition.cpp - Affine propositions ---------------------------===//

#include "logic/proposition.h"

#include "logic/intern.h"

#include <cassert>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace typecoin {
namespace logic {

using lf::LFType;
using lf::LFTypePtr;
using lf::TermPtr;

// Constructors ---------------------------------------------------------------

PropPtr pAtom(LFTypePtr Applied) {
  auto P = std::make_shared<Prop>(Prop::Tag::Atom);
  P->Atom = std::move(Applied);
  return internProp(std::move(P));
}

PropPtr pAtom(lf::ConstName Head, const std::vector<TermPtr> &Args) {
  return pAtom(lf::tApps(lf::tConst(std::move(Head)), Args));
}

static PropPtr binary(Prop::Tag Kind, PropPtr L, PropPtr R) {
  auto P = std::make_shared<Prop>(Kind);
  P->L = std::move(L);
  P->R = std::move(R);
  return internProp(std::move(P));
}

PropPtr pTensor(PropPtr L, PropPtr R) {
  return binary(Prop::Tag::Tensor, std::move(L), std::move(R));
}

PropPtr pTensorAll(const std::vector<PropPtr> &Ps) {
  if (Ps.empty())
    return pOne();
  PropPtr Out = Ps.back();
  for (size_t I = Ps.size() - 1; I-- > 0;)
    Out = pTensor(Ps[I], Out);
  return Out;
}

PropPtr pLolli(PropPtr L, PropPtr R) {
  return binary(Prop::Tag::Lolli, std::move(L), std::move(R));
}

PropPtr pWith(PropPtr L, PropPtr R) {
  return binary(Prop::Tag::With, std::move(L), std::move(R));
}

PropPtr pPlus(PropPtr L, PropPtr R) {
  return binary(Prop::Tag::Plus, std::move(L), std::move(R));
}

PropPtr pZero() {
  static const PropPtr P = std::make_shared<Prop>(Prop::Tag::Zero);
  return P;
}

PropPtr pOne() {
  static const PropPtr P = std::make_shared<Prop>(Prop::Tag::One);
  return P;
}

PropPtr pBang(PropPtr Body) {
  auto P = std::make_shared<Prop>(Prop::Tag::Bang);
  P->Body = std::move(Body);
  return internProp(std::move(P));
}

PropPtr pForall(LFTypePtr QType, PropPtr Body) {
  auto P = std::make_shared<Prop>(Prop::Tag::Forall);
  P->QType = std::move(QType);
  P->Body = std::move(Body);
  return internProp(std::move(P));
}

PropPtr pExists(LFTypePtr QType, PropPtr Body) {
  auto P = std::make_shared<Prop>(Prop::Tag::Exists);
  P->QType = std::move(QType);
  P->Body = std::move(Body);
  return internProp(std::move(P));
}

PropPtr pSays(TermPtr Who, PropPtr Body) {
  auto P = std::make_shared<Prop>(Prop::Tag::Says);
  P->Who = std::move(Who);
  P->Body = std::move(Body);
  return internProp(std::move(P));
}

PropPtr pReceipt(PropPtr Body, uint64_t Amount, TermPtr Who) {
  auto P = std::make_shared<Prop>(Prop::Tag::Receipt);
  P->Body = std::move(Body);
  P->Amount = Amount;
  P->Who = std::move(Who);
  return internProp(std::move(P));
}

PropPtr pIf(CondPtr C, PropPtr Body) {
  auto P = std::make_shared<Prop>(Prop::Tag::If);
  P->Cond = std::move(C);
  P->Body = std::move(Body);
  return internProp(std::move(P));
}

// Shifting / substitution ------------------------------------------------------

PropPtr shiftProp(const PropPtr &P, int Delta, unsigned Cutoff) {
  if (Delta == 0)
    return P;
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return pAtom(lf::shiftType(P->Atom, Delta, Cutoff));
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    return binary(P->Kind, shiftProp(P->L, Delta, Cutoff),
                  shiftProp(P->R, Delta, Cutoff));
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    return P;
  case Prop::Tag::Bang:
    return pBang(shiftProp(P->Body, Delta, Cutoff));
  case Prop::Tag::Forall:
    return pForall(lf::shiftType(P->QType, Delta, Cutoff),
                   shiftProp(P->Body, Delta, Cutoff + 1));
  case Prop::Tag::Exists:
    return pExists(lf::shiftType(P->QType, Delta, Cutoff),
                   shiftProp(P->Body, Delta, Cutoff + 1));
  case Prop::Tag::Says:
    return pSays(lf::shiftTerm(P->Who, Delta, Cutoff),
                 shiftProp(P->Body, Delta, Cutoff));
  case Prop::Tag::Receipt:
    return pReceipt(P->Body ? shiftProp(P->Body, Delta, Cutoff) : nullptr,
                    P->Amount, lf::shiftTerm(P->Who, Delta, Cutoff));
  case Prop::Tag::If:
    return pIf(shiftCond(P->Cond, Delta, Cutoff),
               shiftProp(P->Body, Delta, Cutoff));
  }
  return P;
}

PropPtr substProp(const PropPtr &P, unsigned Index, const TermPtr &Value) {
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return pAtom(lf::substType(P->Atom, Index, Value));
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    return binary(P->Kind, substProp(P->L, Index, Value),
                  substProp(P->R, Index, Value));
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    return P;
  case Prop::Tag::Bang:
    return pBang(substProp(P->Body, Index, Value));
  case Prop::Tag::Forall:
    return pForall(lf::substType(P->QType, Index, Value),
                   substProp(P->Body, Index + 1, lf::shiftTerm(Value, 1)));
  case Prop::Tag::Exists:
    return pExists(lf::substType(P->QType, Index, Value),
                   substProp(P->Body, Index + 1, lf::shiftTerm(Value, 1)));
  case Prop::Tag::Says:
    return pSays(lf::substTerm(P->Who, Index, Value),
                 substProp(P->Body, Index, Value));
  case Prop::Tag::Receipt:
    return pReceipt(P->Body ? substProp(P->Body, Index, Value) : nullptr,
                    P->Amount, lf::substTerm(P->Who, Index, Value));
  case Prop::Tag::If:
    return pIf(substCond(P->Cond, Index, Value),
               substProp(P->Body, Index, Value));
  }
  return P;
}

static bool typeFree(const LFTypePtr &T, unsigned Index);

static bool termFree(const TermPtr &T, unsigned Index) {
  using lf::Term;
  switch (T->Kind) {
  case Term::Tag::Var:
    return T->VarIndex == Index;
  case Term::Tag::Const:
  case Term::Tag::Principal:
  case Term::Tag::Nat:
    return false;
  case Term::Tag::Lam:
    return typeFree(T->Annot, Index) || termFree(T->Body, Index + 1);
  case Term::Tag::App:
    return termFree(T->Fn, Index) || termFree(T->Arg, Index);
  }
  return false;
}

static bool typeFree(const LFTypePtr &T, unsigned Index) {
  switch (T->Kind) {
  case LFType::Tag::Const:
    return false;
  case LFType::Tag::App:
    return typeFree(T->Head, Index) || termFree(T->Arg, Index);
  case LFType::Tag::Pi:
    return typeFree(T->Head, Index) || typeFree(T->Cod, Index + 1);
  }
  return false;
}

bool propHasFreeVar(const PropPtr &P, unsigned Index) {
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return typeFree(P->Atom, Index);
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    return propHasFreeVar(P->L, Index) || propHasFreeVar(P->R, Index);
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    return false;
  case Prop::Tag::Bang:
    return propHasFreeVar(P->Body, Index);
  case Prop::Tag::Forall:
  case Prop::Tag::Exists:
    return typeFree(P->QType, Index) ||
           propHasFreeVar(P->Body, Index + 1);
  case Prop::Tag::Says:
    return termFree(P->Who, Index) || propHasFreeVar(P->Body, Index);
  case Prop::Tag::Receipt:
    return (P->Body && propHasFreeVar(P->Body, Index)) ||
           termFree(P->Who, Index);
  case Prop::Tag::If:
    return condHasFreeVar(P->Cond, Index) ||
           propHasFreeVar(P->Body, Index);
  }
  return false;
}

bool propEqual(const PropPtr &A, const PropPtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case Prop::Tag::Atom:
    return lf::typeEqual(A->Atom, B->Atom);
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    return propEqual(A->L, B->L) && propEqual(A->R, B->R);
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    return true;
  case Prop::Tag::Bang:
    return propEqual(A->Body, B->Body);
  case Prop::Tag::Forall:
  case Prop::Tag::Exists:
    return lf::typeEqual(A->QType, B->QType) &&
           propEqual(A->Body, B->Body);
  case Prop::Tag::Says:
    return lf::termEqual(A->Who, B->Who) && propEqual(A->Body, B->Body);
  case Prop::Tag::Receipt:
    if ((A->Body == nullptr) != (B->Body == nullptr))
      return false;
    return (!A->Body || propEqual(A->Body, B->Body)) &&
           A->Amount == B->Amount && lf::termEqual(A->Who, B->Who);
  case Prop::Tag::If:
    return condEqual(A->Cond, B->Cond) && propEqual(A->Body, B->Body);
  }
  return false;
}

PropPtr resolveProp(const PropPtr &P, const std::string &Txid) {
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return pAtom(lf::resolveType(P->Atom, Txid));
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    return binary(P->Kind, resolveProp(P->L, Txid),
                  resolveProp(P->R, Txid));
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    return P;
  case Prop::Tag::Bang:
    return pBang(resolveProp(P->Body, Txid));
  case Prop::Tag::Forall:
    return pForall(lf::resolveType(P->QType, Txid),
                   resolveProp(P->Body, Txid));
  case Prop::Tag::Exists:
    return pExists(lf::resolveType(P->QType, Txid),
                   resolveProp(P->Body, Txid));
  case Prop::Tag::Says:
    return pSays(lf::resolveTerm(P->Who, Txid), resolveProp(P->Body, Txid));
  case Prop::Tag::Receipt:
    return pReceipt(P->Body ? resolveProp(P->Body, Txid) : nullptr,
                    P->Amount, lf::resolveTerm(P->Who, Txid));
  case Prop::Tag::If:
    return pIf(P->Cond, resolveProp(P->Body, Txid));
  }
  return P;
}

bool propHasLocal(const PropPtr &P) {
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return lf::typeHasLocal(P->Atom);
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    return propHasLocal(P->L) || propHasLocal(P->R);
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    return false;
  case Prop::Tag::Bang:
    return propHasLocal(P->Body);
  case Prop::Tag::Forall:
  case Prop::Tag::Exists:
    return lf::typeHasLocal(P->QType) || propHasLocal(P->Body);
  case Prop::Tag::Says:
    return lf::termHasLocal(P->Who) || propHasLocal(P->Body);
  case Prop::Tag::Receipt:
    return (P->Body && propHasLocal(P->Body)) || lf::termHasLocal(P->Who);
  case Prop::Tag::If:
    return propHasLocal(P->Body);
  }
  return false;
}

// Printing ---------------------------------------------------------------------

static std::string printPropPrec(const PropPtr &P, int Prec) {
  auto Wrap = [&](int Needed, std::string S) {
    return Prec > Needed ? "(" + std::move(S) + ")" : std::move(S);
  };
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return lf::printType(P->Atom);
  case Prop::Tag::Tensor:
    return Wrap(2, printPropPrec(P->L, 3) + " (x) " +
                       printPropPrec(P->R, 2));
  case Prop::Tag::Lolli:
    return Wrap(1, printPropPrec(P->L, 2) + " -o " +
                       printPropPrec(P->R, 1));
  case Prop::Tag::With:
    return Wrap(2, printPropPrec(P->L, 3) + " & " + printPropPrec(P->R, 2));
  case Prop::Tag::Plus:
    return Wrap(2, printPropPrec(P->L, 3) + " (+) " +
                       printPropPrec(P->R, 2));
  case Prop::Tag::Zero:
    return "0";
  case Prop::Tag::One:
    return "1";
  case Prop::Tag::Bang:
    return "!" + printPropPrec(P->Body, 4);
  case Prop::Tag::Forall:
    return Wrap(0, "forall :" + lf::printType(P->QType) + ". " +
                       printPropPrec(P->Body, 0));
  case Prop::Tag::Exists:
    return Wrap(0, "exists :" + lf::printType(P->QType) + ". " +
                       printPropPrec(P->Body, 0));
  case Prop::Tag::Says:
    return "<" + lf::printTerm(P->Who) + "> " + printPropPrec(P->Body, 4);
  case Prop::Tag::Receipt: {
    std::string Inner;
    if (P->Body)
      Inner = printPropPrec(P->Body, 0);
    if (P->Amount) {
      if (!Inner.empty())
        Inner += "/";
      Inner += std::to_string(P->Amount);
    }
    return "receipt(" + Inner + " ->> " + lf::printTerm(P->Who) + ")";
  }
  case Prop::Tag::If:
    return "if(" + printCond(P->Cond) + ", " + printPropPrec(P->Body, 0) +
           ")";
  }
  return "?";
}

std::string printProp(const PropPtr &P) { return printPropPrec(P, 0); }

// Serialization ------------------------------------------------------------------
//
// Propositions are routinely DAGs: substitution, pTensorAll, and the
// example workloads reference the same subtree from several parents. A
// naive tree walk re-serializes (and re-parses) each shared subtree once
// per *reference*, which is exponential in DAG depth. The write side
// below remembers the byte span each shared node produced and re-appends
// it with one bulk copy; the read side remembers which spans decoded to
// which nodes and, on seeing the same bytes again, reuses the node and
// skips the span. The wire format is unchanged either way.

namespace {
/// Write-side memo: shared node -> (offset, length) of its first
/// serialization in this writer's buffer.
using WriteMemo = std::unordered_map<const Prop *, std::pair<size_t, size_t>>;

/// Read-side intern table over one buffer: spans already decoded,
/// bucketed by their first 8 bytes. Soundness: parsing is deterministic
/// and each position has exactly one parse, so if the bytes at the
/// current position equal a previously decoded span, decoding here would
/// yield an equal node consuming exactly that many bytes.
struct ReadIntern {
  struct Entry {
    size_t Off;
    size_t Len;
    PropPtr P;
  };
  std::unordered_map<uint64_t, std::vector<Entry>> Buckets;
  size_t Entries = 0;

  /// Spans shorter than this are cheaper to re-parse than to look up.
  static constexpr size_t MinSpan = 16;
  static constexpr size_t MaxPerBucket = 8;
  static constexpr size_t MaxEntries = 1 << 16;
};

uint64_t spanPrefix(const uint8_t *Data) {
  uint64_t V;
  __builtin_memcpy(&V, Data, sizeof(V));
  return V;
}
} // namespace

static void writePropMemo(Writer &W, const PropPtr &P, WriteMemo &Memo) {
  // use_count() > 1 marks nodes that can possibly recur in this walk;
  // unique nodes skip the map entirely, so pure trees pay nothing.
  bool Shared = P.use_count() > 1;
  if (Shared) {
    auto It = Memo.find(P.get());
    if (It != Memo.end()) {
      W.copyFromSelf(It->second.first, It->second.second);
      return;
    }
  }
  size_t Start = W.size();
  W.writeU8(static_cast<uint8_t>(P->Kind));
  switch (P->Kind) {
  case Prop::Tag::Atom:
    lf::writeType(W, P->Atom);
    break;
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    writePropMemo(W, P->L, Memo);
    writePropMemo(W, P->R, Memo);
    break;
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    break;
  case Prop::Tag::Bang:
    writePropMemo(W, P->Body, Memo);
    break;
  case Prop::Tag::Forall:
  case Prop::Tag::Exists:
    lf::writeType(W, P->QType);
    writePropMemo(W, P->Body, Memo);
    break;
  case Prop::Tag::Says:
    lf::writeTerm(W, P->Who);
    writePropMemo(W, P->Body, Memo);
    break;
  case Prop::Tag::Receipt:
    W.writeU8(P->Body ? 1 : 0);
    if (P->Body)
      writePropMemo(W, P->Body, Memo);
    W.writeU64(P->Amount);
    lf::writeTerm(W, P->Who);
    break;
  case Prop::Tag::If:
    writeCond(W, P->Cond);
    writePropMemo(W, P->Body, Memo);
    break;
  }
  if (Shared)
    Memo.emplace(P.get(), std::make_pair(Start, W.size() - Start));
}

void writeProp(Writer &W, const PropPtr &P) {
  WriteMemo Memo;
  writePropMemo(W, P, Memo);
}

static Result<PropPtr> readPropIntern(Reader &R, ReadIntern &Intern) {
  size_t Start = R.pos();
  if (R.remaining() >= sizeof(uint64_t)) {
    auto It = Intern.Buckets.find(spanPrefix(R.data() + Start));
    if (It != Intern.Buckets.end())
      for (const ReadIntern::Entry &E : It->second)
        if (E.Len <= R.remaining() &&
            std::memcmp(R.data() + Start, R.data() + E.Off, E.Len) == 0) {
          TC_TRY(R.skip(E.Len));
          return E.P;
        }
  }

  PropPtr Out;
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<Prop::Tag>(Tag)) {
  case Prop::Tag::Atom: {
    TC_UNWRAP(T, lf::readType(R));
    Out = pAtom(T);
    break;
  }
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus: {
    TC_UNWRAP(L, readPropIntern(R, Intern));
    TC_UNWRAP(Right, readPropIntern(R, Intern));
    Out = binary(static_cast<Prop::Tag>(Tag), L, Right);
    break;
  }
  case Prop::Tag::Zero:
    Out = pZero();
    break;
  case Prop::Tag::One:
    Out = pOne();
    break;
  case Prop::Tag::Bang: {
    TC_UNWRAP(Body, readPropIntern(R, Intern));
    Out = pBang(Body);
    break;
  }
  case Prop::Tag::Forall:
  case Prop::Tag::Exists: {
    TC_UNWRAP(QType, lf::readType(R));
    TC_UNWRAP(Body, readPropIntern(R, Intern));
    Out = static_cast<Prop::Tag>(Tag) == Prop::Tag::Forall
              ? pForall(QType, Body)
              : pExists(QType, Body);
    break;
  }
  case Prop::Tag::Says: {
    TC_UNWRAP(Who, lf::readTerm(R));
    TC_UNWRAP(Body, readPropIntern(R, Intern));
    Out = pSays(Who, Body);
    break;
  }
  case Prop::Tag::Receipt: {
    TC_UNWRAP(HasBody, R.readU8());
    PropPtr Body;
    if (HasBody) {
      TC_UNWRAP(B, readPropIntern(R, Intern));
      Body = B;
    }
    TC_UNWRAP(Amount, R.readU64());
    TC_UNWRAP(Who, lf::readTerm(R));
    Out = pReceipt(Body, Amount, Who);
    break;
  }
  case Prop::Tag::If: {
    TC_UNWRAP(C, readCond(R));
    TC_UNWRAP(Body, readPropIntern(R, Intern));
    Out = pIf(C, Body);
    break;
  }
  default:
    return makeError("logic: bad proposition tag");
  }

  size_t Len = R.pos() - Start;
  if (Len >= ReadIntern::MinSpan && Intern.Entries < ReadIntern::MaxEntries) {
    std::vector<ReadIntern::Entry> &Bucket =
        Intern.Buckets[spanPrefix(R.data() + Start)];
    if (Bucket.size() < ReadIntern::MaxPerBucket) {
      Bucket.push_back(ReadIntern::Entry{Start, Len, Out});
      ++Intern.Entries;
    }
  }
  return Out;
}

Result<PropPtr> readProp(Reader &R) {
  ReadIntern Intern;
  return readPropIntern(R, Intern);
}

crypto::Digest32 propDigest(const PropPtr &P) {
  // Per-node memo: the digest lives on the Prop itself (no global map,
  // no pointer-reuse hazard, nothing to evict). A racing recompute on
  // the same node produces the same bytes; the striped lock only
  // serializes the publish so the release-store of DigestState can
  // never expose a half-written DigestCache.
  if (P->DigestState.load(std::memory_order_acquire) == 2)
    return P->DigestCache;
  Writer W;
  writeProp(W, P);
  crypto::Digest32 D = crypto::sha256(W.buffer());
  static std::mutex Stripes[16];
  std::mutex &Mu =
      Stripes[(reinterpret_cast<uintptr_t>(P.get()) >> 4) & 15];
  std::lock_guard<std::mutex> L(Mu);
  if (P->DigestState.load(std::memory_order_relaxed) == 0) {
    P->DigestCache = D;
    P->DigestState.store(2, std::memory_order_release);
  }
  return D;
}

// Formation ---------------------------------------------------------------------

static Status checkCondFormation(const lf::Signature &Sig,
                                 const lf::Context &Psi, const CondPtr &C) {
  switch (C->Kind) {
  case Cond::Tag::True:
    return Status::success();
  case Cond::Tag::And:
    TC_TRY(checkCondFormation(Sig, Psi, C->L));
    return checkCondFormation(Sig, Psi, C->R);
  case Cond::Tag::Not:
    return checkCondFormation(Sig, Psi, C->L);
  case Cond::Tag::Before:
    return lf::checkTerm(Sig, Psi, C->Time, lf::natType());
  case Cond::Tag::Spent:
    if (C->Txid.size() != 64)
      return makeError("logic: spent() txid must be 64 hex digits");
    return Status::success();
  }
  return makeError("logic: malformed condition");
}

Status checkProp(const lf::Signature &Sig, const lf::Context &Psi,
                 const PropPtr &P) {
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return lf::checkPropAtom(Sig, Psi, P->Atom);
  case Prop::Tag::Tensor:
  case Prop::Tag::Lolli:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    TC_TRY(checkProp(Sig, Psi, P->L));
    return checkProp(Sig, Psi, P->R);
  case Prop::Tag::Zero:
  case Prop::Tag::One:
    return Status::success();
  case Prop::Tag::Bang:
    return checkProp(Sig, Psi, P->Body);
  case Prop::Tag::Forall:
  case Prop::Tag::Exists: {
    TC_UNWRAP(QKind, lf::kindOfType(Sig, Psi, P->QType));
    if (QKind->KindTag != lf::Kind::Tag::Type)
      return makeError("logic: quantifier domain must have kind type");
    lf::Context Extended = Psi;
    Extended.push_back(P->QType);
    return checkProp(Sig, Extended, P->Body);
  }
  case Prop::Tag::Says:
    TC_TRY(lf::checkTerm(Sig, Psi, P->Who, lf::principalType()));
    return checkProp(Sig, Psi, P->Body);
  case Prop::Tag::Receipt:
    if (P->Body)
      TC_TRY(checkProp(Sig, Psi, P->Body));
    if (!P->Body && P->Amount == 0)
      return makeError("logic: receipt must carry a type or an amount");
    return lf::checkTerm(Sig, Psi, P->Who, lf::principalType());
  case Prop::Tag::If:
    TC_TRY(checkCondFormation(Sig, Psi, P->Cond));
    return checkProp(Sig, Psi, P->Body);
  }
  return makeError("logic: malformed proposition");
}

// Freshness ------------------------------------------------------------------------

Status checkTypeFresh(const lf::LFTypePtr &T) {
  switch (T->Kind) {
  case LFType::Tag::Const:
    if (!T->Name.isLocal())
      return makeError("freshness: non-local constant " +
                       T->Name.toString() + " in producible position");
    return Status::success();
  case LFType::Tag::App:
    return checkTypeFresh(T->Head);
  case LFType::Tag::Pi:
    // The domain is to the left of the arrow: unrestricted.
    return checkTypeFresh(T->Cod);
  }
  return makeError("freshness: malformed type");
}

Status checkPropFresh(const PropPtr &P) {
  switch (P->Kind) {
  case Prop::Tag::Atom:
    return checkTypeFresh(P->Atom);
  case Prop::Tag::Lolli:
    // The left of a lolli is unrestricted: restricted forms may be
    // consumed there.
    return checkPropFresh(P->R);
  case Prop::Tag::Tensor:
  case Prop::Tag::With:
  case Prop::Tag::Plus:
    TC_TRY(checkPropFresh(P->L));
    return checkPropFresh(P->R);
  case Prop::Tag::Zero:
    return makeError("freshness: 0 is a restricted form");
  case Prop::Tag::One:
    return Status::success();
  case Prop::Tag::Bang:
    return checkPropFresh(P->Body);
  case Prop::Tag::Forall:
    // The quantifier domain is unrestricted, like a lolli's left side.
    return checkPropFresh(P->Body);
  case Prop::Tag::Exists:
    TC_TRY(checkTypeFresh(P->QType));
    return checkPropFresh(P->Body);
  case Prop::Tag::Says:
    return makeError("freshness: affirmations are restricted forms");
  case Prop::Tag::Receipt:
    return makeError("freshness: receipts are restricted forms");
  case Prop::Tag::If:
    return checkPropFresh(P->Body);
  }
  return makeError("freshness: malformed proposition");
}

} // namespace logic
} // namespace typecoin
