//===- lf/syntax.h - LF kinds, type families, and terms ---------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LF layer of Figure 1:
///
///   kind         k ::= type | prop | Pi u:tau. k
///   type family  tau ::= c | tau m | Pi u:tau. tau
///   index term   m ::= u | c | lambda u:tau. m | m m | K | n
///
/// "For maximum generality, we follow Simmons [2012] and use LF for our
/// index terms. ... it is convenient to isolate two particular LF types
/// (principal and nat) for special treatment" (Section 4). Following
/// Harper & Pfenning [2005] there are no family-level lambdas, and
/// atomic propositions are type families of the extra kind `prop`.
///
/// Bound variables are de Bruijn indices; all nodes are immutable and
/// shared.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LF_SYNTAX_H
#define TYPECOIN_LF_SYNTAX_H

#include "lf/names.h"
#include "support/result.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace typecoin {
namespace lf {

struct Term;
struct LFType;
struct Kind;
using TermPtr = std::shared_ptr<const Term>;
using LFTypePtr = std::shared_ptr<const LFType>;
using KindPtr = std::shared_ptr<const Kind>;

/// An LF index term.
struct Term {
  enum class Tag {
    Var,       ///< de Bruijn variable
    Const,     ///< declared or builtin constant
    Lam,       ///< lambda u:tau. m
    App,       ///< m1 m2
    Principal, ///< principal literal K (hash of a public key, hex)
    Nat,       ///< natural-number literal n
  };

  Tag Kind;
  unsigned VarIndex = 0;      ///< Var
  ConstName Name;             ///< Const
  LFTypePtr Annot;            ///< Lam: domain annotation
  TermPtr Body;               ///< Lam
  TermPtr Fn, Arg;            ///< App
  std::string PrincipalHash;  ///< Principal: 40 hex chars (HASH160)
  uint64_t NatValue = 0;      ///< Nat

  explicit Term(Tag Kind) : Kind(Kind) {}
};

/// An LF type family.
struct LFType {
  enum class Tag {
    Const, ///< family constant c
    App,   ///< tau m
    Pi,    ///< Pi u:tau1. tau2
  };

  Tag Kind;
  ConstName Name;     ///< Const
  LFTypePtr Head;     ///< App: the family being applied; Pi: the domain
  TermPtr Arg;        ///< App
  LFTypePtr Cod;      ///< Pi: the codomain (binds index 0)

  explicit LFType(Tag Kind) : Kind(Kind) {}
};

/// An LF kind; `prop` is the paper's extra base kind for atomic
/// propositions.
struct Kind {
  enum class Tag { Type, Prop, Pi };

  Tag KindTag;
  LFTypePtr Dom; ///< Pi: the domain
  KindPtr Cod;   ///< Pi: the body (binds index 0)

  explicit Kind(Tag KindTag) : KindTag(KindTag) {}
};

// Constructors -------------------------------------------------------------

TermPtr var(unsigned Index);
TermPtr constant(ConstName Name);
TermPtr lam(LFTypePtr Annot, TermPtr Body);
TermPtr app(TermPtr Fn, TermPtr Arg);
/// Left-nested application of a head to a spine.
TermPtr apps(TermPtr Head, const std::vector<TermPtr> &Args);
TermPtr principal(std::string Hash);
TermPtr nat(uint64_t Value);

LFTypePtr tConst(ConstName Name);
LFTypePtr tApp(LFTypePtr Head, TermPtr Arg);
LFTypePtr tApps(LFTypePtr Head, const std::vector<TermPtr> &Args);
LFTypePtr tPi(LFTypePtr Dom, LFTypePtr Cod);

KindPtr kType();
KindPtr kProp();
KindPtr kPi(LFTypePtr Dom, KindPtr Cod);

// Builtins ------------------------------------------------------------------

/// `nat : type`.
LFTypePtr natType();
/// `principal : type`.
LFTypePtr principalType();
/// `time` is just `nat` (paper, footnote 10); provided for readability.
LFTypePtr timeType();
/// `plus : nat -> nat -> nat -> type` — `plus N M P` is inhabited exactly
/// when N + M = P. Proofs are the builtin constant `plus/pf` applied to
/// two literals (a computational substitute for an inductive derivation;
/// see DESIGN.md).
LFTypePtr plusType(TermPtr N, TermPtr M, TermPtr P);
/// The proof term `plus/pf n m : plus n m (n+m)` for literals.
TermPtr plusProof(uint64_t N, uint64_t M);

/// Names of the builtin constants.
bool isBuiltinName(const ConstName &Name);

// Structural operations -----------------------------------------------------

/// Shift free de Bruijn indices >= Cutoff by Delta.
TermPtr shiftTerm(const TermPtr &T, int Delta, unsigned Cutoff = 0);
LFTypePtr shiftType(const LFTypePtr &T, int Delta, unsigned Cutoff = 0);
KindPtr shiftKind(const KindPtr &K, int Delta, unsigned Cutoff = 0);

/// Capture-avoiding substitution of \p Value for index \p Index.
TermPtr substTerm(const TermPtr &T, unsigned Index, const TermPtr &Value);
LFTypePtr substType(const LFTypePtr &T, unsigned Index, const TermPtr &Value);
KindPtr substKind(const KindPtr &K, unsigned Index, const TermPtr &Value);

/// Beta-normalization (fueled against malformed input; well-typed terms
/// always normalize within the budget used by the checker).
Result<TermPtr> normalizeTerm(const TermPtr &T);
Result<LFTypePtr> normalizeType(const LFTypePtr &T);

/// Structural equality after normalization (definitional equality).
bool termEqual(const TermPtr &A, const TermPtr &B);
bool typeEqual(const LFTypePtr &A, const LFTypePtr &B);
bool kindEqual(const KindPtr &A, const KindPtr &B);

/// Raw structural (syntactic) equality, no normalization.
bool termIdentical(const TermPtr &A, const TermPtr &B);
bool typeIdentical(const LFTypePtr &A, const LFTypePtr &B);

/// Rewrite `this.l` constants to `txid.l` (chain formation).
TermPtr resolveTerm(const TermPtr &T, const std::string &Txid);
LFTypePtr resolveType(const LFTypePtr &T, const std::string &Txid);
KindPtr resolveKind(const KindPtr &K, const std::string &Txid);

/// True when the term/type mentions any `this.l` constant.
bool termHasLocal(const TermPtr &T);
bool typeHasLocal(const LFTypePtr &T);

// Printing ------------------------------------------------------------------

std::string printTerm(const TermPtr &T);
std::string printType(const LFTypePtr &T);
std::string printKind(const KindPtr &K);

} // namespace lf
} // namespace typecoin

#endif // TYPECOIN_LF_SYNTAX_H
