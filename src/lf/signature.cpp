//===- lf/signature.cpp - LF signatures --------------------------------------===//

#include "lf/signature.h"

namespace typecoin {
namespace lf {

/// Lazily built declarations for the builtin constants.
static const Declaration *builtinLookup(const ConstName &Name) {
  if (Name.Kind != ConstName::Space::Builtin)
    return nullptr;
  static const std::map<std::string, Declaration> Builtins = [] {
    std::map<std::string, Declaration> M;
    Declaration Nat;
    Nat.Kind = Declaration::Sort::Family;
    Nat.FamilyKind = kType();
    M["nat"] = Nat;
    Declaration Principal = Nat;
    M["principal"] = Principal;
    Declaration Plus;
    Plus.Kind = Declaration::Sort::Family;
    Plus.FamilyKind =
        kPi(natType(), kPi(natType(), kPi(natType(), kType())));
    M["plus"] = Plus;
    // `plus/pf` has no Pi-expressible type (its result index is
    // computed); the typechecker special-cases it. We still record it so
    // `contains` works.
    Declaration PlusPf;
    PlusPf.Kind = Declaration::Sort::TermConst;
    PlusPf.TermType = nullptr;
    M["plus/pf"] = PlusPf;
    return M;
  }();
  auto It = Builtins.find(Name.Label);
  return It == Builtins.end() ? nullptr : &It->second;
}

Status Signature::declareFamily(const ConstName &Name, KindPtr K) {
  if (lookup(Name))
    return makeError("signature: redeclaration of " + Name.toString());
  Declaration D;
  D.Kind = Declaration::Sort::Family;
  D.FamilyKind = std::move(K);
  Decls[Name] = std::move(D);
  Order.push_back(Name);
  return Status::success();
}

Status Signature::declareTerm(const ConstName &Name, LFTypePtr Ty) {
  if (lookup(Name))
    return makeError("signature: redeclaration of " + Name.toString());
  Declaration D;
  D.Kind = Declaration::Sort::TermConst;
  D.TermType = std::move(Ty);
  Decls[Name] = std::move(D);
  Order.push_back(Name);
  return Status::success();
}

const Declaration *Signature::lookup(const ConstName &Name) const {
  if (const Declaration *B = builtinLookup(Name))
    return B;
  auto It = Decls.find(Name);
  return It == Decls.end() ? nullptr : &It->second;
}

Signature Signature::resolved(const std::string &Txid) const {
  Signature Out;
  for (const ConstName &Name : Order) {
    const Declaration &D = Decls.at(Name);
    ConstName NewName = Name.resolved(Txid);
    Declaration NewD;
    NewD.Kind = D.Kind;
    if (D.Kind == Declaration::Sort::Family)
      NewD.FamilyKind = resolveKind(D.FamilyKind, Txid);
    else
      NewD.TermType = resolveType(D.TermType, Txid);
    Out.Decls[NewName] = std::move(NewD);
    Out.Order.push_back(NewName);
  }
  return Out;
}

Status Signature::append(const Signature &Other) {
  for (const ConstName &Name : Other.Order) {
    if (Decls.count(Name))
      return makeError("signature: collision appending " + Name.toString());
    Decls[Name] = Other.Decls.at(Name);
    Order.push_back(Name);
  }
  return Status::success();
}

} // namespace lf
} // namespace typecoin
