//===- lf/intern.cpp - Hash-consing arena for LF terms --------------------===//

#include "lf/intern.h"

#include <atomic>
#include <cstdlib>

namespace typecoin {
namespace lf {

namespace {
// -1 = read the environment on first use; 0/1 = forced by a test.
std::atomic<int> ForcedEnabled{-1};

bool envEnabled() {
  const char *Env = std::getenv("TYPECOIN_INTERN");
  return Env && Env[0] != '\0' && Env[0] != '0';
}

InternArena<Term> &termArena() {
  static InternArena<Term> A;
  return A;
}

InternArena<LFType> &typeArena() {
  static InternArena<LFType> A;
  return A;
}
} // namespace

bool internEnabled() {
  int Forced = ForcedEnabled.load(std::memory_order_relaxed);
  if (Forced >= 0)
    return Forced != 0;
  static const bool FromEnv = envEnabled();
  return FromEnv;
}

void setInternEnabled(bool Enabled) {
  ForcedEnabled.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

TermPtr internTerm(TermPtr T) {
  if (!internEnabled())
    return T;
  return termArena().intern(std::move(T));
}

LFTypePtr internType(LFTypePtr T) {
  if (!internEnabled())
    return T;
  return typeArena().intern(std::move(T));
}

size_t termArenaSize() { return termArena().size(); }
size_t typeArenaSize() { return typeArena().size(); }

void internClearLF() {
  termArena().clear();
  typeArena().clear();
}

} // namespace lf
} // namespace typecoin
