//===- lf/intern.h - Hash-consing arena for LF terms ------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global hash-consing of LF syntax nodes (ROADMAP item 4a). Every
/// constructor in lf/syntax.cpp (and logic/proposition.cpp, via the same
/// template) funnels its freshly built node through an \ref InternArena:
/// if a structurally identical node already exists, the existing
/// `shared_ptr` is returned and the new allocation is dropped, so
/// structurally equal terms built bottom-up through the constructors are
/// *pointer*-equal and every equality/digest fast path that starts with
/// `A.get() == B.get()` fires.
///
/// Soundness contract:
///
///  * Interning is a **positive-only** accelerator. Pointer equality
///    implies structural equality (the arena never merges distinct
///    structures); pointer *in*equality implies nothing — callers always
///    keep their structural fallback. This is what makes eviction, the
///    off-by-default gate, and mixed interned/non-interned nodes all
///    trivially sound.
///  * Nodes are keyed one level deep: leaf fields by value, children by
///    pointer. Children built through the constructors are already
///    canonical, so bottom-up construction dedups whole trees.
///  * Bounded: each of the 16 shards wholesale-clears when it reaches
///    its cap (an "epoch" bump). Evicted nodes stay alive as long as
///    anyone holds them — the arena only gives up its claim to be the
///    canonical home, so later duplicates simply re-intern.
///
/// Gated by `TYPECOIN_INTERN` (off by default; \ref setInternEnabled is
/// the test override). Counters: `intern.hit`, `intern.miss`,
/// `intern.evict`, gauge `intern.size`.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LF_INTERN_H
#define TYPECOIN_LF_INTERN_H

#include "lf/syntax.h"
#include "obs/metrics.h"

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace typecoin {
namespace lf {

/// True when hash-consing is on (TYPECOIN_INTERN=1 or a test override).
bool internEnabled();
/// Test hook: force interning on/off for this process, overriding the
/// environment. Does not clear existing arena contents.
void setInternEnabled(bool Enabled);

/// FNV-1a style 64-bit mixing for intern keys.
inline uint64_t internMix(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}
inline uint64_t internMixPtr(uint64_t H, const void *P) {
  return internMix(H, reinterpret_cast<uintptr_t>(P));
}
inline uint64_t internMixStr(uint64_t H, const std::string &S) {
  for (char C : S)
    H = (H ^ static_cast<unsigned char>(C)) * 0x100000001b3ull;
  return H;
}

/// Node-type traits: a one-level hash and one-level equality (leaf
/// fields by value, children by pointer). Specialized for Term and
/// LFType here and Prop in logic/intern.cpp.
template <typename NodeT> struct InternTraits;

/// A sharded, bounded hash-consing table for `shared_ptr<const NodeT>`
/// nodes. Thread-safe: each shard is guarded by its own mutex and a
/// lookup touches exactly one shard, so there is no lock ordering to get
/// wrong and eviction (a per-shard clear) never holds two locks.
template <typename NodeT> class InternArena {
public:
  using Ptr = std::shared_ptr<const NodeT>;

  /// Return the canonical node for \p P's structure (possibly \p P
  /// itself, which then becomes canonical).
  Ptr intern(Ptr P) {
    static obs::Counter &Hits = obs::counter("intern.hit");
    static obs::Counter &Misses = obs::counter("intern.miss");
    static obs::Counter &Evicts = obs::counter("intern.evict");
    static obs::Gauge &Size = obs::gauge("intern.size");
    uint64_t H = InternTraits<NodeT>::hash(*P);
    Shard &S = Shards[(H >> 60) & (ShardCount - 1)];
    std::lock_guard<std::mutex> L(S.Mu);
    auto Range = S.Map.equal_range(H);
    for (auto It = Range.first; It != Range.second; ++It)
      if (InternTraits<NodeT>::equal(*It->second, *P)) {
        Hits.inc();
        return It->second;
      }
    Misses.inc();
    if (S.Map.size() >= MaxPerShard) {
      Evicts.inc(S.Map.size());
      Size.add(-static_cast<int64_t>(S.Map.size()));
      S.Map.clear(); // Epoch bump: this shard starts a fresh generation.
    }
    S.Map.emplace(H, P);
    Size.add(1);
    return P;
  }

  size_t size() const {
    size_t Total = 0;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      Total += S.Map.size();
    }
    return Total;
  }

  void clear() {
    static obs::Gauge &Size = obs::gauge("intern.size");
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      Size.add(-static_cast<int64_t>(S.Map.size()));
      S.Map.clear();
    }
  }

private:
  static constexpr unsigned ShardCount = 16; // Power of two.
  static constexpr size_t MaxPerShard = 1u << 14;
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_multimap<uint64_t, Ptr> Map;
  };
  Shard Shards[ShardCount];
};

template <> struct InternTraits<Term> {
  static uint64_t hash(const Term &T) {
    uint64_t H = internMix(0xa5a5, static_cast<uint64_t>(T.Kind));
    H = internMix(H, T.VarIndex);
    H = internMix(H, static_cast<uint64_t>(T.Name.Kind));
    H = internMixStr(H, T.Name.Txid);
    H = internMixStr(H, T.Name.Label);
    H = internMixPtr(H, T.Annot.get());
    H = internMixPtr(H, T.Body.get());
    H = internMixPtr(H, T.Fn.get());
    H = internMixPtr(H, T.Arg.get());
    H = internMixStr(H, T.PrincipalHash);
    return internMix(H, T.NatValue);
  }
  static bool equal(const Term &A, const Term &B) {
    return A.Kind == B.Kind && A.VarIndex == B.VarIndex && A.Name == B.Name &&
           A.Annot.get() == B.Annot.get() && A.Body.get() == B.Body.get() &&
           A.Fn.get() == B.Fn.get() && A.Arg.get() == B.Arg.get() &&
           A.PrincipalHash == B.PrincipalHash && A.NatValue == B.NatValue;
  }
};

template <> struct InternTraits<LFType> {
  static uint64_t hash(const LFType &T) {
    uint64_t H = internMix(0x5a5a, static_cast<uint64_t>(T.Kind));
    H = internMix(H, static_cast<uint64_t>(T.Name.Kind));
    H = internMixStr(H, T.Name.Txid);
    H = internMixStr(H, T.Name.Label);
    H = internMixPtr(H, T.Head.get());
    H = internMixPtr(H, T.Arg.get());
    return internMixPtr(H, T.Cod.get());
  }
  static bool equal(const LFType &A, const LFType &B) {
    return A.Kind == B.Kind && A.Name == B.Name &&
           A.Head.get() == B.Head.get() && A.Arg.get() == B.Arg.get() &&
           A.Cod.get() == B.Cod.get();
  }
};

/// Canonicalize through the process-wide Term/LFType arenas. No-ops
/// (returning \p T unchanged) when interning is disabled.
TermPtr internTerm(TermPtr T);
LFTypePtr internType(LFTypePtr T);

/// Current entry counts (tests/diagnostics).
size_t termArenaSize();
size_t typeArenaSize();
/// Drop all canonical claims (tests). Outstanding nodes stay valid.
void internClearLF();

} // namespace lf
} // namespace typecoin

#endif // TYPECOIN_LF_INTERN_H
