//===- lf/names.h - Constant names and transaction references ---*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qualified constant names. Per the paper (Section 4, "Bases"): "Every
/// constant is relative to a reference to the transaction in which the
/// constant originated. Since a transaction's identifier is not known in
/// advance, constants local to the transaction are identified using a
/// special local reference, `this`. Once the transaction enters the
/// blockchain, all its declarations are added to the global basis, with
/// `this` replaced by the transaction's identifier."
///
/// References are `this`, a transaction id (held as display hex so the
/// logic layers stay independent of the Bitcoin substrate), or the
/// builtin space for `nat`, `principal`, `plus`, ...
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LF_NAMES_H
#define TYPECOIN_LF_NAMES_H

#include <string>
#include <tuple>

namespace typecoin {
namespace lf {

/// A qualified constant name.
struct ConstName {
  enum class Space {
    Builtin, ///< Predefined by the logic (`nat`, `principal`, `plus`).
    Local,   ///< `this.label` — local to the transaction being built.
    Global,  ///< `txid.label` — fixed by a confirmed transaction.
  };

  Space Kind = Space::Builtin;
  /// Transaction id in display hex; only meaningful for Global.
  std::string Txid;
  std::string Label;

  static ConstName builtin(std::string Label) {
    return ConstName{Space::Builtin, "", std::move(Label)};
  }
  static ConstName local(std::string Label) {
    return ConstName{Space::Local, "", std::move(Label)};
  }
  static ConstName global(std::string Txid, std::string Label) {
    return ConstName{Space::Global, std::move(Txid), std::move(Label)};
  }

  bool isLocal() const { return Kind == Space::Local; }
  bool isBuiltin() const { return Kind == Space::Builtin; }

  /// The name with `this` replaced by \p NewTxid (no-op for others).
  ConstName resolved(const std::string &NewTxid) const {
    if (Kind != Space::Local)
      return *this;
    return global(NewTxid, Label);
  }

  bool operator==(const ConstName &O) const {
    return Kind == O.Kind && Txid == O.Txid && Label == O.Label;
  }
  bool operator!=(const ConstName &O) const { return !(*this == O); }
  bool operator<(const ConstName &O) const {
    return std::tie(Kind, Txid, Label) < std::tie(O.Kind, O.Txid, O.Label);
  }

  std::string toString() const {
    switch (Kind) {
    case Space::Builtin:
      return Label;
    case Space::Local:
      return "this." + Label;
    case Space::Global:
      return Txid.substr(0, 8) + "." + Label;
    }
    return Label;
  }
};

} // namespace lf
} // namespace typecoin

#endif // TYPECOIN_LF_NAMES_H
