//===- lf/signature.h - LF signatures (family/term constants) ---*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LF portion of a Typecoin basis: declarations of type-family
/// constants (`c : k`) and index-term constants (`c : tau`). The paper
/// calls the whole declaration set a *basis* "to avoid the unfortunate
/// terminological collision with digital signatures" (Section 4); the
/// proposition-level declarations (`c : A`) live one layer up in
/// `logic::Basis`, which embeds one of these.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LF_SIGNATURE_H
#define TYPECOIN_LF_SIGNATURE_H

#include "lf/syntax.h"

#include <map>
#include <vector>

namespace typecoin {
namespace lf {

/// A declaration: a type family with its kind, or a term constant with
/// its type.
struct Declaration {
  enum class Sort { Family, TermConst };
  Sort Kind = Sort::Family;
  KindPtr FamilyKind; ///< Sort::Family
  LFTypePtr TermType; ///< Sort::TermConst
};

/// An ordered set of LF declarations with by-name lookup. Builtins
/// (`nat`, `principal`, `plus`) are implicitly present.
class Signature {
public:
  /// Declare a type family `Name : K`. Fails on redeclaration.
  Status declareFamily(const ConstName &Name, KindPtr K);
  /// Declare a term constant `Name : Ty`. Fails on redeclaration.
  Status declareTerm(const ConstName &Name, LFTypePtr Ty);

  /// Look up a declaration (including builtins); null if absent.
  const Declaration *lookup(const ConstName &Name) const;

  bool contains(const ConstName &Name) const {
    return lookup(Name) != nullptr;
  }

  /// Number of explicit (non-builtin) declarations.
  size_t size() const { return Order.size(); }

  /// Explicit declarations in declaration order.
  const std::vector<ConstName> &order() const { return Order; }

  /// A copy with every `this.l` renamed to `Txid.l`, in names and in
  /// declaration bodies (chain formation, Appendix A).
  Signature resolved(const std::string &Txid) const;

  /// Append all of \p Other's declarations (fails on collisions).
  Status append(const Signature &Other);

private:
  std::map<ConstName, Declaration> Decls;
  std::vector<ConstName> Order;
};

} // namespace lf
} // namespace typecoin

#endif // TYPECOIN_LF_SIGNATURE_H
