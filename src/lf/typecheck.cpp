//===- lf/typecheck.cpp - LF typechecking ------------------------------------===//

#include "lf/typecheck.h"

#include <algorithm>

namespace typecoin {
namespace lf {

/// Look up de Bruijn index \p I in \p Psi, shifting the stored type into
/// the full context.
static Result<LFTypePtr> lookupVar(const Context &Psi, unsigned I) {
  if (I >= Psi.size())
    return makeError("lf: unbound variable #" + std::to_string(I));
  const LFTypePtr &Stored = Psi[Psi.size() - 1 - I];
  return shiftType(Stored, static_cast<int>(I) + 1);
}

Status checkKind(const Signature &Sig, const Context &Psi, const KindPtr &K) {
  switch (K->KindTag) {
  case Kind::Tag::Type:
  case Kind::Tag::Prop:
    return Status::success();
  case Kind::Tag::Pi: {
    TC_UNWRAP(DomKind, kindOfType(Sig, Psi, K->Dom));
    if (DomKind->KindTag != Kind::Tag::Type)
      return makeError("lf: Pi-kind domain must have kind type, got " +
                       printKind(DomKind));
    Context Extended = Psi;
    Extended.push_back(K->Dom);
    return checkKind(Sig, Extended, K->Cod);
  }
  }
  return makeError("lf: malformed kind");
}

Result<KindPtr> kindOfType(const Signature &Sig, const Context &Psi,
                           const LFTypePtr &T) {
  switch (T->Kind) {
  case LFType::Tag::Const: {
    const Declaration *D = Sig.lookup(T->Name);
    if (!D)
      return makeError("lf: undeclared family " + T->Name.toString());
    if (D->Kind != Declaration::Sort::Family)
      return makeError("lf: " + T->Name.toString() +
                       " is a term constant, not a family");
    return D->FamilyKind;
  }
  case LFType::Tag::App: {
    TC_UNWRAP(HeadKind, kindOfType(Sig, Psi, T->Head));
    if (HeadKind->KindTag != Kind::Tag::Pi)
      return makeError("lf: family applied to too many arguments: " +
                       printType(T));
    TC_TRY(checkTerm(Sig, Psi, T->Arg, HeadKind->Dom));
    return substKind(HeadKind->Cod, 0, T->Arg);
  }
  case LFType::Tag::Pi: {
    TC_UNWRAP(DomKind, kindOfType(Sig, Psi, T->Head));
    if (DomKind->KindTag != Kind::Tag::Type)
      return makeError("lf: Pi domain must have kind type");
    Context Extended = Psi;
    Extended.push_back(T->Head);
    TC_UNWRAP(CodKind, kindOfType(Sig, Extended, T->Cod));
    if (CodKind->KindTag != Kind::Tag::Type)
      return makeError("lf: Pi codomain must have kind type");
    return kType();
  }
  }
  return makeError("lf: malformed type family");
}

/// The special typing rule for the builtin `plus/pf`: applied to two nat
/// literals n and m it proves `plus n m (n+m)`.
static Result<LFTypePtr> typeOfPlusProof(const Signature &Sig,
                                         const Context &Psi,
                                         const std::vector<TermPtr> &Spine) {
  if (Spine.size() != 2)
    return makeError("lf: plus/pf expects exactly two arguments");
  TermPtr Args[2];
  for (int I = 0; I < 2; ++I) {
    TC_TRY(checkTerm(Sig, Psi, Spine[static_cast<size_t>(I)], natType()));
    TC_UNWRAP(Norm, normalizeTerm(Spine[static_cast<size_t>(I)]));
    if (Norm->Kind != Term::Tag::Nat)
      return makeError("lf: plus/pf requires literal nat arguments, got " +
                       printTerm(Norm));
    Args[I] = Norm;
  }
  uint64_t N = Args[0]->NatValue, M = Args[1]->NatValue;
  if (N + M < N)
    return makeError("lf: plus/pf argument overflow");
  return plusType(Args[0], Args[1], nat(N + M));
}

Result<LFTypePtr> typeOfTerm(const Signature &Sig, const Context &Psi,
                             const TermPtr &M) {
  switch (M->Kind) {
  case Term::Tag::Var:
    return lookupVar(Psi, M->VarIndex);
  case Term::Tag::Const: {
    if (M->Name.isBuiltin() && M->Name.Label == "plus/pf")
      return makeError("lf: plus/pf must be fully applied");
    const Declaration *D = Sig.lookup(M->Name);
    if (!D)
      return makeError("lf: undeclared constant " + M->Name.toString());
    if (D->Kind != Declaration::Sort::TermConst)
      return makeError("lf: " + M->Name.toString() +
                       " is a family, not a term constant");
    return D->TermType;
  }
  case Term::Tag::Principal:
    if (M->PrincipalHash.size() != 40)
      return makeError("lf: principal literal must be 40 hex digits");
    return principalType();
  case Term::Tag::Nat:
    return natType();
  case Term::Tag::Lam: {
    TC_UNWRAP(AnnotKind, kindOfType(Sig, Psi, M->Annot));
    if (AnnotKind->KindTag != Kind::Tag::Type)
      return makeError("lf: lambda annotation must have kind type");
    Context Extended = Psi;
    Extended.push_back(M->Annot);
    TC_UNWRAP(BodyType, typeOfTerm(Sig, Extended, M->Body));
    return tPi(M->Annot, BodyType);
  }
  case Term::Tag::App: {
    // Flatten the spine to special-case plus/pf.
    std::vector<TermPtr> Spine;
    TermPtr Head = M;
    while (Head->Kind == Term::Tag::App) {
      Spine.push_back(Head->Arg);
      Head = Head->Fn;
    }
    std::reverse(Spine.begin(), Spine.end());
    if (Head->Kind == Term::Tag::Const && Head->Name.isBuiltin() &&
        Head->Name.Label == "plus/pf")
      return typeOfPlusProof(Sig, Psi, Spine);

    TC_UNWRAP(FnType, typeOfTerm(Sig, Psi, M->Fn));
    TC_UNWRAP(FnNorm, normalizeType(FnType));
    if (FnNorm->Kind != LFType::Tag::Pi)
      return makeError("lf: applying a non-function of type " +
                       printType(FnNorm));
    TC_TRY(checkTerm(Sig, Psi, M->Arg, FnNorm->Head));
    return substType(FnNorm->Cod, 0, M->Arg);
  }
  }
  return makeError("lf: malformed term");
}

Status checkTerm(const Signature &Sig, const Context &Psi, const TermPtr &M,
                 const LFTypePtr &Expected) {
  TC_UNWRAP(Actual, typeOfTerm(Sig, Psi, M));
  if (!typeEqual(Actual, Expected))
    return makeError("lf: term " + printTerm(M) + " has type " +
                     printType(Actual) + ", expected " +
                     printType(Expected));
  return Status::success();
}

Status checkPropAtom(const Signature &Sig, const Context &Psi,
                     const LFTypePtr &T) {
  TC_UNWRAP(K, kindOfType(Sig, Psi, T));
  if (K->KindTag != Kind::Tag::Prop)
    return makeError("lf: atomic proposition head " + printType(T) +
                     " has kind " + printKind(K) + ", expected prop");
  return Status::success();
}

} // namespace lf
} // namespace typecoin
