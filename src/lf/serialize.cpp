//===- lf/serialize.cpp - Canonical serialization of LF syntax --------------===//

#include "lf/serialize.h"

namespace typecoin {
namespace lf {

void writeConstName(Writer &W, const ConstName &Name) {
  W.writeU8(static_cast<uint8_t>(Name.Kind));
  W.writeString(Name.Txid);
  W.writeString(Name.Label);
}

Result<ConstName> readConstName(Reader &R) {
  TC_UNWRAP(Kind, R.readU8());
  if (Kind > 2)
    return makeError("lf: bad constant-name space tag");
  TC_UNWRAP(Txid, R.readString());
  TC_UNWRAP(Label, R.readString());
  ConstName Name;
  Name.Kind = static_cast<ConstName::Space>(Kind);
  Name.Txid = std::move(Txid);
  Name.Label = std::move(Label);
  return Name;
}

void writeTerm(Writer &W, const TermPtr &T) {
  W.writeU8(static_cast<uint8_t>(T->Kind));
  switch (T->Kind) {
  case Term::Tag::Var:
    W.writeU32(T->VarIndex);
    break;
  case Term::Tag::Const:
    writeConstName(W, T->Name);
    break;
  case Term::Tag::Lam:
    writeType(W, T->Annot);
    writeTerm(W, T->Body);
    break;
  case Term::Tag::App:
    writeTerm(W, T->Fn);
    writeTerm(W, T->Arg);
    break;
  case Term::Tag::Principal:
    W.writeString(T->PrincipalHash);
    break;
  case Term::Tag::Nat:
    W.writeU64(T->NatValue);
    break;
  }
}

Result<TermPtr> readTerm(Reader &R) {
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<Term::Tag>(Tag)) {
  case Term::Tag::Var: {
    TC_UNWRAP(Index, R.readU32());
    return var(Index);
  }
  case Term::Tag::Const: {
    TC_UNWRAP(Name, readConstName(R));
    return constant(Name);
  }
  case Term::Tag::Lam: {
    TC_UNWRAP(Annot, readType(R));
    TC_UNWRAP(Body, readTerm(R));
    return lam(Annot, Body);
  }
  case Term::Tag::App: {
    TC_UNWRAP(Fn, readTerm(R));
    TC_UNWRAP(Arg, readTerm(R));
    return app(Fn, Arg);
  }
  case Term::Tag::Principal: {
    TC_UNWRAP(Hash, R.readString());
    return principal(Hash);
  }
  case Term::Tag::Nat: {
    TC_UNWRAP(Value, R.readU64());
    return nat(Value);
  }
  }
  return makeError("lf: bad term tag");
}

void writeType(Writer &W, const LFTypePtr &T) {
  W.writeU8(static_cast<uint8_t>(T->Kind));
  switch (T->Kind) {
  case LFType::Tag::Const:
    writeConstName(W, T->Name);
    break;
  case LFType::Tag::App:
    writeType(W, T->Head);
    writeTerm(W, T->Arg);
    break;
  case LFType::Tag::Pi:
    writeType(W, T->Head);
    writeType(W, T->Cod);
    break;
  }
}

Result<LFTypePtr> readType(Reader &R) {
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<LFType::Tag>(Tag)) {
  case LFType::Tag::Const: {
    TC_UNWRAP(Name, readConstName(R));
    return tConst(Name);
  }
  case LFType::Tag::App: {
    TC_UNWRAP(Head, readType(R));
    TC_UNWRAP(Arg, readTerm(R));
    return tApp(Head, Arg);
  }
  case LFType::Tag::Pi: {
    TC_UNWRAP(Dom, readType(R));
    TC_UNWRAP(Cod, readType(R));
    return tPi(Dom, Cod);
  }
  }
  return makeError("lf: bad type tag");
}

void writeKind(Writer &W, const KindPtr &K) {
  W.writeU8(static_cast<uint8_t>(K->KindTag));
  if (K->KindTag == Kind::Tag::Pi) {
    writeType(W, K->Dom);
    writeKind(W, K->Cod);
  }
}

Result<KindPtr> readKind(Reader &R) {
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<Kind::Tag>(Tag)) {
  case Kind::Tag::Type:
    return kType();
  case Kind::Tag::Prop:
    return kProp();
  case Kind::Tag::Pi: {
    TC_UNWRAP(Dom, readType(R));
    TC_UNWRAP(Cod, readKind(R));
    return kPi(Dom, Cod);
  }
  }
  return makeError("lf: bad kind tag");
}

void writeSignature(Writer &W, const Signature &Sig) {
  W.writeCompactSize(Sig.size());
  for (const ConstName &Name : Sig.order()) {
    const Declaration *D = Sig.lookup(Name);
    writeConstName(W, Name);
    W.writeU8(static_cast<uint8_t>(D->Kind));
    if (D->Kind == Declaration::Sort::Family)
      writeKind(W, D->FamilyKind);
    else
      writeType(W, D->TermType);
  }
}

Result<Signature> readSignature(Reader &R) {
  TC_UNWRAP(Count, R.readCompactSize());
  if (Count > 100000)
    return makeError("lf: implausible signature size");
  Signature Sig;
  for (uint64_t I = 0; I < Count; ++I) {
    TC_UNWRAP(Name, readConstName(R));
    TC_UNWRAP(Sort, R.readU8());
    if (Sort == static_cast<uint8_t>(Declaration::Sort::Family)) {
      TC_UNWRAP(K, readKind(R));
      TC_TRY(Sig.declareFamily(Name, K));
    } else if (Sort == static_cast<uint8_t>(Declaration::Sort::TermConst)) {
      TC_UNWRAP(Ty, readType(R));
      TC_TRY(Sig.declareTerm(Name, Ty));
    } else {
      return makeError("lf: bad declaration sort");
    }
  }
  return Sig;
}

} // namespace lf
} // namespace typecoin
