//===- lf/serialize.cpp - Canonical serialization of LF syntax --------------===//

#include "lf/serialize.h"

#include <unordered_map>
#include <utility>

namespace typecoin {
namespace lf {

namespace {
/// Write-side memo shared across the term/type mutual recursion: a node
/// (term or type — the pointers never collide) maps to the (offset,
/// length) of its first serialization in this writer's buffer, and every
/// later occurrence is one bulk copy instead of a re-walk. Mirrors
/// logic's writeProp memo; the wire format is unchanged, since the
/// copied bytes are exactly what the re-walk would have produced.
using SpanMemo = std::unordered_map<const void *, std::pair<size_t, size_t>>;

void writeTermMemo(Writer &W, const TermPtr &T, SpanMemo &Memo);
void writeTypeMemo(Writer &W, const LFTypePtr &T, SpanMemo &Memo);
} // namespace

void writeConstName(Writer &W, const ConstName &Name) {
  W.writeU8(static_cast<uint8_t>(Name.Kind));
  W.writeString(Name.Txid);
  W.writeString(Name.Label);
}

Result<ConstName> readConstName(Reader &R) {
  TC_UNWRAP(Kind, R.readU8());
  if (Kind > 2)
    return makeError("lf: bad constant-name space tag");
  TC_UNWRAP(Txid, R.readString());
  TC_UNWRAP(Label, R.readString());
  ConstName Name;
  Name.Kind = static_cast<ConstName::Space>(Kind);
  Name.Txid = std::move(Txid);
  Name.Label = std::move(Label);
  return Name;
}

namespace {
void writeTermMemo(Writer &W, const TermPtr &T, SpanMemo &Memo) {
  // use_count() > 1 marks nodes that can possibly recur in this walk;
  // unique nodes skip the map entirely, so pure trees pay nothing.
  bool Shared = T.use_count() > 1;
  if (Shared) {
    auto It = Memo.find(T.get());
    if (It != Memo.end()) {
      W.copyFromSelf(It->second.first, It->second.second);
      return;
    }
  }
  size_t Start = W.size();
  W.writeU8(static_cast<uint8_t>(T->Kind));
  switch (T->Kind) {
  case Term::Tag::Var:
    W.writeU32(T->VarIndex);
    break;
  case Term::Tag::Const:
    writeConstName(W, T->Name);
    break;
  case Term::Tag::Lam:
    writeTypeMemo(W, T->Annot, Memo);
    writeTermMemo(W, T->Body, Memo);
    break;
  case Term::Tag::App:
    writeTermMemo(W, T->Fn, Memo);
    writeTermMemo(W, T->Arg, Memo);
    break;
  case Term::Tag::Principal:
    W.writeString(T->PrincipalHash);
    break;
  case Term::Tag::Nat:
    W.writeU64(T->NatValue);
    break;
  }
  if (Shared)
    Memo.emplace(T.get(), std::make_pair(Start, W.size() - Start));
}
} // namespace

void writeTerm(Writer &W, const TermPtr &T) {
  SpanMemo Memo;
  writeTermMemo(W, T, Memo);
}

// Note on interning: the readers below build nodes exclusively through
// the lf constructors, so with TYPECOIN_INTERN=1 every deserialized
// term/type lands in the hash-consing arena — decoding the same wire
// bytes twice (or in two different streams) yields pointer-equal trees.
Result<TermPtr> readTerm(Reader &R) {
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<Term::Tag>(Tag)) {
  case Term::Tag::Var: {
    TC_UNWRAP(Index, R.readU32());
    return var(Index);
  }
  case Term::Tag::Const: {
    TC_UNWRAP(Name, readConstName(R));
    return constant(Name);
  }
  case Term::Tag::Lam: {
    TC_UNWRAP(Annot, readType(R));
    TC_UNWRAP(Body, readTerm(R));
    return lam(Annot, Body);
  }
  case Term::Tag::App: {
    TC_UNWRAP(Fn, readTerm(R));
    TC_UNWRAP(Arg, readTerm(R));
    return app(Fn, Arg);
  }
  case Term::Tag::Principal: {
    TC_UNWRAP(Hash, R.readString());
    return principal(Hash);
  }
  case Term::Tag::Nat: {
    TC_UNWRAP(Value, R.readU64());
    return nat(Value);
  }
  }
  return makeError("lf: bad term tag");
}

namespace {
void writeTypeMemo(Writer &W, const LFTypePtr &T, SpanMemo &Memo) {
  bool Shared = T.use_count() > 1;
  if (Shared) {
    auto It = Memo.find(T.get());
    if (It != Memo.end()) {
      W.copyFromSelf(It->second.first, It->second.second);
      return;
    }
  }
  size_t Start = W.size();
  W.writeU8(static_cast<uint8_t>(T->Kind));
  switch (T->Kind) {
  case LFType::Tag::Const:
    writeConstName(W, T->Name);
    break;
  case LFType::Tag::App:
    writeTypeMemo(W, T->Head, Memo);
    writeTermMemo(W, T->Arg, Memo);
    break;
  case LFType::Tag::Pi:
    writeTypeMemo(W, T->Head, Memo);
    writeTypeMemo(W, T->Cod, Memo);
    break;
  }
  if (Shared)
    Memo.emplace(T.get(), std::make_pair(Start, W.size() - Start));
}
} // namespace

void writeType(Writer &W, const LFTypePtr &T) {
  SpanMemo Memo;
  writeTypeMemo(W, T, Memo);
}

Result<LFTypePtr> readType(Reader &R) {
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<LFType::Tag>(Tag)) {
  case LFType::Tag::Const: {
    TC_UNWRAP(Name, readConstName(R));
    return tConst(Name);
  }
  case LFType::Tag::App: {
    TC_UNWRAP(Head, readType(R));
    TC_UNWRAP(Arg, readTerm(R));
    return tApp(Head, Arg);
  }
  case LFType::Tag::Pi: {
    TC_UNWRAP(Dom, readType(R));
    TC_UNWRAP(Cod, readType(R));
    return tPi(Dom, Cod);
  }
  }
  return makeError("lf: bad type tag");
}

void writeKind(Writer &W, const KindPtr &K) {
  W.writeU8(static_cast<uint8_t>(K->KindTag));
  if (K->KindTag == Kind::Tag::Pi) {
    writeType(W, K->Dom);
    writeKind(W, K->Cod);
  }
}

Result<KindPtr> readKind(Reader &R) {
  TC_UNWRAP(Tag, R.readU8());
  switch (static_cast<Kind::Tag>(Tag)) {
  case Kind::Tag::Type:
    return kType();
  case Kind::Tag::Prop:
    return kProp();
  case Kind::Tag::Pi: {
    TC_UNWRAP(Dom, readType(R));
    TC_UNWRAP(Cod, readKind(R));
    return kPi(Dom, Cod);
  }
  }
  return makeError("lf: bad kind tag");
}

void writeSignature(Writer &W, const Signature &Sig) {
  W.writeCompactSize(Sig.size());
  for (const ConstName &Name : Sig.order()) {
    const Declaration *D = Sig.lookup(Name);
    writeConstName(W, Name);
    W.writeU8(static_cast<uint8_t>(D->Kind));
    if (D->Kind == Declaration::Sort::Family)
      writeKind(W, D->FamilyKind);
    else
      writeType(W, D->TermType);
  }
}

Result<Signature> readSignature(Reader &R) {
  TC_UNWRAP(Count, R.readCompactSize());
  if (Count > 100000)
    return makeError("lf: implausible signature size");
  Signature Sig;
  for (uint64_t I = 0; I < Count; ++I) {
    TC_UNWRAP(Name, readConstName(R));
    TC_UNWRAP(Sort, R.readU8());
    if (Sort == static_cast<uint8_t>(Declaration::Sort::Family)) {
      TC_UNWRAP(K, readKind(R));
      TC_TRY(Sig.declareFamily(Name, K));
    } else if (Sort == static_cast<uint8_t>(Declaration::Sort::TermConst)) {
      TC_UNWRAP(Ty, readType(R));
      TC_TRY(Sig.declareTerm(Name, Ty));
    } else {
      return makeError("lf: bad declaration sort");
    }
  }
  return Sig;
}

} // namespace lf
} // namespace typecoin
