//===- lf/syntax.cpp - LF constructors and structural operations -----------===//

#include "lf/syntax.h"

#include "lf/intern.h"

#include "support/strings.h"

#include <cassert>

namespace typecoin {
namespace lf {

// Constructors --------------------------------------------------------------
//
// Every constructor funnels its node through the hash-consing arena
// (lf/intern.h). With TYPECOIN_INTERN off, internTerm/internType return
// the node unchanged; with it on, structurally equal nodes built
// bottom-up come back pointer-equal, which feeds the `A.get() == B.get()`
// fast paths in the equality functions below and in logic/proposition.

TermPtr var(unsigned Index) {
  auto T = std::make_shared<Term>(Term::Tag::Var);
  T->VarIndex = Index;
  return internTerm(std::move(T));
}

TermPtr constant(ConstName Name) {
  auto T = std::make_shared<Term>(Term::Tag::Const);
  T->Name = std::move(Name);
  return internTerm(std::move(T));
}

TermPtr lam(LFTypePtr Annot, TermPtr Body) {
  auto T = std::make_shared<Term>(Term::Tag::Lam);
  T->Annot = std::move(Annot);
  T->Body = std::move(Body);
  return internTerm(std::move(T));
}

TermPtr app(TermPtr Fn, TermPtr Arg) {
  auto T = std::make_shared<Term>(Term::Tag::App);
  T->Fn = std::move(Fn);
  T->Arg = std::move(Arg);
  return internTerm(std::move(T));
}

TermPtr apps(TermPtr Head, const std::vector<TermPtr> &Args) {
  TermPtr Out = std::move(Head);
  for (const TermPtr &Arg : Args)
    Out = app(Out, Arg);
  return Out;
}

TermPtr principal(std::string Hash) {
  auto T = std::make_shared<Term>(Term::Tag::Principal);
  T->PrincipalHash = std::move(Hash);
  return internTerm(std::move(T));
}

TermPtr nat(uint64_t Value) {
  auto T = std::make_shared<Term>(Term::Tag::Nat);
  T->NatValue = Value;
  return internTerm(std::move(T));
}

LFTypePtr tConst(ConstName Name) {
  auto T = std::make_shared<LFType>(LFType::Tag::Const);
  T->Name = std::move(Name);
  return internType(std::move(T));
}

LFTypePtr tApp(LFTypePtr Head, TermPtr Arg) {
  auto T = std::make_shared<LFType>(LFType::Tag::App);
  T->Head = std::move(Head);
  T->Arg = std::move(Arg);
  return internType(std::move(T));
}

LFTypePtr tApps(LFTypePtr Head, const std::vector<TermPtr> &Args) {
  LFTypePtr Out = std::move(Head);
  for (const TermPtr &Arg : Args)
    Out = tApp(Out, Arg);
  return Out;
}

LFTypePtr tPi(LFTypePtr Dom, LFTypePtr Cod) {
  auto T = std::make_shared<LFType>(LFType::Tag::Pi);
  T->Head = std::move(Dom);
  T->Cod = std::move(Cod);
  return internType(std::move(T));
}

KindPtr kType() {
  static const KindPtr K = std::make_shared<Kind>(Kind::Tag::Type);
  return K;
}

KindPtr kProp() {
  static const KindPtr K = std::make_shared<Kind>(Kind::Tag::Prop);
  return K;
}

KindPtr kPi(LFTypePtr Dom, KindPtr Cod) {
  auto K = std::make_shared<Kind>(Kind::Tag::Pi);
  K->Dom = std::move(Dom);
  K->Cod = std::move(Cod);
  return K;
}

// Builtins ------------------------------------------------------------------

LFTypePtr natType() { return tConst(ConstName::builtin("nat")); }
LFTypePtr principalType() {
  return tConst(ConstName::builtin("principal"));
}
LFTypePtr timeType() { return natType(); }

LFTypePtr plusType(TermPtr N, TermPtr M, TermPtr P) {
  return tApps(tConst(ConstName::builtin("plus")),
               {std::move(N), std::move(M), std::move(P)});
}

TermPtr plusProof(uint64_t N, uint64_t M) {
  return apps(constant(ConstName::builtin("plus/pf")), {nat(N), nat(M)});
}

bool isBuiltinName(const ConstName &Name) {
  if (Name.Kind != ConstName::Space::Builtin)
    return false;
  return Name.Label == "nat" || Name.Label == "principal" ||
         Name.Label == "plus" || Name.Label == "plus/pf";
}

// Shifting ------------------------------------------------------------------

TermPtr shiftTerm(const TermPtr &T, int Delta, unsigned Cutoff) {
  if (Delta == 0)
    return T;
  switch (T->Kind) {
  case Term::Tag::Var:
    if (T->VarIndex < Cutoff)
      return T;
    assert(Delta > 0 || T->VarIndex >= static_cast<unsigned>(-Delta));
    return var(T->VarIndex + Delta);
  case Term::Tag::Const:
  case Term::Tag::Principal:
  case Term::Tag::Nat:
    return T;
  case Term::Tag::Lam:
    return lam(shiftType(T->Annot, Delta, Cutoff),
               shiftTerm(T->Body, Delta, Cutoff + 1));
  case Term::Tag::App:
    return app(shiftTerm(T->Fn, Delta, Cutoff),
               shiftTerm(T->Arg, Delta, Cutoff));
  }
  return T;
}

LFTypePtr shiftType(const LFTypePtr &T, int Delta, unsigned Cutoff) {
  if (Delta == 0)
    return T;
  switch (T->Kind) {
  case LFType::Tag::Const:
    return T;
  case LFType::Tag::App:
    return tApp(shiftType(T->Head, Delta, Cutoff),
                shiftTerm(T->Arg, Delta, Cutoff));
  case LFType::Tag::Pi:
    return tPi(shiftType(T->Head, Delta, Cutoff),
               shiftType(T->Cod, Delta, Cutoff + 1));
  }
  return T;
}

KindPtr shiftKind(const KindPtr &K, int Delta, unsigned Cutoff) {
  if (Delta == 0 || K->KindTag != Kind::Tag::Pi)
    return K;
  return kPi(shiftType(K->Dom, Delta, Cutoff),
             shiftKind(K->Cod, Delta, Cutoff + 1));
}

// Substitution ---------------------------------------------------------------

TermPtr substTerm(const TermPtr &T, unsigned Index, const TermPtr &Value) {
  switch (T->Kind) {
  case Term::Tag::Var:
    if (T->VarIndex == Index)
      return Value;
    if (T->VarIndex > Index)
      return var(T->VarIndex - 1); // The binder disappears.
    return T;
  case Term::Tag::Const:
  case Term::Tag::Principal:
  case Term::Tag::Nat:
    return T;
  case Term::Tag::Lam:
    return lam(substType(T->Annot, Index, Value),
               substTerm(T->Body, Index + 1, shiftTerm(Value, 1)));
  case Term::Tag::App:
    return app(substTerm(T->Fn, Index, Value),
               substTerm(T->Arg, Index, Value));
  }
  return T;
}

LFTypePtr substType(const LFTypePtr &T, unsigned Index, const TermPtr &Value) {
  switch (T->Kind) {
  case LFType::Tag::Const:
    return T;
  case LFType::Tag::App:
    return tApp(substType(T->Head, Index, Value),
                substTerm(T->Arg, Index, Value));
  case LFType::Tag::Pi:
    return tPi(substType(T->Head, Index, Value),
               substType(T->Cod, Index + 1, shiftTerm(Value, 1)));
  }
  return T;
}

KindPtr substKind(const KindPtr &K, unsigned Index, const TermPtr &Value) {
  if (K->KindTag != Kind::Tag::Pi)
    return K;
  return kPi(substType(K->Dom, Index, Value),
             substKind(K->Cod, Index + 1, shiftTerm(Value, 1)));
}

// Normalization --------------------------------------------------------------

namespace {

constexpr unsigned NormalizeFuel = 100000;

Result<TermPtr> normalizeTermFueled(const TermPtr &T0, unsigned &Fuel) {
  // Beta steps iterate rather than recurse: a divergent term (e.g. the
  // omega combinator) must exhaust fuel in constant stack, not blow the
  // stack first. Structural recursion below is bounded by term depth.
  TermPtr T = T0;
  for (;;) {
    if (Fuel-- == 0)
      return makeError("lf: normalization fuel exhausted");
    switch (T->Kind) {
    case Term::Tag::Var:
    case Term::Tag::Const:
    case Term::Tag::Principal:
    case Term::Tag::Nat:
      return T;
    case Term::Tag::Lam: {
      TC_UNWRAP(Body, normalizeTermFueled(T->Body, Fuel));
      return lam(T->Annot, Body);
    }
    case Term::Tag::App: {
      TC_UNWRAP(Fn, normalizeTermFueled(T->Fn, Fuel));
      TC_UNWRAP(Arg, normalizeTermFueled(T->Arg, Fuel));
      if (Fn->Kind == Term::Tag::Lam) {
        T = substTerm(Fn->Body, 0, Arg);
        continue;
      }
      return app(Fn, Arg);
    }
    }
    return T;
  }
}

} // namespace

Result<TermPtr> normalizeTerm(const TermPtr &T) {
  unsigned Fuel = NormalizeFuel;
  return normalizeTermFueled(T, Fuel);
}

Result<LFTypePtr> normalizeType(const LFTypePtr &T) {
  switch (T->Kind) {
  case LFType::Tag::Const:
    return T;
  case LFType::Tag::App: {
    TC_UNWRAP(Head, normalizeType(T->Head));
    TC_UNWRAP(Arg, normalizeTerm(T->Arg));
    return tApp(Head, Arg);
  }
  case LFType::Tag::Pi: {
    TC_UNWRAP(Dom, normalizeType(T->Head));
    TC_UNWRAP(Cod, normalizeType(T->Cod));
    return tPi(Dom, Cod);
  }
  }
  return T;
}

// Equality --------------------------------------------------------------------

bool termIdentical(const TermPtr &A, const TermPtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case Term::Tag::Var:
    return A->VarIndex == B->VarIndex;
  case Term::Tag::Const:
    return A->Name == B->Name;
  case Term::Tag::Principal:
    return A->PrincipalHash == B->PrincipalHash;
  case Term::Tag::Nat:
    return A->NatValue == B->NatValue;
  case Term::Tag::Lam:
    // Annotation equality matters for definitional equality in
    // fully-annotated presentations; compare both.
    return typeIdentical(A->Annot, B->Annot) &&
           termIdentical(A->Body, B->Body);
  case Term::Tag::App:
    return termIdentical(A->Fn, B->Fn) && termIdentical(A->Arg, B->Arg);
  }
  return false;
}

bool typeIdentical(const LFTypePtr &A, const LFTypePtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case LFType::Tag::Const:
    return A->Name == B->Name;
  case LFType::Tag::App:
    return typeIdentical(A->Head, B->Head) && termIdentical(A->Arg, B->Arg);
  case LFType::Tag::Pi:
    return typeIdentical(A->Head, B->Head) && typeIdentical(A->Cod, B->Cod);
  }
  return false;
}

bool termEqual(const TermPtr &A, const TermPtr &B) {
  // Pointer-equal terms are definitionally equal; the converse does not
  // hold (beta-equal terms may be distinct nodes), so this is a
  // positive-only fast path — exactly what hash-consing guarantees.
  if (A.get() == B.get())
    return true;
  auto NA = normalizeTerm(A);
  auto NB = normalizeTerm(B);
  if (!NA || !NB)
    return false;
  return termIdentical(*NA, *NB);
}

bool typeEqual(const LFTypePtr &A, const LFTypePtr &B) {
  if (A.get() == B.get())
    return true;
  auto NA = normalizeType(A);
  auto NB = normalizeType(B);
  if (!NA || !NB)
    return false;
  return typeIdentical(*NA, *NB);
}

bool kindEqual(const KindPtr &A, const KindPtr &B) {
  if (A->KindTag != B->KindTag)
    return false;
  if (A->KindTag != Kind::Tag::Pi)
    return true;
  return typeEqual(A->Dom, B->Dom) && kindEqual(A->Cod, B->Cod);
}

// Resolution (`this` -> txid) -------------------------------------------------

TermPtr resolveTerm(const TermPtr &T, const std::string &Txid) {
  switch (T->Kind) {
  case Term::Tag::Var:
  case Term::Tag::Principal:
  case Term::Tag::Nat:
    return T;
  case Term::Tag::Const:
    if (!T->Name.isLocal())
      return T;
    return constant(T->Name.resolved(Txid));
  case Term::Tag::Lam:
    return lam(resolveType(T->Annot, Txid), resolveTerm(T->Body, Txid));
  case Term::Tag::App:
    return app(resolveTerm(T->Fn, Txid), resolveTerm(T->Arg, Txid));
  }
  return T;
}

LFTypePtr resolveType(const LFTypePtr &T, const std::string &Txid) {
  switch (T->Kind) {
  case LFType::Tag::Const:
    if (!T->Name.isLocal())
      return T;
    return tConst(T->Name.resolved(Txid));
  case LFType::Tag::App:
    return tApp(resolveType(T->Head, Txid), resolveTerm(T->Arg, Txid));
  case LFType::Tag::Pi:
    return tPi(resolveType(T->Head, Txid), resolveType(T->Cod, Txid));
  }
  return T;
}

KindPtr resolveKind(const KindPtr &K, const std::string &Txid) {
  if (K->KindTag != Kind::Tag::Pi)
    return K;
  return kPi(resolveType(K->Dom, Txid), resolveKind(K->Cod, Txid));
}

bool termHasLocal(const TermPtr &T) {
  switch (T->Kind) {
  case Term::Tag::Var:
  case Term::Tag::Principal:
  case Term::Tag::Nat:
    return false;
  case Term::Tag::Const:
    return T->Name.isLocal();
  case Term::Tag::Lam:
    return typeHasLocal(T->Annot) || termHasLocal(T->Body);
  case Term::Tag::App:
    return termHasLocal(T->Fn) || termHasLocal(T->Arg);
  }
  return false;
}

bool typeHasLocal(const LFTypePtr &T) {
  switch (T->Kind) {
  case LFType::Tag::Const:
    return T->Name.isLocal();
  case LFType::Tag::App:
    return typeHasLocal(T->Head) || termHasLocal(T->Arg);
  case LFType::Tag::Pi:
    return typeHasLocal(T->Head) || typeHasLocal(T->Cod);
  }
  return false;
}

// Printing --------------------------------------------------------------------

static std::string printTermPrec(const TermPtr &T, int Prec);

static std::string printTypePrec(const LFTypePtr &T, int Prec) {
  switch (T->Kind) {
  case LFType::Tag::Const:
    return T->Name.toString();
  case LFType::Tag::App: {
    std::string S =
        printTypePrec(T->Head, 1) + " " + printTermPrec(T->Arg, 2);
    return Prec > 1 ? "(" + S + ")" : S;
  }
  case LFType::Tag::Pi: {
    std::string S = "Pi :" + printTypePrec(T->Head, 1) + ". " +
                    printTypePrec(T->Cod, 0);
    return Prec > 0 ? "(" + S + ")" : S;
  }
  }
  return "?";
}

static std::string printTermPrec(const TermPtr &T, int Prec) {
  switch (T->Kind) {
  case Term::Tag::Var:
    return strformat("#%u", T->VarIndex);
  case Term::Tag::Const:
    return T->Name.toString();
  case Term::Tag::Principal:
    return "K:" + T->PrincipalHash.substr(0, 8);
  case Term::Tag::Nat:
    return std::to_string(T->NatValue);
  case Term::Tag::Lam: {
    std::string S = "\\:" + printTypePrec(T->Annot, 1) + ". " +
                    printTermPrec(T->Body, 0);
    return Prec > 0 ? "(" + S + ")" : S;
  }
  case Term::Tag::App: {
    std::string S =
        printTermPrec(T->Fn, 1) + " " + printTermPrec(T->Arg, 2);
    return Prec > 1 ? "(" + S + ")" : S;
  }
  }
  return "?";
}

std::string printTerm(const TermPtr &T) { return printTermPrec(T, 0); }
std::string printType(const LFTypePtr &T) { return printTypePrec(T, 0); }

std::string printKind(const KindPtr &K) {
  switch (K->KindTag) {
  case Kind::Tag::Type:
    return "type";
  case Kind::Tag::Prop:
    return "prop";
  case Kind::Tag::Pi:
    return "Pi :" + printType(K->Dom) + ". " + printKind(K->Cod);
  }
  return "?";
}

} // namespace lf
} // namespace typecoin
