//===- lf/serialize.h - Canonical serialization of LF syntax ----*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical byte serialization of LF kinds, families, and terms. The
/// full Typecoin transaction (basis, grant, inputs, outputs, proof) is
/// "cryptographically hashed and embedded into its corresponding Bitcoin
/// transaction" (Section 3); this module provides the deterministic
/// encoding that hash is computed over, and the matching parser so
/// verifiers can reconstruct and re-check transactions.
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LF_SERIALIZE_H
#define TYPECOIN_LF_SERIALIZE_H

#include "lf/signature.h"
#include "support/serialize.h"

namespace typecoin {
namespace lf {

void writeConstName(Writer &W, const ConstName &Name);
Result<ConstName> readConstName(Reader &R);

void writeTerm(Writer &W, const TermPtr &T);
Result<TermPtr> readTerm(Reader &R);

void writeType(Writer &W, const LFTypePtr &T);
Result<LFTypePtr> readType(Reader &R);

void writeKind(Writer &W, const KindPtr &K);
Result<KindPtr> readKind(Reader &R);

void writeSignature(Writer &W, const Signature &Sig);
Result<Signature> readSignature(Reader &R);

} // namespace lf
} // namespace typecoin

#endif // TYPECOIN_LF_SERIALIZE_H
