//===- lf/typecheck.h - LF typechecking --------------------------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LF judgements of Appendix A:
///
///   Sigma; Psi |- k kind       (kind formation)
///   Sigma; Psi |- tau : k      (type-family formation)
///   Sigma; Psi |- m : tau      (term typing)
///
/// Definitional equality is beta-normal structural equality (family-level
/// lambdas are omitted following Harper & Pfenning [2005], so kinds and
/// families need no reduction of their own).
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_LF_TYPECHECK_H
#define TYPECOIN_LF_TYPECHECK_H

#include "lf/signature.h"

namespace typecoin {
namespace lf {

/// LF contexts Psi: de Bruijn, index 0 is the innermost binder
/// (the back of the vector). Stored types are valid in the prefix
/// context below their binder.
using Context = std::vector<LFTypePtr>;

/// Sigma; Psi |- k kind.
Status checkKind(const Signature &Sig, const Context &Psi, const KindPtr &K);

/// Sigma; Psi |- tau : k — infer the kind of a family.
Result<KindPtr> kindOfType(const Signature &Sig, const Context &Psi,
                           const LFTypePtr &T);

/// Sigma; Psi |- m : tau — infer the type of a term.
Result<LFTypePtr> typeOfTerm(const Signature &Sig, const Context &Psi,
                             const TermPtr &M);

/// Check m against an expected type (inference + definitional equality).
Status checkTerm(const Signature &Sig, const Context &Psi, const TermPtr &M,
                 const LFTypePtr &Expected);

/// Check that a family is a well-formed *atomic-proposition* head
/// applied to enough arguments (kind prop after application).
Status checkPropAtom(const Signature &Sig, const Context &Psi,
                     const LFTypePtr &T);

} // namespace lf
} // namespace typecoin

#endif // TYPECOIN_LF_TYPECHECK_H
