//===- baseline/coloredcoins.cpp - Colored-coins baseline ----------------------===//

#include "baseline/coloredcoins.h"

namespace typecoin {
namespace baseline {

Status ColorTracker::issue(const bitcoin::Transaction &Tx, uint32_t Index,
                           uint64_t Units) {
  if (Index >= Tx.Outputs.size())
    return makeError("colored: issuance index out of range");
  bitcoin::OutPoint Point{Tx.txid(), Index};
  if (Colors.count(Point))
    return makeError("colored: output already colored");
  ColorValue V;
  V.Color = ColorId{Point};
  V.Units = Units;
  Colors[Point] = V;
  return Status::success();
}

Status ColorTracker::apply(const bitcoin::Transaction &Tx) {
  if (Tx.isCoinbase())
    return Status::success();

  // Gather the colored input stream, in input order.
  struct Chunk {
    ColorId Color;
    uint64_t Units;
  };
  std::vector<Chunk> Stream;
  for (const bitcoin::TxIn &In : Tx.Inputs) {
    auto It = Colors.find(In.Prevout);
    if (It == Colors.end())
      continue;
    Stream.push_back(Chunk{It->second.Color, It->second.Units});
    Colors.erase(It); // Inputs are consumed.
  }
  if (Stream.empty())
    return Status::success();

  // Assign to outputs front-to-back: each output demands its satoshi
  // amount in units. An output that would draw from two different
  // colors is uncolored and destroys those units (conservative rule).
  size_t Pos = 0;
  uint64_t Offset = 0; // Units already taken from Stream[Pos].
  bitcoin::TxId Id = Tx.txid();
  for (uint32_t OutIdx = 0;
       OutIdx < Tx.Outputs.size() && Pos < Stream.size(); ++OutIdx) {
    uint64_t Demand = static_cast<uint64_t>(Tx.Outputs[OutIdx].Value);
    if (Demand == 0)
      continue;
    uint64_t Available = Stream[Pos].Units - Offset;
    if (Demand < Available) {
      // Output takes a slice of the current chunk.
      Colors[bitcoin::OutPoint{Id, OutIdx}] =
          ColorValue{Stream[Pos].Color, Demand};
      Offset += Demand;
    } else if (Demand == Available) {
      Colors[bitcoin::OutPoint{Id, OutIdx}] =
          ColorValue{Stream[Pos].Color, Demand};
      ++Pos;
      Offset = 0;
    } else {
      // Demand spans chunks: merge only within one color; a cross-color
      // span destroys the colored units it covers.
      uint64_t Taken = 0;
      ColorId First = Stream[Pos].Color;
      bool Mixed = false;
      while (Taken < Demand && Pos < Stream.size()) {
        uint64_t Chunk = std::min(Stream[Pos].Units - Offset,
                                  Demand - Taken);
        if (!(Stream[Pos].Color == First))
          Mixed = true;
        Taken += Chunk;
        Offset += Chunk;
        if (Offset == Stream[Pos].Units) {
          ++Pos;
          Offset = 0;
        }
      }
      if (!Mixed && Taken > 0)
        Colors[bitcoin::OutPoint{Id, OutIdx}] = ColorValue{First, Taken};
      // Mixed or underfunded spans leave the output uncolored.
    }
  }
  return Status::success();
}

std::optional<ColorValue>
ColorTracker::colorOf(const bitcoin::OutPoint &Point) const {
  auto It = Colors.find(Point);
  if (It == Colors.end())
    return std::nullopt;
  return It->second;
}

uint64_t ColorTracker::supply(const ColorId &Color) const {
  uint64_t Total = 0;
  for (const auto &[Point, V] : Colors)
    if (V.Color == Color)
      Total += V.Units;
  return Total;
}

} // namespace baseline
} // namespace typecoin
