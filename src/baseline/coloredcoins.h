//===- baseline/coloredcoins.h - Colored-coins baseline ----------*- C++ -*-===//
//
// Part of the Typecoin reproduction of Crary & Sullivan (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The colored-coins baseline from the related-work comparison
/// (Section 8): "a txout is said to represent an asset (colloquially
/// called a color) in much the same way as in Typecoin txouts are said
/// to represent affine resources. ... a colored-coin transaction does
/// not include a proof term that dictates how the assets/colors
/// propagate from inputs to outputs. Instead, propagation is defined by
/// a collection of rules, based on the order and bitcoin amounts of the
/// inputs and outputs."
///
/// This implements an order-based coloring (after Rosenfeld 2012):
/// colored value flows from inputs to outputs front-to-back, split and
/// merged by output amounts; issuance marks a designated output of a
/// genesis transaction. Used as the comparison baseline in experiment
/// T6: it supports fungible transfer/split/merge but "provide[s] no
/// mechanism for state transitions."
///
//===----------------------------------------------------------------------===//

#ifndef TYPECOIN_BASELINE_COLOREDCOINS_H
#define TYPECOIN_BASELINE_COLOREDCOINS_H

#include "bitcoin/transaction.h"

#include <map>
#include <optional>

namespace typecoin {
namespace baseline {

/// An asset identifier: the genesis outpoint that issued it.
struct ColorId {
  bitcoin::OutPoint Genesis;

  bool operator==(const ColorId &O) const { return Genesis == O.Genesis; }
  bool operator<(const ColorId &O) const { return Genesis < O.Genesis; }
};

/// Colored value attached to a txout: how many units of which color.
struct ColorValue {
  ColorId Color;
  uint64_t Units = 0;
};

/// The tracker: processes transactions in confirmation order,
/// propagating colors by the order-based rules.
class ColorTracker {
public:
  /// Declare transaction output \p Index of \p Tx as the genesis of a
  /// new color carrying \p Units units.
  Status issue(const bitcoin::Transaction &Tx, uint32_t Index,
               uint64_t Units);

  /// Process a (validated) transaction: colored inputs flow to outputs
  /// in order. Each output takes units from the pending input stream
  /// proportionally to... in the order-based scheme, an output is
  /// colored iff its satoshi amount equals the colored units consumed
  /// contiguously from the input stream; simplified here: colored units
  /// are assigned to outputs front-to-back, splitting at output
  /// boundaries by the output's declared unit demand encoded as its
  /// satoshi amount. Mixing colors in one output destroys the color
  /// (conservative, like real kernels).
  Status apply(const bitcoin::Transaction &Tx);

  /// Colored value on a txout, if any.
  std::optional<ColorValue> colorOf(const bitcoin::OutPoint &Point) const;

  /// Total outstanding units of a color.
  uint64_t supply(const ColorId &Color) const;

  size_t coloredOutputCount() const { return Colors.size(); }

private:
  std::map<bitcoin::OutPoint, ColorValue> Colors;
};

} // namespace baseline
} // namespace typecoin

#endif // TYPECOIN_BASELINE_COLOREDCOINS_H
